//! Vector-clock happens-before race detection over a `desim` trace.
//!
//! The engine guarantees exactly two orderings: program order within
//! each process, and release-to-acquire synchronization on resources
//! (recovered by [`flagsim_desim::sync_edges`] — the same
//! same-timestamp `Released`/`Acquired` hand-off pairing the causal
//! analyzer uses for blame). Everything else is concurrency the
//! deterministic event queue merely *hides*: ties between simultaneous
//! requests are broken by event insertion order, so a student-authored
//! configuration can look correct on every run while two students'
//! writes to the same cell have no happens-before order at all.
//!
//! This module replays a trace through per-process vector clocks,
//! joining at every synchronization edge, then checks each pair of
//! writes to the same grid cell: unordered writes from different
//! students are **SC301 data races**, reported with both access stacks
//! and the scheduler tie that hid them. Simultaneous acquire requests
//! resolved only by insertion order are surfaced as **SC302** notes —
//! the nondeterminism the paper's scenario 4 is designed to make
//! students feel.

use crate::diag::{Diag, Severity};
use flagsim_core::RunReport;
use flagsim_desim::{sync_edges, EventKind, SimTime, Trace};
use flagsim_grid::{CellId, Color};
use std::collections::BTreeMap;

/// One write to a grid cell, recovered from a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAccess {
    /// Index of the writing student (trace process index).
    pub student: usize,
    /// The student's display name.
    pub name: String,
    /// The cell written.
    pub cell: CellId,
    /// The color painted.
    pub color: Color,
    /// When the coloring stroke started.
    pub start: SimTime,
    /// When it ended.
    pub end: SimTime,
}

/// Recover every cell write from a finished run by pairing each
/// student's `WorkStart` trace events (in order) with the run's
/// [`RunReport::cell_log`] (the cells in start order).
pub fn cell_accesses(report: &RunReport) -> Vec<CellAccess> {
    let trace = &report.trace;
    let n = trace.procs.len();
    let mut out = Vec::new();
    let mut seen = vec![0usize; n];
    for e in &trace.events {
        let p = e.proc.index();
        if p >= n {
            continue;
        }
        if let EventKind::WorkStart { dur } = e.kind {
            let k = seen[p];
            seen[p] += 1;
            if let Some(item) = report.cell_log.get(p).and_then(|log| log.get(k)) {
                out.push(CellAccess {
                    student: p,
                    name: trace.procs[p].name.clone(),
                    cell: item.cell,
                    color: item.color,
                    start: e.time,
                    end: e.time + dur,
                });
            }
        }
    }
    out
}

/// A group of simultaneous requests for the same resource whose FIFO
/// order was decided only by event-queue insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquireTie {
    /// The contested resource's label.
    pub resource: String,
    /// When the simultaneous requests landed.
    pub at: SimTime,
    /// The requesting processes, in insertion (= resolution) order.
    pub procs: Vec<usize>,
}

/// The race detector's result: the races, the ties, and the clocks that
/// proved them.
#[derive(Debug, Clone, Default)]
pub struct HbAnalysis {
    /// Unordered conflicting writes, one entry per (cell, student pair).
    pub races: Vec<Diag>,
    /// The time span each race covers — `race_spans[i]` is the union of
    /// both conflicting strokes behind `races[i]`, `(earliest start,
    /// latest end)`. Lets a timeline view anchor a finding to the
    /// instant it happened without re-parsing the diagnostic text.
    pub race_spans: Vec<(SimTime, SimTime)>,
    /// Acquire-order ties (SC302 notes).
    pub ties: Vec<AcquireTie>,
}

impl HbAnalysis {
    /// All findings as diagnostics: races first, then one note per tie.
    pub fn diags(&self) -> Vec<Diag> {
        let mut out = self.races.clone();
        for t in &self.ties {
            out.push(Diag::new(
                "SC302",
                Severity::Note,
                t.resource.clone(),
                format!(
                    "{} processes requested \"{}\" at t={}ms simultaneously; \
                     FIFO order fell to event-queue insertion order",
                    t.procs.len(),
                    t.resource,
                    t.at.millis()
                ),
            ));
        }
        out
    }
}

fn join(into: &mut [u64], other: &[u64]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

fn ordered(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) || b.iter().zip(a).all(|(x, y)| x <= y)
}

/// Run the happens-before analysis: vector clocks over the trace's
/// program order plus its synchronization edges, then a pairwise check
/// of `accesses` for unordered same-cell writes.
pub fn analyze_hb(trace: &Trace, accesses: &[CellAccess]) -> HbAnalysis {
    let n = trace.procs.len();
    if n == 0 {
        return HbAnalysis::default();
    }

    // Synchronization edges, keyed by the acquiring side.
    let edges: BTreeMap<(usize, SimTime, usize), (usize, SimTime)> = sync_edges(trace)
        .into_iter()
        .map(|e| {
            (
                (e.to.index(), e.acquired_at, e.resource.index()),
                (e.from.index(), e.released_at),
            )
        })
        .collect();

    let mut vc: Vec<Vec<u64>> = vec![vec![0; n]; n];
    // Clock snapshot at each release, keyed by (proc, time, resource).
    let mut rel_snap: BTreeMap<(usize, SimTime, usize), Vec<u64>> = BTreeMap::new();
    // Pending `Blocked` per process (waits on one resource at a time).
    let mut pending: Vec<Option<usize>> = vec![None; n];
    // Clock snapshot of each WorkStart, in per-process order.
    let mut ws_clocks: Vec<BTreeMap<SimTime, Vec<u64>>> = vec![BTreeMap::new(); n];
    // Simultaneous-request groups: (resource, time) -> requesters with
    // their clocks at request time.
    type RequestGroups = BTreeMap<(usize, SimTime), Vec<(usize, Vec<u64>)>>;
    let mut requests: RequestGroups = BTreeMap::new();

    for e in &trace.events {
        let p = e.proc.index();
        if p >= n {
            continue;
        }
        vc[p][p] += 1;
        match e.kind {
            EventKind::WorkStart { .. } => {
                ws_clocks[p].insert(e.time, vc[p].clone());
            }
            EventKind::Blocked(r) => {
                pending[p] = Some(r.index());
                requests
                    .entry((r.index(), e.time))
                    .or_default()
                    .push((p, vc[p].clone()));
            }
            EventKind::Acquired(r) => {
                let was_blocked = pending[p].take().is_some_and(|b| b == r.index());
                if !was_blocked {
                    // An uncontended grant doubles as the request itself.
                    requests
                        .entry((r.index(), e.time))
                        .or_default()
                        .push((p, vc[p].clone()));
                }
                if let Some(&(from, rel_at)) = edges.get(&(p, e.time, r.index())) {
                    if let Some(snap) = rel_snap.get(&(from, rel_at, r.index())) {
                        let snap = snap.clone();
                        join(&mut vc[p], &snap);
                    }
                }
            }
            EventKind::Released(r) => {
                rel_snap.insert((p, e.time, r.index()), vc[p].clone());
            }
            EventKind::Finished => {}
        }
    }

    // Ties: >= 2 distinct requesters whose request-time clocks are not
    // all mutually ordered (a tie between causally ordered requests is
    // no tie at all — the queue order was forced).
    let mut ties = Vec::new();
    for (&(ri, at), group) in &requests {
        let distinct: Vec<usize> = {
            let mut d: Vec<usize> = group.iter().map(|(p, _)| *p).collect();
            d.dedup();
            d
        };
        if distinct.len() < 2 {
            continue;
        }
        let unordered_pair = group.iter().enumerate().any(|(i, (pa, ca))| {
            group[i + 1..]
                .iter()
                .any(|(pb, cb)| pa != pb && !ordered(ca, cb))
        });
        if unordered_pair {
            ties.push(AcquireTie {
                resource: trace
                    .resources
                    .get(ri)
                    .map_or_else(|| format!("resource {ri}"), |r| r.label.clone()),
                at,
                procs: distinct,
            });
        }
    }

    // Races: unordered same-cell writes from different students.
    let mut by_cell: BTreeMap<CellId, Vec<&CellAccess>> = BTreeMap::new();
    for a in accesses {
        by_cell.entry(a.cell).or_default().push(a);
    }
    let mut races = Vec::new();
    let mut race_spans = Vec::new();
    for (cell, list) in &by_cell {
        let mut reported: Vec<(usize, usize)> = Vec::new();
        for (i, a) in list.iter().enumerate() {
            for b in &list[i + 1..] {
                if a.student == b.student {
                    continue;
                }
                let pair = (a.student.min(b.student), a.student.max(b.student));
                if reported.contains(&pair) {
                    continue;
                }
                let (Some(ca), Some(cb)) = (
                    ws_clocks[a.student].get(&a.start),
                    ws_clocks[b.student].get(&b.start),
                ) else {
                    continue;
                };
                if ordered(ca, cb) {
                    continue;
                }
                reported.push(pair);
                let mut d = Diag::new(
                    "SC301",
                    Severity::Error,
                    format!("cell {cell}"),
                    format!(
                        "data race: {} and {} both write cell {cell} with no \
                         happens-before order",
                        a.name, b.name
                    ),
                )
                .with_detail(format!(
                    "{} paints {cell} {} over {}..{}ms",
                    a.name,
                    a.color,
                    a.start.millis(),
                    a.end.millis()
                ))
                .with_detail(format!(
                    "{} paints {cell} {} over {}..{}ms",
                    b.name,
                    b.color,
                    b.start.millis(),
                    b.end.millis()
                ));
                // The tie that hid it: the latest simultaneous-request
                // group involving both students at or before the writes.
                let hid = ties.iter().rfind(|t| {
                    t.at <= a.start.max(b.start)
                        && t.procs.contains(&a.student)
                        && t.procs.contains(&b.student)
                });
                d = match hid {
                    Some(t) => d.with_detail(format!(
                        "hidden by the acquire-order tie on \"{}\" at t={}ms — a \
                         different event insertion order flips which write lands last",
                        t.resource,
                        t.at.millis()
                    )),
                    None => d.with_detail(
                        "no scheduler tie involved — the writes are concurrent under \
                         every event ordering"
                            .to_owned(),
                    ),
                };
                races.push(d);
                race_spans.push((a.start.min(b.start), a.end.max(b.end)));
            }
        }
    }

    HbAnalysis {
        races,
        race_spans,
        ties,
    }
}

/// Convenience: run the full happens-before check on a finished run.
pub fn check_run(report: &RunReport) -> HbAnalysis {
    let accesses = cell_accesses(report);
    analyze_hb(&report.trace, &accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_desim::{Action, Engine, FnProcess, SimDuration};

    fn script(actions: Vec<Action>) -> impl FnMut(SimTime) -> Action {
        let mut queue: std::collections::VecDeque<Action> = actions.into();
        move |_| queue.pop_front().unwrap_or(Action::Done)
    }

    fn access(student: usize, name: &str, cell: u32, start: u64, end: u64) -> CellAccess {
        CellAccess {
            student,
            name: name.to_owned(),
            cell: CellId(cell),
            color: Color::Red,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    /// Two painters share a capacity-2 pool (two red markers): their
    /// writes to the same cell are unordered — a race, hidden by the
    /// t=0 acquire tie.
    #[test]
    fn pool_writes_to_same_cell_race() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("red marker", 2, SimDuration::ZERO);
        for name in ["P1", "P2"] {
            eng.add_process(Box::new(FnProcess::new(
                name,
                script(vec![
                    Action::Acquire(pool),
                    Action::Work(SimDuration::from_millis(10)),
                    Action::Release(pool),
                ]),
            )));
        }
        let trace = eng.run();
        let accesses = vec![access(0, "P1", 0, 0, 10), access(1, "P2", 0, 0, 10)];
        let hb = analyze_hb(&trace, &accesses);
        assert_eq!(hb.races.len(), 1, "{:?}", hb.races);
        assert_eq!(hb.races[0].id, "SC301");
        assert_eq!(hb.race_spans.len(), hb.races.len());
        assert_eq!(hb.race_spans[0], (SimTime(0), SimTime(10)));
        let detail = hb.races[0].detail.join("\n");
        assert!(detail.contains("P1"), "{detail}");
        assert!(detail.contains("acquire-order tie"), "{detail}");
        assert!(!hb.ties.is_empty());
    }

    /// The same two writes through a capacity-1 marker are lock-ordered:
    /// no race, even though the grant order itself was a tie.
    #[test]
    fn mutex_writes_to_same_cell_do_not_race() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("red marker", SimDuration::ZERO);
        for name in ["P1", "P2"] {
            eng.add_process(Box::new(FnProcess::new(
                name,
                script(vec![
                    Action::Acquire(marker),
                    Action::Work(SimDuration::from_millis(10)),
                    Action::Release(marker),
                ]),
            )));
        }
        let trace = eng.run();
        // P2's work starts after the hand-off at t=10.
        let accesses = vec![access(0, "P1", 0, 0, 10), access(1, "P2", 0, 10, 20)];
        let hb = analyze_hb(&trace, &accesses);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
        // The t=0 tie on the marker is still visible as a note.
        assert_eq!(hb.ties.len(), 1);
        assert_eq!(hb.diags().len(), 1);
        assert_eq!(hb.diags()[0].id, "SC302");
    }

    /// Writes to different cells never race.
    #[test]
    fn disjoint_cells_do_not_race() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("red marker", 2, SimDuration::ZERO);
        for name in ["P1", "P2"] {
            eng.add_process(Box::new(FnProcess::new(
                name,
                script(vec![
                    Action::Acquire(pool),
                    Action::Work(SimDuration::from_millis(10)),
                    Action::Release(pool),
                ]),
            )));
        }
        let trace = eng.run();
        let accesses = vec![access(0, "P1", 0, 0, 10), access(1, "P2", 1, 0, 10)];
        assert!(analyze_hb(&trace, &accesses).races.is_empty());
    }

    #[test]
    fn empty_trace_is_clean() {
        let hb = analyze_hb(
            &Trace {
                end_time: SimTime(0),
                procs: vec![],
                resources: vec![],
                events: vec![],
            },
            &[],
        );
        assert!(hb.races.is_empty() && hb.ties.is_empty());
    }
}
