//! Bounded schedule-space exploration — `flagsim verify`'s model checker.
//!
//! A single simulation run shows one resolution of every scheduler tie;
//! [`crate::hb`] flags those ties (SC302) but cannot say whether they
//! *matter*. This module answers that question by enumeration: run the
//! scenario under a [`ForcedSchedule`], read back the decision vector the
//! run actually hit, and branch on every unexplored alternative until the
//! bounded schedule space is covered. The result is either a proof of
//! **outcome invariance** (every tie resolution converges to the same
//! makespan, grid, and per-process accounting — SC412) or a **minimal
//! divergent witness pair**: two schedules differing in exactly one
//! decision with different outcomes (SC410), or a concrete schedule that
//! reaches a deadlock (SC411, cross-checked against the static SC204
//! lock-order cycle).
//!
//! Two prunings keep enumeration tractable without losing outcomes:
//!
//! * **State-hash cutting.** Every choice point carries the engine's
//!   canonical state hash; once one run has branched from a state, later
//!   runs reaching the same hash skip alternative generation — the
//!   subtree is already covered.
//! * **Sleep-set (commutativity) pruning.** For a wake-up tie, running
//!   candidate `c` *later* instead of first is observationally identical
//!   when `c`'s poll cascade touches no resource that any earlier
//!   same-instant cascade touches and spawns no same-instant event — the
//!   cascades commute, so the alternative is skipped. This is the
//!   partial-order reduction that collapses `N!` orderings of independent
//!   students to one schedule.
//!
//! Naive mode ([`ExploreConfig::naive`]) disables both prunings; the
//! property tests pin that naive and pruned exploration discover the same
//! outcome set, which is the soundness check for the reduction.

use crate::diag::{Diag, Severity};
use crate::hb::AcquireTie;
use flagsim_agents::StudentProfile;
use flagsim_core::scenario::CompiledScenario;
use flagsim_core::{ActivityConfig, ActivityOutcome, FaultPlan, RunReport, TeamKit};
use flagsim_desim::schedule::{fnv_mix, fnv_mix_str, FNV_OFFSET};
use flagsim_desim::{
    Action, ChoiceKind, Engine, FnProcess, ForcedSchedule, ScheduleLog, SimDuration, SimError,
    Trace, WaitForGraph,
};
use flagsim_grid::CellId;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Bounds and switches for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Hard cap on schedules run; hitting it sets
    /// [`Exploration::truncated`] (surfaced as SC413).
    pub max_schedules: usize,
    /// `true` disables both prunings — full enumeration, for
    /// cross-validating the reduction.
    pub naive: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 4096,
            naive: false,
        }
    }
}

/// What one schedule produced, reduced to a comparable fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The run finished; equal fingerprints mean identical makespan,
    /// grid, and per-process/per-resource accounting.
    Completed {
        /// Canonical FNV-1a hash of everything the run produced.
        fingerprint: u64,
        /// The completion time in milliseconds (for human output).
        makespan_ms: u64,
    },
    /// The run stalled — a deadlock or starvation this schedule reaches.
    Stalled {
        /// Canonical hash of the wait-for graph.
        fingerprint: u64,
        /// The full wait-for graph at the stall.
        graph: WaitForGraph,
    },
}

impl Outcome {
    /// Equality key: two outcomes with the same key are the same class.
    pub fn key(&self) -> (u8, u64) {
        match self {
            Outcome::Completed { fingerprint, .. } => (0, *fingerprint),
            Outcome::Stalled { fingerprint, .. } => (1, *fingerprint),
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            Outcome::Completed {
                fingerprint,
                makespan_ms,
            } => format!("completes at {makespan_ms}ms (outcome {fingerprint:016x})"),
            Outcome::Stalled { graph, .. } => format!(
                "stalls at t={}ms with {} blocked process(es)",
                graph.at.millis(),
                graph.len()
            ),
        }
    }
}

/// One distinct outcome, with the first schedule that produced it.
#[derive(Debug, Clone)]
pub struct OutcomeClass {
    /// The outcome.
    pub outcome: Outcome,
    /// The decision script of the first schedule that reached it.
    pub schedule: Vec<usize>,
    /// How many explored schedules landed in this class.
    pub runs: usize,
}

/// Two schedules differing in exactly one decision, with different
/// outcomes — the minimal certificate that a tie resolution matters.
#[derive(Debug, Clone)]
pub struct WitnessPair {
    /// The converging side: the divergent script minus its last decision
    /// (everything past the script's end takes the canonical default).
    pub baseline: Vec<usize>,
    /// The diverging script.
    pub divergent: Vec<usize>,
    /// What the baseline schedule produced.
    pub baseline_outcome: Outcome,
    /// What the divergent schedule produced.
    pub divergent_outcome: Outcome,
}

/// Everything a bounded exploration learned.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Schedules actually simulated.
    pub schedules_run: usize,
    /// Distinct outcome classes, in discovery order.
    pub outcomes: Vec<OutcomeClass>,
    /// `true` when [`ExploreConfig::max_schedules`] cut exploration short.
    pub truncated: bool,
    /// Alternatives skipped by the sleep-set (commutativity) pruning.
    pub pruned_sleep: usize,
    /// Alternatives skipped because their choice-point state was visited.
    pub pruned_visited: usize,
    /// Distinct choice-point state hashes seen.
    pub visited_states: usize,
    /// The first minimal divergent pair found, if outcomes ever split.
    pub witness: Option<WitnessPair>,
}

impl Exploration {
    /// `true` when the whole bounded space was covered and every schedule
    /// converged to one completed outcome.
    pub fn invariant(&self) -> bool {
        !self.truncated
            && self.outcomes.len() == 1
            && matches!(self.outcomes[0].outcome, Outcome::Completed { .. })
    }

    /// The first outcome class that stalls, if any schedule deadlocks.
    pub fn deadlock(&self) -> Option<&OutcomeClass> {
        self.outcomes
            .iter()
            .find(|c| matches!(c.outcome, Outcome::Stalled { .. }))
    }
}

/// Render a decision script the way diagnostics and the CLI print it.
pub fn format_script(script: &[usize]) -> String {
    format!("{script:?}")
}

fn footprints_disjoint(a: &[flagsim_desim::ResourceId], b: &[flagsim_desim::ResourceId]) -> bool {
    !a.iter().any(|r| b.contains(r))
}

/// Would flipping decision `d` to `candidates[alt]` commute with the run
/// as observed? See the module docs for the rule.
fn sleep_prunable(d: &flagsim_desim::Decision, alt: usize, log: &ScheduleLog) -> bool {
    if d.kind != ChoiceKind::Wakeup {
        return false;
    }
    let Some(&alt_pid) = d.candidates.get(alt) else {
        return false;
    };
    let same_instant: Vec<&flagsim_desim::CascadeRec> =
        log.cascades.iter().filter(|c| c.at == d.at).collect();
    let Some(pos) = same_instant.iter().position(|c| c.pid == alt_pid) else {
        return false;
    };
    let target = same_instant[pos];
    if target.spawned_same_time {
        return false;
    }
    same_instant[..pos].iter().all(|c| {
        !c.spawned_same_time && footprints_disjoint(&c.resources, &target.resources)
    })
}

/// Depth-first exploration of the schedule space behind `run`.
///
/// `run` must execute one simulation under the given decision script
/// (decisions past the script's end take the canonical default 0) and
/// return the outcome together with the [`ScheduleLog`] the run recorded.
/// It is called once per explored schedule with a fresh world each time;
/// any genuine simulation error aborts the whole exploration.
pub fn explore<F>(mut run: F, cfg: &ExploreConfig) -> Result<Exploration, String>
where
    F: FnMut(&[usize]) -> Result<(Outcome, ScheduleLog), String>,
{
    // The script to run next, plus the outcome key of the run that
    // generated it (`None` only for the root).
    struct Pending {
        script: Vec<usize>,
        parent_key: Option<(u8, u64)>,
    }
    let mut ex = Exploration::default();
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut stack = vec![Pending {
        script: Vec::new(),
        parent_key: None,
    }];

    while let Some(Pending { script, parent_key }) = stack.pop() {
        if ex.schedules_run >= cfg.max_schedules {
            ex.truncated = true;
            break;
        }
        let (outcome, log) = run(&script)?;
        ex.schedules_run += 1;
        let key = outcome.key();

        match ex.outcomes.iter_mut().find(|c| c.outcome.key() == key) {
            Some(class) => class.runs += 1,
            None => {
                // A non-root script that discovers a new class is a
                // minimal witness: its parent ran the same prefix with
                // only the last decision at the default, and landed in an
                // older class.
                if ex.witness.is_none() {
                    if let Some(pk) = parent_key {
                        if let Some(parent_class) =
                            ex.outcomes.iter().find(|c| c.outcome.key() == pk)
                        {
                            ex.witness = Some(WitnessPair {
                                baseline: script[..script.len() - 1].to_vec(),
                                divergent: script.clone(),
                                baseline_outcome: parent_class.outcome.clone(),
                                divergent_outcome: outcome.clone(),
                            });
                        }
                    }
                }
                ex.outcomes.push(OutcomeClass {
                    outcome,
                    schedule: script.clone(),
                    runs: 1,
                });
            }
        }

        // Branch on every decision this run took beyond its forced
        // prefix (those all chose the canonical default 0).
        for (i, d) in log.decisions.iter().enumerate().skip(script.len()) {
            if !cfg.naive && !visited.insert(d.state_hash) {
                ex.pruned_visited += d.candidates.len().saturating_sub(1);
                continue;
            }
            for alt in 0..d.candidates.len() {
                if alt == d.chosen {
                    continue;
                }
                if !cfg.naive && sleep_prunable(d, alt, &log) {
                    ex.pruned_sleep += 1;
                    continue;
                }
                let mut next = log.script_prefix(i);
                next.push(alt);
                stack.push(Pending {
                    script: next,
                    parent_key: Some(key),
                });
            }
        }
    }
    if !stack.is_empty() {
        ex.truncated = true;
    }
    ex.visited_states = visited.len();
    Ok(ex)
}

/// Canonical fingerprint of a completed engine run: end time plus every
/// per-process and per-resource figure the trace reports.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_mix(h, trace.end_time.millis());
    for p in &trace.procs {
        h = fnv_mix_str(h, &p.name);
        h = fnv_mix(h, p.busy.millis());
        h = fnv_mix(h, p.waiting.millis());
        h = fnv_mix(h, p.completed_work);
        h = fnv_mix(h, p.finished_at.map_or(u64::MAX, |t| t.millis()));
    }
    for r in &trace.resources {
        h = fnv_mix_str(h, &r.label);
        h = fnv_mix(h, r.stats.acquisitions);
        h = fnv_mix(h, r.stats.contended_acquisitions);
        h = fnv_mix(h, r.stats.handoffs);
        h = fnv_mix(h, r.stats.total_wait.millis());
        h = fnv_mix(h, r.stats.handoff_time.millis());
        h = fnv_mix(h, r.stats.max_queue_len as u64);
    }
    h
}

/// Canonical fingerprint of a stall: when it happened and the full shape
/// of the wait-for graph.
pub fn graph_fingerprint(graph: &WaitForGraph) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_mix(h, graph.at.millis());
    for e in &graph.edges {
        h = fnv_mix(h, e.proc.index() as u64);
        h = fnv_mix_str(h, &e.resource_label);
        h = fnv_mix(h, e.queue_position as u64);
        for holder in &e.holders {
            h = fnv_mix(h, holder.index() as u64);
        }
    }
    h
}

/// Canonical fingerprint of a finished activity run: the number on the
/// board, the grid as colored, correctness, and every per-student and
/// per-marker figure the discussion digs into.
pub fn report_fingerprint(report: &RunReport) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_mix(h, report.completion.millis());
    h = fnv_mix(h, u64::from(report.correct));
    h = fnv_mix(h, report.breakages);
    for i in 0..report.grid.len() {
        h = fnv_mix(h, report.grid.get(CellId(i as u32)).code() as u64);
    }
    for s in &report.students {
        h = fnv_mix_str(h, &s.name);
        h = fnv_mix(h, s.completed as u64);
        h = fnv_mix(h, s.busy.millis());
        h = fnv_mix(h, s.waiting.millis());
        h = fnv_mix(h, s.idle.millis());
        h = fnv_mix(h, s.finished_at.millis());
    }
    for c in &report.contention {
        h = fnv_mix(h, c.color.code() as u64);
        h = fnv_mix(h, c.stats.acquisitions);
        h = fnv_mix(h, c.stats.contended_acquisitions);
        h = fnv_mix(h, c.stats.handoffs);
        h = fnv_mix(h, c.stats.total_wait.millis());
        h = fnv_mix(h, c.stats.max_queue_len as u64);
    }
    h
}

/// Run one engine build under `script` and reduce it to an [`Outcome`].
fn run_engine_scripted(
    mut engine: Engine,
    script: &[usize],
) -> Result<(Outcome, ScheduleLog), String> {
    let (policy, log) = ForcedSchedule::new(script.to_vec());
    engine.set_schedule_policy(policy);
    let result = engine.try_run();
    let outcome = match result {
        Ok(trace) => Outcome::Completed {
            fingerprint: trace_fingerprint(&trace),
            makespan_ms: trace.end_time.millis(),
        },
        Err(SimError::Stalled { waiters }) => Outcome::Stalled {
            fingerprint: graph_fingerprint(&waiters),
            graph: waiters,
        },
        Err(e) => return Err(format!("exploration run failed: {e}")),
    };
    let log = Rc::try_unwrap(log)
        .map(std::cell::RefCell::into_inner)
        .map_err(|_| "schedule log still shared after the run".to_owned())?;
    Ok((outcome, log))
}

/// Explore every schedule of a raw engine workload. `build` must produce
/// a fresh, identical engine on every call (exploration re-runs the world
/// once per schedule).
pub fn explore_engine<B>(mut build: B, cfg: &ExploreConfig) -> Result<Exploration, String>
where
    B: FnMut() -> Engine,
{
    explore(|script| run_engine_scripted(build(), script), cfg)
}

/// An activity-level exploration: the schedule-space verdict plus the
/// observed-run context the diagnostics cross-link against.
#[derive(Debug)]
pub struct ActivityExploration {
    /// The schedule-space exploration result.
    pub exploration: Exploration,
    /// The default-schedule run with full tracing — `None` when even the
    /// default schedule stalls.
    pub baseline: Option<Box<RunReport>>,
    /// The acquire-order ties the baseline run's trace exhibits (what
    /// SC302 reports), for cross-linking against the verdict.
    pub ties: Vec<AcquireTie>,
}

/// Build the fresh team a scenario needs ("P1", "P2", …).
pub fn scenario_team(scenario: &CompiledScenario) -> Vec<StudentProfile> {
    (1..=scenario.parts())
        .map(|i| StudentProfile::new(format!("P{i}")))
        .collect()
}

/// Explore every schedule of a compiled scenario.
///
/// Exploration runs disable trace-event recording (the fingerprint works
/// from the report's accounting); one extra baseline run keeps the trace
/// so the SC302 ties of the observed schedule can be annotated with the
/// schedule-space verdict.
pub fn explore_activity(
    scenario: &CompiledScenario,
    kit: &TeamKit,
    config: &ActivityConfig,
    cfg: &ExploreConfig,
) -> Result<ActivityExploration, String> {
    let plan = FaultPlan::default();
    let lean = config.clone().with_trace_events(false);
    let exploration = explore(
        |script| {
            let mut team = scenario_team(scenario);
            let (policy, log) = ForcedSchedule::new(script.to_vec());
            let outcome = scenario.run_scheduled(&mut team, kit, &lean, &plan, Some(policy))?;
            let outcome = match outcome {
                ActivityOutcome::Completed(report) => Outcome::Completed {
                    fingerprint: report_fingerprint(&report),
                    makespan_ms: report.completion.millis(),
                },
                ActivityOutcome::Stalled(graph) => Outcome::Stalled {
                    fingerprint: graph_fingerprint(&graph),
                    graph,
                },
            };
            let log = Rc::try_unwrap(log)
                .map(std::cell::RefCell::into_inner)
                .map_err(|_| "schedule log still shared after the run".to_owned())?;
            Ok((outcome, log))
        },
        cfg,
    )?;

    // Baseline: the default schedule again, with the trace on.
    let mut team = scenario_team(scenario);
    let (policy, _log) = ForcedSchedule::new(Vec::new());
    let baseline = match scenario.run_scheduled(&mut team, kit, config, &plan, Some(policy))? {
        ActivityOutcome::Completed(report) => Some(report),
        ActivityOutcome::Stalled(_) => None,
    };
    let ties = baseline
        .as_ref()
        .map(|r| crate::hb::check_run(r).ties)
        .unwrap_or_default();
    Ok(ActivityExploration {
        exploration,
        baseline,
        ties,
    })
}

/// The verify verdict as SC4xx diagnostics (deterministic, sorted by the
/// caller's [`crate::diag::Report::sort`] like every other analyzer).
pub fn verify_diags(ex: &Exploration) -> Vec<Diag> {
    let mut out = Vec::new();
    if let Some(class) = ex.deadlock() {
        if let Outcome::Stalled { graph, .. } = &class.outcome {
            let mut d = Diag::new(
                "SC411",
                Severity::Error,
                "",
                format!(
                    "deadlock is reachable: schedule {} stalls {} process(es) at t={}ms",
                    format_script(&class.schedule),
                    graph.len(),
                    graph.at.millis()
                ),
            );
            for e in &graph.edges {
                d = d.with_detail(e.to_string());
            }
            d = d.with_detail(format!(
                "{} of {} explored schedule(s) stall",
                class.runs, ex.schedules_run
            ));
            out.push(d);
        }
    }
    if ex.outcomes.len() > 1 {
        let mut d = Diag::new(
            "SC410",
            Severity::Warning,
            "",
            format!(
                "schedule-divergent: {} distinct outcomes across {} explored schedule(s)",
                ex.outcomes.len(),
                ex.schedules_run
            ),
        );
        if let Some(w) = &ex.witness {
            d = d
                .with_detail(format!(
                    "witness A {} → {}",
                    format_script(&w.baseline),
                    w.baseline_outcome.describe()
                ))
                .with_detail(format!(
                    "witness B {} → {}",
                    format_script(&w.divergent),
                    w.divergent_outcome.describe()
                ))
                .with_detail(
                    "the two schedules differ in exactly one tie resolution".to_owned(),
                );
        }
        out.push(d);
    }
    if ex.invariant() {
        out.push(
            Diag::new(
                "SC412",
                Severity::Note,
                "",
                format!(
                    "schedule-invariant: {} schedule(s) explored ({} choice states), every \
                     tie resolution converges",
                    ex.schedules_run, ex.visited_states
                ),
            )
            .with_detail(ex.outcomes[0].outcome.describe()),
        );
    }
    if ex.truncated {
        out.push(Diag::new(
            "SC413",
            Severity::Warning,
            "",
            format!(
                "exploration bound exhausted after {} schedule(s); {} outcome class(es) seen \
                 so far — coverage incomplete",
                ex.schedules_run,
                ex.outcomes.len()
            ),
        ));
    }
    out
}

/// The SC302 acquire-order ties of an observed run, annotated with the
/// schedule-space verdict: each tie is *benign* when exploration proved
/// every resolution converges, *divergent* when a witness exists, and
/// *inconclusive* when the bound cut coverage short.
pub fn annotate_ties(ties: &[AcquireTie], ex: &Exploration) -> Vec<Diag> {
    let verdict = if ex.outcomes.len() > 1 {
        "verify: divergent — some resolution changes the outcome (see the SC410 witness pair)"
    } else if ex.truncated {
        "verify: inconclusive — the exploration bound was exhausted (see SC413)"
    } else {
        "verify: benign — every explored resolution converges to the same outcome"
    };
    ties.iter()
        .map(|t| {
            Diag::new(
                "SC302",
                Severity::Note,
                t.resource.clone(),
                format!(
                    "{} processes requested \"{}\" at t={}ms simultaneously; \
                     FIFO order fell to event-queue insertion order",
                    t.procs.len(),
                    t.resource,
                    t.at.millis()
                ),
            )
            .with_detail(verdict.to_owned())
        })
        .collect()
}

/// The classic circular-wait drill as a live engine build — the same
/// setup `flagsim faults --demo-deadlock` runs and
/// [`crate::lockorder::demo_deadlock_seqs`] analyzes statically.
pub fn demo_deadlock_engine() -> Engine {
    let mut eng = Engine::new();
    let red = eng.add_resource("red marker", SimDuration::ZERO);
    let blue = eng.add_resource("blue marker", SimDuration::ZERO);
    let second = SimDuration::from_millis(1_000);
    for (name, first, then) in [
        ("grabs-red-then-blue", red, blue),
        ("grabs-blue-then-red", blue, red),
    ] {
        let mut queue: std::collections::VecDeque<Action> =
            vec![Action::Acquire(first), Action::Work(second), Action::Acquire(then)].into();
        eng.add_process(Box::new(FnProcess::new(name, move |_| {
            queue.pop_front().unwrap_or(Action::Done)
        })));
    }
    eng
}

/// Cross-check a reachable stall against the static lock-order analysis:
/// `true` when some SC204 cycle's resources are exactly the ones the
/// stalled schedule's waiters are parked on — the static prediction and
/// the dynamic witness name the same deadlock.
pub fn deadlock_matches_cycle(graph: &WaitForGraph, cycles: &[Vec<String>]) -> bool {
    if graph.is_empty() {
        return false;
    }
    let stalled_on: BTreeSet<&str> = graph
        .edges
        .iter()
        .map(|e| e.resource_label.as_str())
        .collect();
    cycles.iter().any(|cycle| {
        cycle.len() == stalled_on.len() && cycle.iter().all(|r| stalled_on.contains(r.as_str()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockorder::{demo_deadlock_seqs, LockOrderGraph};

    fn worker(eng: &mut Engine, name: &str, label: &str, work_ms: u64) {
        let rid = eng.add_resource(label, SimDuration::ZERO);
        let mut queue: std::collections::VecDeque<Action> = vec![
            Action::Acquire(rid),
            Action::Work(SimDuration::from_millis(work_ms)),
            Action::Release(rid),
        ]
        .into();
        eng.add_process(Box::new(FnProcess::new(name.to_owned(), move |_| {
            queue.pop_front().unwrap_or(Action::Done)
        })));
    }

    /// Three workers on disjoint resources: the t=0 wake-up tie orderings
    /// all commute. DPOR collapses 3! orderings to one schedule; naive
    /// enumeration visits all six — and both see one outcome.
    #[test]
    fn independent_workers_collapse_under_dpor() {
        let build = || {
            let mut eng = Engine::new();
            worker(&mut eng, "a", "ra", 10);
            worker(&mut eng, "b", "rb", 20);
            worker(&mut eng, "c", "rc", 30);
            eng
        };
        let dpor = explore_engine(build, &ExploreConfig::default()).expect("dpor");
        assert_eq!(dpor.schedules_run, 1, "{dpor:?}");
        assert_eq!(dpor.outcomes.len(), 1);
        assert!(dpor.invariant());
        assert!(dpor.pruned_sleep > 0);

        let naive = explore_engine(
            build,
            &ExploreConfig {
                naive: true,
                ..ExploreConfig::default()
            },
        )
        .expect("naive");
        assert_eq!(naive.schedules_run, 6, "{naive:?}");
        assert_eq!(naive.outcomes.len(), 1);
        assert_eq!(
            naive.outcomes[0].outcome.key(),
            dpor.outcomes[0].outcome.key(),
            "naive and DPOR must agree on the outcome"
        );
    }

    /// Two workers of different durations contend on one marker: who goes
    /// first flips each worker's finish time — a genuine divergence with
    /// a minimal witness pair.
    #[test]
    fn contended_marker_diverges_with_witness() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("marker", SimDuration::ZERO);
            for (name, ms) in [("a", 10u64), ("b", 20u64)] {
                let mut queue: std::collections::VecDeque<Action> = vec![
                    Action::Acquire(m),
                    Action::Work(SimDuration::from_millis(ms)),
                    Action::Release(m),
                ]
                .into();
                eng.add_process(Box::new(FnProcess::new(name.to_owned(), move |_| {
                    queue.pop_front().unwrap_or(Action::Done)
                })));
            }
            eng
        };
        let ex = explore_engine(build, &ExploreConfig::default()).expect("explore");
        assert!(ex.outcomes.len() > 1, "{ex:?}");
        assert!(!ex.invariant());
        let w = ex.witness.as_ref().expect("witness pair");
        assert_eq!(w.divergent.len(), w.baseline.len() + 1);
        assert_eq!(&w.divergent[..w.baseline.len()], &w.baseline[..]);
        assert_ne!(w.baseline_outcome.key(), w.divergent_outcome.key());
        let diags = verify_diags(&ex);
        assert!(diags.iter().any(|d| d.id == "SC410"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.id == "SC412"));
    }

    /// The demo-deadlock drill stalls on every schedule; the witness
    /// graph names exactly the statically predicted SC204 cycle.
    #[test]
    fn demo_deadlock_reachable_and_matches_static_cycle() {
        let ex = explore_engine(demo_deadlock_engine, &ExploreConfig::default())
            .expect("explore");
        let class = ex.deadlock().expect("a stalled class");
        let Outcome::Stalled { graph, .. } = &class.outcome else {
            panic!("deadlock() returned a completed class");
        };
        let cycles = LockOrderGraph::build(&demo_deadlock_seqs()).cycles();
        assert!(deadlock_matches_cycle(graph, &cycles), "{graph:?} vs {cycles:?}");
        let diags = verify_diags(&ex);
        assert!(diags.iter().any(|d| d.id == "SC411"), "{diags:?}");
    }

    /// Bound exhaustion is reported, not silently absorbed.
    #[test]
    fn truncation_sets_flag_and_sc413() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("marker", SimDuration::ZERO);
            for (name, ms) in [("a", 10u64), ("b", 20), ("c", 30)] {
                let mut queue: std::collections::VecDeque<Action> = vec![
                    Action::Acquire(m),
                    Action::Work(SimDuration::from_millis(ms)),
                    Action::Release(m),
                ]
                .into();
                eng.add_process(Box::new(FnProcess::new(name.to_owned(), move |_| {
                    queue.pop_front().unwrap_or(Action::Done)
                })));
            }
            eng
        };
        let ex = explore_engine(
            build,
            &ExploreConfig {
                max_schedules: 2,
                naive: false,
            },
        )
        .expect("explore");
        assert!(ex.truncated);
        assert_eq!(ex.schedules_run, 2);
        assert!(verify_diags(&ex).iter().any(|d| d.id == "SC413"));
    }

    #[test]
    fn annotate_ties_states_the_verdict() {
        let tie = AcquireTie {
            resource: "red marker".into(),
            at: flagsim_desim::SimTime(0),
            procs: vec![0, 1],
        };
        let benign = Exploration {
            schedules_run: 1,
            outcomes: vec![OutcomeClass {
                outcome: Outcome::Completed {
                    fingerprint: 1,
                    makespan_ms: 5,
                },
                schedule: vec![],
                runs: 1,
            }],
            ..Exploration::default()
        };
        let diags = annotate_ties(std::slice::from_ref(&tie), &benign);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].detail[0].contains("benign"), "{:?}", diags[0]);
        let mut divergent = benign.clone();
        divergent.outcomes.push(OutcomeClass {
            outcome: Outcome::Completed {
                fingerprint: 2,
                makespan_ms: 9,
            },
            schedule: vec![1],
            runs: 1,
        });
        let diags = annotate_ties(&[tie], &divergent);
        assert!(diags[0].detail[0].contains("divergent"), "{:?}", diags[0]);
    }
}
