//! The diagnostics framework: severities, stable lint IDs, allow-lists,
//! and text/JSON exposition.
//!
//! Every analyzer in this crate (and the flag-spec lints in
//! `flagsim_flags::lint`) reports through one shape: a [`Diag`] with a
//! stable `SC###` catalog ID, a [`Severity`], a one-line message, and
//! optional detail lines (access stacks, cycle paths). A [`Report`]
//! collects them for one checked target and renders deterministically —
//! same findings in, same bytes out — so CI can diff JSON across runs
//! and `--jobs` counts.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; often intentional.
    Note,
    /// Probably a mistake; the run will still work.
    Warning,
    /// The scenario/flag/plan cannot work as specified.
    Error,
}

impl Severity {
    /// Lowercase tag used in text and JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse a `--deny` style level name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One diagnostic finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable catalog ID ("SC204"). See [`crate::catalog`].
    pub id: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What the finding concerns ("cell (3,2)", "layer 1", "student 2").
    /// Empty when the whole target is meant.
    pub subject: String,
    /// One-line human-readable message.
    pub message: String,
    /// Extra context lines (both access stacks of a race, a deadlock
    /// cycle path, the scheduler tie that hid a hazard).
    pub detail: Vec<String>,
}

impl Diag {
    /// A detail-free finding.
    pub fn new(
        id: &'static str,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diag {
        Diag {
            id,
            severity,
            subject: subject.into(),
            message: message.into(),
            detail: Vec::new(),
        }
    }

    /// Attach a detail line.
    pub fn with_detail(mut self, line: impl Into<String>) -> Diag {
        self.detail.push(line.into());
        self
    }
}

/// All findings for one checked target.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// What was checked ("scenario 4: vertical slices", "flag mauritius").
    pub target: String,
    /// The findings, in analyzer order.
    pub diags: Vec<Diag>,
}

impl Report {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> Report {
        Report {
            target: target.into(),
            diags: Vec::new(),
        }
    }

    /// Add one finding.
    pub fn push(&mut self, d: Diag) {
        self.diags.push(d);
    }

    /// Add many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diag>) {
        self.diags.extend(ds);
    }

    /// Drop findings whose ID is on the allow-list ("SC105,SC302" style
    /// entries, already split). Unknown IDs are ignored — allowing a
    /// lint that never fires is not an error.
    pub fn allow(&mut self, allowed: &[String]) {
        self.diags.retain(|d| !allowed.iter().any(|a| a == d.id));
    }

    /// `(errors, warnings, notes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// The most severe finding present.
    pub fn worst(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True when any finding is at or above `deny`.
    pub fn denies(&self, deny: Severity) -> bool {
        self.worst().is_some_and(|w| w >= deny)
    }

    /// Sort findings for stable output: severity (worst first), then ID,
    /// subject, message. Analyzers run in a fixed order already; sorting
    /// makes the report independent of that order too.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.id.cmp(b.id))
                .then_with(|| a.subject.cmp(&b.subject))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// One-line summary ("2 error(s), 1 warning(s), 3 note(s)").
    pub fn summary(&self) -> String {
        let (e, w, n) = self.counts();
        if self.diags.is_empty() {
            "no findings".to_owned()
        } else {
            format!("{e} error(s), {w} warning(s), {n} note(s)")
        }
    }

    /// Human-readable rendering: header, one block per finding, summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("check: {}\n", self.target);
        if self.diags.is_empty() {
            out.push_str("  no findings — the configuration looks clean\n");
            return out;
        }
        for d in &self.diags {
            let subject = if d.subject.is_empty() {
                String::new()
            } else {
                format!("{}: ", d.subject)
            };
            let _ = writeln!(out, "  {}[{}]: {subject}{}", d.severity.tag(), d.id, d.message);
            for line in &d.detail {
                let _ = writeln!(out, "      {line}");
            }
        }
        let _ = writeln!(out, "  summary: {}", self.summary());
        out
    }

    /// JSON rendering. Deterministic field order; validated round-trip by
    /// `flagsim_telemetry::json::parse` in the test suite.
    pub fn to_json(&self) -> String {
        use flagsim_telemetry::json::json_string;
        use std::fmt::Write as _;
        let (e, w, n) = self.counts();
        let mut out = String::with_capacity(256 + self.diags.len() * 128);
        let _ = write!(out, "{{\"target\":{},\"diagnostics\":[", json_string(&self.target));
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"severity\":{},\"subject\":{},\"message\":{},\"detail\":[",
                json_string(d.id),
                json_string(d.severity.tag()),
                json_string(&d.subject),
                json_string(&d.message),
            );
            for (j, line) in d.detail.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(line));
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "],\"counts\":{{\"error\":{e},\"warning\":{w},\"note\":{n}}}}}"
        );
        out
    }
}

/// Convert the flag-spec lints of [`flagsim_flags::lint`] into framework
/// diagnostics (they already carry `SC1xx` IDs).
pub fn from_flag_lints(lints: &[flagsim_flags::Lint]) -> Vec<Diag> {
    lints
        .iter()
        .map(|l| {
            let severity = match l.level {
                flagsim_flags::LintLevel::Error => Severity::Error,
                flagsim_flags::LintLevel::Warning => Severity::Warning,
                flagsim_flags::LintLevel::Note => Severity::Note,
            };
            let subject = match l.layer {
                Some(li) => format!("layer {li}"),
                None => String::new(),
            };
            Diag::new(l.id, severity, subject, l.message.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("scenario x");
        r.push(Diag::new("SC302", Severity::Note, "red marker", "tie"));
        r.push(
            Diag::new("SC301", Severity::Error, "cell (0,0)", "race")
                .with_detail("P1 wrote at 0ms")
                .with_detail("P2 wrote at 0ms"),
        );
        r.push(Diag::new("SC212", Severity::Warning, "", "spares"));
        r
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn counts_worst_and_deny() {
        let r = sample();
        assert_eq!(r.counts(), (1, 1, 1));
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(r.denies(Severity::Error));
        assert!(r.denies(Severity::Note));
        let empty = Report::new("clean");
        assert!(!empty.denies(Severity::Note));
        assert_eq!(empty.summary(), "no findings");
    }

    #[test]
    fn allow_list_drops_by_id() {
        let mut r = sample();
        r.allow(&["SC302".to_owned(), "SC999".to_owned()]);
        assert_eq!(r.diags.len(), 2);
        assert!(r.diags.iter().all(|d| d.id != "SC302"));
    }

    #[test]
    fn sort_is_severity_then_id() {
        let mut r = sample();
        r.sort();
        let ids: Vec<&str> = r.diags.iter().map(|d| d.id).collect();
        assert_eq!(ids, ["SC301", "SC212", "SC302"]);
    }

    #[test]
    fn text_render_shows_ids_details_and_summary() {
        let mut r = sample();
        r.sort();
        let text = r.render_text();
        assert!(text.contains("error[SC301]: cell (0,0): race"));
        assert!(text.contains("      P2 wrote at 0ms"));
        assert!(text.contains("summary: 1 error(s), 1 warning(s), 1 note(s)"));
        assert!(Report::new("clean").render_text().contains("no findings"));
    }

    #[test]
    fn json_parses_and_carries_counts() {
        let mut r = sample();
        r.sort();
        let json = r.to_json();
        let v = flagsim_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("counts").and_then(|c| c.get("error")).and_then(|e| e.as_f64()),
            Some(1.0)
        );
        let diags = v.get("diagnostics").and_then(|d| d.as_array()).expect("array");
        assert_eq!(diags.len(), 3);
        assert_eq!(diags[0].get("id").and_then(|i| i.as_str()), Some("SC301"));
        assert_eq!(
            diags[0].get("detail").and_then(|d| d.as_array()).map(|a| a.len()),
            Some(2)
        );
    }
}
