//! Property tests for the simcheck analyzers: the race detector's
//! verdicts on real runs, and the static deadlock checker's agreement
//! with the runtime stall detector.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::run_activity;
use flagsim_core::work::PreparedFlag;
use flagsim_core::{ActivityConfig, Scenario, TeamKit};
use flagsim_flags::{library, FlagSpec, Layer, Shape};
use flagsim_grid::{CellId, Color};
use flagsim_simcheck::{check_run, demo_deadlock_seqs, LockOrderGraph};
use proptest::prelude::*;

/// The six scenarios `flagsim` ships (1–4, pipelined, alternating).
fn builtin(idx: usize, flag: &PreparedFlag) -> Scenario {
    match idx {
        0..=3 => Scenario::fig1(idx as u8 + 1),
        4 => Scenario::pipelined_slices(flag, 4, 4),
        _ => Scenario::alternating_slices(),
    }
}

/// A one-cell red flag: the smallest possible shared write target.
fn one_cell_flag() -> PreparedFlag {
    PreparedFlag::new(&FlagSpec::new(
        "shared cell",
        1,
        1,
        vec![Layer::new("bg", Color::Red, Shape::Full)],
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The built-in scenarios partition the flag and hand single markers
    /// around: every same-cell pair is trivially absent and every write
    /// is lock-ordered — no run, on any seed, has a data race.
    #[test]
    fn builtin_scenarios_never_race(idx in 0usize..6, seed in any::<u64>()) {
        let spec = library::mauritius();
        let flag = PreparedFlag::new(&spec);
        let scenario = builtin(idx, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let size = scenario.team_size(&flag, &cfg);
        let mut team: Vec<StudentProfile> = (1..=size)
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let report = scenario.run(&flag, &mut team, &kit, &cfg).expect("run succeeds");
        let hb = check_run(&report);
        prop_assert!(
            hb.races.is_empty(),
            "{} seed {seed}: {:?}",
            scenario.name,
            hb.races
        );
    }

    /// Two students told to color the *same* cell, with two
    /// interchangeable red markers in the kit: the capacity-2 pool
    /// provides no release→acquire ordering between them, so exactly one
    /// SC301 race is reported on every seed.
    #[test]
    fn shared_cell_with_pooled_markers_always_races(seed in any::<u64>()) {
        let flag = one_cell_flag();
        let item = flag.item(CellId(0)).expect("one red cell");
        let assignments = vec![vec![item], vec![item]];
        let mut team: Vec<StudentProfile> = (1..=2)
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &[Color::Red])
            .with_count(Color::Red, 2);
        let cfg = ActivityConfig::default().with_seed(seed);
        let report = run_activity("shared", &flag, &assignments, &mut team, &kit, &cfg)
            .expect("overlapping assignments still run");
        let hb = check_run(&report);
        prop_assert_eq!(hb.races.len(), 1, "seed {}: {:?}", seed, hb.races);
        prop_assert_eq!(hb.races[0].id, "SC301");
        prop_assert!(
            hb.races[0].detail.iter().any(|l| l.contains("tie")
                || l.contains("concurrent under every event ordering")),
            "the race explains what hid it: {:?}",
            hb.races[0].detail
        );
    }

    /// The same shared cell through the default single red marker: the
    /// mutex hand-off orders the writes — never a race, on any seed.
    #[test]
    fn shared_cell_with_single_marker_never_races(seed in any::<u64>()) {
        let flag = one_cell_flag();
        let item = flag.item(CellId(0)).expect("one red cell");
        let assignments = vec![vec![item], vec![item]];
        let mut team: Vec<StudentProfile> = (1..=2)
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &[Color::Red]);
        let cfg = ActivityConfig::default().with_seed(seed);
        let report = run_activity("serialized", &flag, &assignments, &mut team, &kit, &cfg)
            .expect("run succeeds");
        let hb = check_run(&report);
        prop_assert!(hb.races.is_empty(), "seed {}: {:?}", seed, hb.races);
    }
}

/// The static lock-order cycle on the demo-deadlock drill names exactly
/// the resources the engine's runtime stall detector reports in its
/// wait-for graph when the same drill runs live.
#[test]
fn static_deadlock_cycle_matches_runtime_wait_for_graph() {
    use flagsim_desim::{Action, Engine, FnProcess, SimDuration, SimError};
    use std::collections::{BTreeSet, VecDeque};

    let graph = LockOrderGraph::build(&demo_deadlock_seqs());
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    let static_cycle: BTreeSet<String> = cycles[0].iter().cloned().collect();

    // The same drill, live (mirrors `flagsim faults --demo-deadlock`).
    let mut engine = Engine::new();
    let red = engine.add_resource("red marker", SimDuration::ZERO);
    let blue = engine.add_resource("blue marker", SimDuration::ZERO);
    let script = |actions: Vec<Action>| {
        let mut queue: VecDeque<Action> = actions.into();
        move |_now| queue.pop_front().unwrap_or(Action::Done)
    };
    engine.add_process(Box::new(FnProcess::new(
        "grabs-red-then-blue",
        script(vec![
            Action::Acquire(red),
            Action::Work(SimDuration::from_secs_f64(1.0)),
            Action::Acquire(blue),
        ]),
    )));
    engine.add_process(Box::new(FnProcess::new(
        "grabs-blue-then-red",
        script(vec![
            Action::Acquire(blue),
            Action::Work(SimDuration::from_secs_f64(1.0)),
            Action::Acquire(red),
        ]),
    )));
    let Err(SimError::Stalled { waiters }) = engine.try_run() else {
        panic!("the drill must stall");
    };
    let runtime_cycle: BTreeSet<String> = waiters
        .edges
        .iter()
        .map(|e| e.resource_label.clone())
        .collect();
    assert_eq!(
        static_cycle, runtime_cycle,
        "the pre-run prediction and the runtime diagnosis disagree"
    );
}
