//! Property tests for the schedule-space explorer (`flagsim verify`):
//! invariance proofs hold on every seed, crafted contention always
//! produces a minimal witness, the partial-order reduction never loses an
//! outcome relative to naive enumeration, and a witness schedule replays
//! byte-for-byte.

use flagsim_agents::ImplementKind;
use flagsim_core::work::PreparedFlag;
use flagsim_core::{ActivityConfig, ActivityOutcome, FaultPlan, Scenario, TeamKit};
use flagsim_desim::{Action, Engine, FnProcess, ForcedSchedule, SimDuration};
use flagsim_flags::library;
use flagsim_simcheck::{
    explore_activity, explore_engine, verify_diags, ExploreConfig, Outcome,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

/// The six scenarios `flagsim` ships (1–4, pipelined, alternating).
fn builtin(idx: usize, flag: &PreparedFlag) -> Scenario {
    match idx {
        0..=3 => Scenario::fig1(idx as u8 + 1),
        4 => Scenario::pipelined_slices(flag, 4, 4),
        _ => Scenario::alternating_slices(),
    }
}

fn kit(flag: &PreparedFlag) -> TeamKit {
    TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]))
}

fn explore_builtin(idx: usize, seed: u64) -> flagsim_simcheck::ActivityExploration {
    let flag = PreparedFlag::new(&library::mauritius());
    let scenario = builtin(idx, &flag);
    let cfg = ActivityConfig::default().with_seed(seed);
    let compiled = scenario.compile(&flag, &cfg).expect("compiles");
    explore_activity(&compiled, &kit(&flag), &cfg, &ExploreConfig::default()).expect("explores")
}

/// A process that follows a fixed action script, then finishes.
fn scripted(name: &str, actions: Vec<Action>) -> Box<FnProcess<impl FnMut(flagsim_desim::SimTime) -> Action>> {
    let mut queue: VecDeque<Action> = actions.into();
    Box::new(FnProcess::new(name.to_owned(), move |_| {
        queue.pop_front().unwrap_or(Action::Done)
    }))
}

/// Three workers funneled through a capacity-2 marker pool with
/// pairwise-distinct service times — who pairs up first always shifts
/// somebody's finish time.
fn pool_engine(seed: u64) -> Engine {
    let mut eng = Engine::new();
    let pool = eng.add_resource_pool("red marker", 2, SimDuration::ZERO);
    let durations = [10 + seed % 7, 25 + seed % 11, 45 + seed % 13];
    for (i, ms) in durations.into_iter().enumerate() {
        eng.add_process(scripted(
            &format!("w{i}"),
            vec![
                Action::Acquire(pool),
                Action::Work(SimDuration::from_millis(ms)),
                Action::Release(pool),
            ],
        ));
    }
    eng
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scenarios 1–3 and the pipelined rotation give every student a
    /// disjoint slice of the work at the start: on any seed, full-depth
    /// exploration proves every tie resolution converges (SC412), and
    /// the partial-order reduction collapses the space to one schedule.
    #[test]
    fn disjoint_builtins_are_schedule_invariant(pick in 0usize..4, seed in any::<u64>()) {
        let ex = explore_builtin([0usize, 1, 2, 4][pick], seed);
        prop_assert!(ex.exploration.invariant(), "{:?}", ex.exploration);
        prop_assert_eq!(ex.exploration.schedules_run, 1);
        prop_assert!(ex.exploration.witness.is_none());
        let diags = verify_diags(&ex.exploration);
        prop_assert!(diags.iter().any(|d| d.id == "SC412"), "{diags:?}");
        prop_assert!(diags.iter().all(|d| d.id != "SC410" && d.id != "SC411"));
    }

    /// The vertical-slices scenarios (fig. 1 panel 4 and the alternating
    /// variant) are genuine flow shops: on any seed the t=0 queue on the
    /// first stripe's marker makes the outcome order-dependent, and
    /// exploration certifies it with a minimal witness pair (SC410).
    #[test]
    fn vertical_slices_diverge_with_witness(pick in 0usize..2, seed in any::<u64>()) {
        let ex = explore_builtin([3usize, 5][pick], seed);
        prop_assert!(!ex.exploration.truncated);
        prop_assert!(ex.exploration.outcomes.len() > 1, "{:?}", ex.exploration);
        let w = ex.exploration.witness.as_ref().expect("witness pair");
        prop_assert_eq!(w.divergent.len(), w.baseline.len() + 1);
        prop_assert_eq!(&w.divergent[..w.baseline.len()], &w.baseline[..]);
        prop_assert_ne!(w.baseline_outcome.key(), w.divergent_outcome.key());
        let diags = verify_diags(&ex.exploration);
        prop_assert!(diags.iter().any(|d| d.id == "SC410"), "{diags:?}");
        // The observed run's SC302 tie is real, and the verdict names it
        // divergent.
        prop_assert!(!ex.ties.is_empty());
        let annotated = flagsim_simcheck::annotate_ties(&ex.ties, &ex.exploration);
        prop_assert!(annotated.iter().all(|d| d.detail[0].contains("divergent")));
    }

    /// The crafted capacity-2 pool yields a divergence witness on every
    /// seed: three distinct service times through two pool units cannot
    /// be schedule-invariant.
    #[test]
    fn capacity_two_pool_diverges_on_every_seed(seed in any::<u64>()) {
        let ex = explore_engine(|| pool_engine(seed), &ExploreConfig::default())
            .expect("explores");
        prop_assert!(!ex.truncated);
        prop_assert!(ex.outcomes.len() > 1, "{ex:?}");
        let w = ex.witness.as_ref().expect("witness pair");
        prop_assert_ne!(w.baseline_outcome.key(), w.divergent_outcome.key());
    }

    /// Soundness of the reduction: on randomized small workloads (zero
    /// durations included, so same-instant cascades happen), DPOR-pruned
    /// exploration discovers exactly the outcome classes naive full
    /// enumeration does — it only skips redundant schedules.
    #[test]
    fn dpor_finds_the_same_outcomes_as_naive(
        assignments in proptest::collection::vec((0usize..2, 0u64..4, 0u64..4), 2..4),
    ) {
        let build = || {
            let mut eng = Engine::new();
            let r0 = eng.add_resource("m0", SimDuration::ZERO);
            let r1 = eng.add_resource("m1", SimDuration::ZERO);
            for (i, (which, a, b)) in assignments.iter().enumerate() {
                let rid = if *which == 0 { r0 } else { r1 };
                eng.add_process(scripted(
                    &format!("p{i}"),
                    vec![
                        Action::Work(SimDuration::from_millis(*a)),
                        Action::Acquire(rid),
                        Action::Work(SimDuration::from_millis(*b)),
                        Action::Release(rid),
                    ],
                ));
            }
            eng
        };
        let naive_cfg = ExploreConfig { naive: true, ..ExploreConfig::default() };
        let naive = explore_engine(build, &naive_cfg).expect("naive");
        let dpor = explore_engine(build, &ExploreConfig::default()).expect("dpor");
        prop_assume!(!naive.truncated);
        prop_assert!(!dpor.truncated);
        let naive_keys: BTreeSet<_> = naive.outcomes.iter().map(|c| c.outcome.key()).collect();
        let dpor_keys: BTreeSet<_> = dpor.outcomes.iter().map(|c| c.outcome.key()).collect();
        prop_assert_eq!(&dpor_keys, &naive_keys, "naive {:?} vs dpor {:?}", naive, dpor);
        prop_assert!(dpor.schedules_run <= naive.schedules_run);
    }

    /// Forced-schedule replay is byte-deterministic: running either side
    /// of a witness pair twice produces identical reports, and the two
    /// sides really do differ.
    #[test]
    fn witness_replay_is_byte_deterministic(seed in any::<u64>()) {
        let flag = PreparedFlag::new(&library::mauritius());
        let scenario = builtin(3, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let compiled = scenario.compile(&flag, &cfg).expect("compiles");
        let kit = kit(&flag);
        let ex = explore_activity(&compiled, &kit, &cfg, &ExploreConfig::default())
            .expect("explores");
        let w = ex.exploration.witness.as_ref().expect("witness pair");
        let mut completions = Vec::new();
        for script in [&w.baseline, &w.divergent] {
            let mut reports = Vec::new();
            for _ in 0..2 {
                let mut team = flagsim_simcheck::explore::scenario_team(&compiled);
                let (policy, _log) = ForcedSchedule::new(script.clone());
                let outcome = compiled
                    .run_scheduled(&mut team, &kit, &cfg, &FaultPlan::default(), Some(policy))
                    .expect("runs");
                match outcome {
                    ActivityOutcome::Completed(r) => reports.push(r),
                    ActivityOutcome::Stalled(g) => prop_assert!(false, "stalled: {g:?}"),
                }
            }
            prop_assert_eq!(&reports[0], &reports[1], "replay diverged");
            completions.push(flagsim_simcheck::explore::report_fingerprint(&reports[0]));
        }
        // The witness pair's two schedules genuinely differ...
        prop_assert_ne!(completions[0], completions[1]);
        // ...and match the fingerprints exploration recorded for them.
        match (&w.baseline_outcome, &w.divergent_outcome) {
            (
                Outcome::Completed { fingerprint: fa, .. },
                Outcome::Completed { fingerprint: fb, .. },
            ) => {
                prop_assert_eq!(*fa, completions[0]);
                prop_assert_eq!(*fb, completions[1]);
            }
            other => prop_assert!(false, "unexpected witness outcomes: {other:?}"),
        }
    }
}
