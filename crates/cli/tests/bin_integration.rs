//! End-to-end tests of the real `flagsim` binary (spawned as a process).

use std::process::Command;

fn flagsim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_flagsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let (stdout, _, ok) = flagsim(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn render_flows_through_stdout() {
    let (stdout, _, ok) = flagsim(&["render", "mauritius"]);
    assert!(ok);
    assert!(stdout.contains("RRRRRRRRRRRR"));
}

#[test]
fn run_scenario_exits_zero_with_report() {
    let (stdout, _, ok) = flagsim(&["run", "3", "--seed", "9"]);
    assert!(ok);
    assert!(stdout.contains("scenario 3"));
    assert!(stdout.contains("correct"));
}

#[test]
fn faults_narrative_lands_on_stderr() {
    let (stdout, stderr, ok) = flagsim(&[
        "faults", "3", "--plan", "break:blue@10,dropout:2@20", "--seed", "7",
    ]);
    assert!(ok);
    // stdout: the measurements — header, per-student table, resilience
    // summary with the overhead total.
    assert!(stdout.contains("fault(s) planned"), "{stdout}");
    assert!(stdout.contains("recovery overhead"), "{stdout}");
    // stderr: the blow-by-blow incident narrative.
    assert!(stderr.contains("blue implement broke"), "{stderr}");
    assert!(stderr.contains("dropped out"), "{stderr}");
    assert!(!stdout.contains("blue implement broke"), "{stdout}");
}

#[test]
fn explain_json_round_trips_and_is_seed_stable() {
    let (a, _, ok_a) = flagsim(&["explain", "fourslice", "--format", "json", "--seed", "7"]);
    let (b, _, ok_b) = flagsim(&["explain", "fourslice", "--format", "json", "--seed", "7"]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "explain JSON must be deterministic per seed");
    assert!(a.trim_start().starts_with('{'), "{a}");
    assert!(a.contains("\"critical_path\""), "{a}");
}

#[test]
fn sweep_dashboard_degrades_to_plain_lines_when_piped() {
    // The test harness captures stderr through a pipe, so the binary
    // must take the non-TTY path: plain `sweep: ...` lines, no ANSI
    // cursor movement, and stdout identical to a dashboard-less sweep.
    let (stdout, stderr, ok) = flagsim(&[
        "sweep", "onestripe", "--reps", "4", "--jobs", "2", "--seed", "3", "--dashboard",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("completion"), "{stdout}");
    assert!(stderr.contains("sweep:"), "fallback lines expected: {stderr}");
    assert!(!stderr.contains("\x1b["), "no ANSI when piped: {stderr:?}");
    let (plain, _, _) = flagsim(&[
        "sweep", "onestripe", "--reps", "4", "--jobs", "2", "--seed", "3",
    ]);
    assert_eq!(stdout, plain, "dashboard must not change the numbers");
}

#[test]
fn check_json_on_stdout_parses_with_chatter_on_stderr() {
    // `flagsim check 4 --format json > report.json` must yield pure
    // JSON: the report on stdout, every progress line on stderr.
    let (stdout, stderr, ok) = flagsim(&["check", "4", "--format", "json", "--seed", "7"]);
    assert!(ok, "{stderr}");
    let v = flagsim_telemetry::json::parse(&stdout)
        .unwrap_or_else(|e| panic!("stdout is not valid JSON ({e}):\n{stdout}"));
    assert!(v.get("diagnostics").and_then(|d| d.as_array()).is_some());
    assert_eq!(
        v.get("counts").and_then(|c| c.get("error")).and_then(|e| e.as_f64()),
        Some(0.0),
        "{stdout}"
    );
    // The observation-run announcement is chatter, not output.
    assert!(stderr.contains("check:"), "{stderr}");
    assert!(!stdout.contains("happens-before analysis"), "{stdout}");
}

#[test]
fn check_deny_exits_nonzero_with_diagnostics_on_stdout() {
    // A denied check still prints the full report to stdout (so CI can
    // archive it) and fails with a short summary on stderr.
    let (stdout, stderr, ok) = flagsim(&["check", "demo-deadlock"]);
    assert!(!ok);
    assert!(stdout.contains("error[SC204]"), "{stdout}");
    assert!(stdout.contains("lock-order cycle"), "{stdout}");
    assert!(stderr.contains("check failed"), "{stderr}");
}

#[test]
fn bad_command_exits_nonzero_with_stderr() {
    let (_, stderr, ok) = flagsim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn grade_reads_a_real_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-sub-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "task black stripe\ntask green stripe\ntask red triangle\ntask white dot\n\
         edge black stripe -> red triangle\nedge green stripe -> red triangle\n\
         edge red triangle -> white dot\n",
    )
    .unwrap();
    let (stdout, _, ok) = flagsim(&["grade", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("Perfect"));
}

#[test]
fn parse_lints_a_custom_flag_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-flag-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "flag \"Half\" 8x8\nlayer \"left\" red rect 0 0 0.5 1\n",
    )
    .unwrap();
    let (stdout, _, ok) = flagsim(&["parse", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cells are blank"), "{stdout}");
}

fn flagsim_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_flagsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn sweep_argument_errors_exit_2_with_one_line_stderr() {
    for args in [
        &["sweep", "4", "--reps", "0"][..],
        &["sweep", "4", "--jobs", "0"],
        &["sweep", "4", "--workers", "0"],
        &["sweep", "4", "--connect", "not-an-address"],
        &["sweep", "4", "--connect", "127.0.0.1"], // port missing
        &["sweep", "4", "--checkpoint-every", "0", "--checkpoint", "/tmp/x"],
        &["sweep", "4", "--max-wall-secs", "-1"],
        &["worker"], // missing --listen
    ] {
        let (_, stderr, code) = flagsim_code(args);
        assert_eq!(code, 2, "args {args:?} must exit 2, stderr: {stderr}");
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "one-line stderr for {args:?}, got: {stderr}"
        );
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn sweep_soft_deadline_exits_3_checkpoints_and_resumes_bit_identically() {
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("flagsim-deadline-{}.ckpt", std::process::id()));
    let ckpt_s = ckpt.to_str().unwrap();
    // A zero-second wall budget expires before any repetition merges.
    let (_, stderr, code) = flagsim_code(&[
        "sweep", "3", "--reps", "6", "--seed", "5", "--jobs", "1",
        "--checkpoint", ckpt_s, "--checkpoint-every", "1", "--max-wall-secs", "0",
    ]);
    assert_eq!(code, 3, "deadline expiry has a distinct exit code: {stderr}");
    assert!(stderr.contains("soft deadline"), "{stderr}");
    assert!(stderr.contains("--resume"), "resume hint expected: {stderr}");
    assert!(ckpt.exists(), "deadline expiry must leave a checkpoint");
    // Resuming finishes the campaign with statistics identical to an
    // uninterrupted streaming sweep (compare everything below the
    // run-description header line).
    let (resumed, stderr, code) = flagsim_code(&["sweep", "--resume", ckpt_s]);
    assert_eq!(code, 0, "{stderr}");
    let (fresh, _, ok) = flagsim(&["sweep", "3", "--reps", "6", "--seed", "5", "--stream"]);
    std::fs::remove_file(&ckpt).ok();
    assert!(ok);
    let tail = |s: &str| s.split_once('\n').map(|(_, t)| t.to_owned()).unwrap_or_default();
    assert_eq!(
        tail(&resumed),
        tail(&fresh),
        "resumed stats must match uninterrupted:\n{resumed}\nvs\n{fresh}"
    );
}

#[test]
fn sweep_with_spawned_workers_matches_serial_statistics() {
    let shard = flagsim_code(&[
        "sweep", "onestripe", "--reps", "6", "--seed", "5", "--workers", "2", "--chunk", "2",
    ]);
    assert_eq!(shard.2, 0, "sharded sweep failed: {}", shard.1);
    assert!(shard.0.contains("2 worker(s)"), "{}", shard.0);
    let (serial, _, ok) = flagsim(&["sweep", "onestripe", "--reps", "6", "--seed", "5", "--stream"]);
    assert!(ok);
    let tail = |s: &str| s.split_once('\n').map(|(_, t)| t.to_owned()).unwrap_or_default();
    assert_eq!(
        tail(&shard.0),
        tail(&serial),
        "worker-sharded stats must be bit-identical to serial:\n{}\nvs\n{serial}",
        shard.0
    );
}

#[test]
fn worker_prints_its_bound_address_and_serves_a_connect_sweep() {
    use std::io::BufRead as _;
    // Start a standalone worker on an ephemeral port.
    let mut worker = Command::new(env!("CARGO_BIN_EXE_flagsim"))
        .args(["worker", "--listen", "127.0.0.1:0", "--once", "--quiet"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("worker spawns");
    let mut line = String::new();
    std::io::BufReader::new(worker.stdout.take().expect("stdout"))
        .read_line(&mut line)
        .expect("worker announces");
    let addr = line.trim().rsplit(' ').next().expect("address token").to_owned();
    assert!(line.starts_with("worker: listening on "), "{line}");
    // Drive a sweep through it.
    let (stdout, stderr, code) = flagsim_code(&[
        "sweep", "onestripe", "--reps", "4", "--seed", "9", "--connect", &addr,
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("1 worker(s)"), "{stdout}");
    worker.wait().expect("worker exits after --once session");
    let (serial, _, ok) = flagsim(&["sweep", "onestripe", "--reps", "4", "--seed", "9", "--stream"]);
    assert!(ok);
    let tail = |s: &str| s.split_once('\n').map(|(_, t)| t.to_owned()).unwrap_or_default();
    assert_eq!(tail(&stdout), tail(&serial));
}

#[test]
fn distributed_sweep_merges_one_trace_with_worker_tracks_and_obs_snapshot() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("flagsim-dist-trace-{}.json", std::process::id()));
    let obs = dir.join(format!("flagsim-dist-obs-{}.json", std::process::id()));
    let (stdout, stderr, code) = flagsim_code(&[
        "sweep", "onestripe", "--reps", "6", "--seed", "11", "--workers", "2", "--chunk", "2",
        "--trace-out", trace.to_str().unwrap(), "--obs-out", obs.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stderr}");

    // Shipping telemetry must not move a single statistics bit.
    let (serial, _, ok) =
        flagsim(&["sweep", "onestripe", "--reps", "6", "--seed", "11", "--stream"]);
    assert!(ok);
    let tail = |s: &str| s.split_once('\n').map(|(_, t)| t.to_owned()).unwrap_or_default();
    assert_eq!(
        tail(&stdout),
        tail(&serial),
        "stats must be bit-identical with telemetry shipping on:\n{stdout}\nvs\n{serial}"
    );

    // The merged trace is one valid Chrome trace spanning the
    // coordinator and both worker processes.
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    std::fs::remove_file(&trace).ok();
    flagsim_telemetry::json::validate_chrome_trace(&text).expect("merged trace validates");
    assert!(text.contains("\"process_name\""), "process metadata expected: {}", &text[..200]);
    for worker in ["local-0", "local-1"] {
        assert!(text.contains(worker), "trace lacks a {worker} track group");
    }
    assert!(text.contains("\"sweep.rep\""), "worker rep spans expected");

    // The fleet snapshot names both workers and the campaign.
    let snap = std::fs::read_to_string(&obs).expect("obs file written");
    std::fs::remove_file(&obs).ok();
    for key in ["\"campaign\"", "\"workers\"", "\"local-0\"", "\"local-1\"", "\"series\""] {
        assert!(snap.contains(key), "obs snapshot lacks {key}: {snap}");
    }
}

#[test]
fn watch_scripted_dump_is_byte_identical_and_ends_at_the_run_grid() {
    // The determinism contract: same scenario, seed, script, and width
    // must dump byte-identical frames, and jumping to the end must show
    // the same completed grid `render` prints.
    let args = &[
        "watch", "fourslice", "--seed", "7", "--script", "p ttt G q", "--width", "100",
    ];
    let (a, stderr, ok_a) = flagsim(args);
    let (b, _, ok_b) = flagsim(args);
    assert!(ok_a && ok_b, "{stderr}");
    assert_eq!(a, b, "scripted watch must be byte-deterministic");
    assert!(a.contains("== frame 0 =="), "{a}");
    assert!(a.contains("96/96 cells"), "the G frame completes the grid: {a}");
    // The final frame's grid rows are the finished Mauritius flag.
    let (flag, _, _) = flagsim(&["render", "mauritius"]);
    let last = a.rsplit("== frame ").next().unwrap();
    for row in flag.lines().filter(|l| l.len() == 12) {
        assert!(last.contains(row), "completed grid row {row:?} missing:\n{last}");
    }
}

#[test]
fn watch_degrades_to_a_plain_final_frame_when_piped() {
    // stdout is a pipe here, so watch must skip raw mode and print the
    // run's final state as one escape-free frame.
    let (stdout, stderr, ok) = flagsim(&["watch", "fourslice", "--seed", "7", "--width", "80"]);
    assert!(ok, "{stderr}");
    assert!(!stdout.contains("\x1b["), "no ANSI when piped: {stdout:?}");
    assert!(stdout.contains("watch: scenario 4"), "{stdout}");
    assert!(stdout.contains("96/96 cells"), "final frame expected: {stdout}");
    assert!(stdout.contains("gantt"), "{stdout}");
}

#[test]
fn watch_frames_out_writes_the_same_dump_to_a_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-watch-frames-{}.txt", std::process::id()));
    let path_s = path.to_str().unwrap();
    let (stdout, stderr, ok) = flagsim(&[
        "watch", "onestripe", "--seed", "3", "--script", "G q", "--width", "90",
        "--frames-out", path_s,
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("2 frame(s) written"), "{stdout}");
    let dump = std::fs::read_to_string(&path).expect("frames file written");
    let (inline, _, _) = flagsim(&[
        "watch", "onestripe", "--seed", "3", "--script", "G q", "--width", "90",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(dump, inline, "--frames-out must write exactly the stdout dump");
}

#[test]
fn watch_replays_a_recorded_trace_file() {
    // `run --trace-out` writes the telemetry Chrome trace; watch must
    // re-parse it and scrub it, with the cell/race panes degraded
    // (a trace file has spans, not grid cells).
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("flagsim-watch-trace-{}.json", std::process::id()));
    let trace_s = trace.to_str().unwrap();
    let (_, stderr, ok) = flagsim(&["run", "4", "--seed", "7", "--trace-out", trace_s]);
    assert!(ok, "{stderr}");
    let (stdout, stderr, ok) = flagsim(&["watch", "--trace", trace_s, "--script", "G q"]);
    std::fs::remove_file(&trace).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.contains("trace file"), "{stdout}");
    assert!(stdout.contains("gantt"), "{stdout}");
    assert!(stdout.contains("race check skipped"), "{stdout}");
    assert!(!stdout.contains("cells"), "no cell data from a span trace: {stdout}");
}

#[test]
fn watch_follow_once_renders_a_fleet_snapshot_read_only() {
    // A written FleetView snapshot is all live mode needs: --follow
    // tails the file, --once exits after the first frame, and the file
    // is never written back to.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-watch-fleet-{}.json", std::process::id()));
    let mut fv = flagsim_shard::FleetView::default();
    fv.reset("0ddba11".into(), 32);
    fv.on_connected("w-0", 10);
    fv.on_lease("w-0", 20);
    for t in 0..8u64 {
        fv.on_rep("w-0", 30 + t * 100);
        fv.sample(30 + t * 100);
    }
    fv.merged = 8;
    let snapshot = fv.to_json(1_000);
    std::fs::write(&path, &snapshot).unwrap();
    let (stdout, stderr, ok) =
        flagsim(&["watch", "--follow", path.to_str().unwrap(), "--once", "--width", "100"]);
    let after = std::fs::read_to_string(&path).expect("snapshot still there");
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    assert_eq!(after, snapshot, "watch must never write to its source");
    assert!(stdout.contains("fleet: campaign 0ddba11"), "{stdout}");
    assert!(stdout.contains("merged 8/32 reps (25%)"), "{stdout}");
    assert!(stdout.contains("* w-0"), "{stdout}");
    assert!(!stdout.contains("\x1b["), "no ANSI when piped: {stdout:?}");
}

#[test]
fn watch_argument_errors_exit_2() {
    for args in [
        &["watch"][..],                               // no source at all
        &["watch", "4", "--width", "7"],              // width out of range
        &["watch", "4", "--script", "pz"],            // unknown key
        &["watch", "--trace", "/nonexistent.json"],   // unreadable trace
    ] {
        let (_, stderr, code) = flagsim_code(args);
        assert_eq!(code, 2, "args {args:?} must exit 2, stderr: {stderr}");
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn verify_invariant_scenario_reports_sc412() {
    // Scenario 1 gives every student disjoint work: exploration proves
    // schedule invariance, chatter goes to stderr, verdict to stdout.
    let (stdout, stderr, ok) = flagsim(&["verify", "1", "--seed", "7"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("note[SC412]"), "{stdout}");
    assert!(stdout.contains("schedule-invariant"), "{stdout}");
    assert!(stderr.contains("verify: exploring"), "{stderr}");
    assert!(!stdout.contains("verify: exploring"), "{stdout}");
}

#[test]
fn verify_divergent_scenario_shows_minimal_witness_pair() {
    // The vertical-slices flow shop is order-dependent: SC410 with a
    // witness pair, and the observed SC302 tie cross-linked "divergent".
    let (stdout, stderr, ok) = flagsim(&["verify", "fourslice", "--seed", "7"]);
    assert!(ok, "warnings alone must not fail the default deny: {stderr}");
    assert!(stdout.contains("warning[SC410]"), "{stdout}");
    assert!(stdout.contains("witness A"), "{stdout}");
    assert!(stdout.contains("witness B"), "{stdout}");
    assert!(
        stdout.contains("differ in exactly one tie resolution"),
        "{stdout}"
    );
    assert!(
        stdout.contains("verify: divergent — some resolution changes the outcome"),
        "{stdout}"
    );
}

#[test]
fn verify_json_is_deterministic_and_parses() {
    let (a, _, ok_a) = flagsim(&["verify", "alternating", "--format", "json", "--seed", "5"]);
    let (b, _, ok_b) = flagsim(&["verify", "alternating", "--format", "json", "--seed", "5"]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "verify JSON must be deterministic per seed");
    let v = flagsim_telemetry::json::parse(&a)
        .unwrap_or_else(|e| panic!("stdout is not valid JSON ({e}):\n{a}"));
    let diags = v.get("diagnostics").and_then(|d| d.as_array()).expect("diagnostics");
    assert!(!diags.is_empty(), "{a}");
}

#[test]
fn verify_demo_deadlock_confirms_the_static_cycle_dynamically() {
    // SC204 (static prediction) and SC411 (reachable schedule) must name
    // the same deadlock, and the cross-link must say so.
    let (stdout, stderr, ok) = flagsim(&["verify", "demo-deadlock"]);
    assert!(!ok, "a reachable deadlock is an error-level finding");
    assert!(stdout.contains("error[SC204]"), "{stdout}");
    assert!(stdout.contains("error[SC411]"), "{stdout}");
    assert!(stdout.contains("dynamically confirmed"), "{stdout}");
    assert!(stderr.contains("check failed"), "{stderr}");
}

#[test]
fn verify_witness_out_traces_replay_in_watch() {
    let dir = std::env::temp_dir();
    let prefix = dir.join(format!("flagsim-wit-{}", std::process::id()));
    let prefix = prefix.to_str().unwrap();
    let (_, stderr, ok) = flagsim(&[
        "verify", "fourslice", "--seed", "7", "--witness-out", prefix,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("witness A"), "{stderr}");
    let a = format!("{prefix}-a.json");
    let b = format!("{prefix}-b.json");
    let ta = std::fs::read_to_string(&a).expect("witness A written");
    let tb = std::fs::read_to_string(&b).expect("witness B written");
    assert_ne!(ta, tb, "the two witness schedules must differ observably");
    // Both sides load in the replay scrubber.
    for path in [&a, &b] {
        let (stdout, stderr, ok) = flagsim(&["watch", "--trace", path, "--script", "l"]);
        assert!(ok, "{stderr}");
        assert!(stdout.contains("== frame 0 =="), "{stdout}");
    }
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn verify_argument_errors_exit_2() {
    for args in [
        &["verify"][..],                         // no target
        &["verify", "nope"],                     // unknown scenario
        &["verify", "1", "--max-schedules", "0"] // bound must be positive
    ] {
        let (_, stderr, code) = flagsim_code(args);
        assert_eq!(code, 2, "args {args:?} must exit 2, stderr: {stderr}");
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn watch_scenario_accepts_no_check() {
    // The replay source preflights by default; --no-check must still work
    // and produce the same frames on a clean scenario.
    let (with_check, _, ok_a) = flagsim(&["watch", "4", "--script", "l", "--seed", "7"]);
    let (without, _, ok_b) = flagsim(&["watch", "4", "--script", "l", "--seed", "7", "--no-check"]);
    assert!(ok_a && ok_b);
    assert_eq!(with_check, without, "preflight must not change the replay");
}
