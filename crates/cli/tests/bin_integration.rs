//! End-to-end tests of the real `flagsim` binary (spawned as a process).

use std::process::Command;

fn flagsim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_flagsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let (stdout, _, ok) = flagsim(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn render_flows_through_stdout() {
    let (stdout, _, ok) = flagsim(&["render", "mauritius"]);
    assert!(ok);
    assert!(stdout.contains("RRRRRRRRRRRR"));
}

#[test]
fn run_scenario_exits_zero_with_report() {
    let (stdout, _, ok) = flagsim(&["run", "3", "--seed", "9"]);
    assert!(ok);
    assert!(stdout.contains("scenario 3"));
    assert!(stdout.contains("correct"));
}

#[test]
fn bad_command_exits_nonzero_with_stderr() {
    let (_, stderr, ok) = flagsim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn grade_reads_a_real_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-sub-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "task black stripe\ntask green stripe\ntask red triangle\ntask white dot\n\
         edge black stripe -> red triangle\nedge green stripe -> red triangle\n\
         edge red triangle -> white dot\n",
    )
    .unwrap();
    let (stdout, _, ok) = flagsim(&["grade", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("Perfect"));
}

#[test]
fn parse_lints_a_custom_flag_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("flagsim-flag-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "flag \"Half\" 8x8\nlayer \"left\" red rect 0 0 0.5 1\n",
    )
    .unwrap();
    let (stdout, _, ok) = flagsim(&["parse", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cells are blank"), "{stdout}");
}
