//! # flagsim-cli
//!
//! The `flagsim` command-line tool: everything an instructor needs to
//! prepare and debrief the activity without writing Rust.
//!
//! ```text
//! flagsim flags                          list the flag library
//! flagsim render <flag> [ascii|ansi|ppm] [WxH]
//! flagsim slides [<flag>]                the Fig. 1 scenario deck
//! flagsim run <scenario> [options]       simulate one scenario
//! flagsim session [options]              a full multi-team class session
//! flagsim graph <flag>                   dependency graph + schedules
//! flagsim grade <file>                   grade a dependency-graph submission
//! flagsim parse <file>                   validate + render a custom flag file
//! ```
//!
//! The command logic lives in [`run`] (pure: args in, output string out)
//! so every command is unit-testable; `src/bin/flagsim.rs` is a thin
//! wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod dashboard;
pub mod submission;

pub use commands::{run, CliError};
pub use dashboard::Dashboard;
