//! Live sweep dashboard: an in-place ANSI status panel for
//! `flagsim sweep --dashboard`.
//!
//! While the sweep runs, the panel shows per-worker activity (which
//! repetition each worker last finished), overall progress, and the
//! streaming completion-time mean ± 95% CI with a sparkline of the mean's
//! recent history — read live from the telemetry
//! [`MetricsRegistry`] gauges that
//! [`flagsim_core::sweep`]'s collector publishes
//! (`sweep.completion.mean_s` / `sweep.completion.ci95_s`).
//!
//! For **sharded** sweeps the panel switches to a fleet view
//! ([`Dashboard::update_fleet`]): one row per worker process with its
//! connection state, merged-rep throughput, heartbeat age, reconnect
//! count, and telemetry shipping counters — fed from the coordinator's
//! [`ObsHub`](flagsim_shard::ObsHub) snapshots by a poller thread.
//!
//! The terminal mechanics — width detection, line clamping, the
//! cursor-up/clear-to-EOL repaint, scroll-above interleaving, and
//! sparklines — live in [`flagsim_watch::term`], shared with the
//! `flagsim watch` TUI so the two cannot diverge. This module keeps
//! only the sweep-specific state and frame layout.
//!
//! Everything is drawn on **stderr** so stdout stays machine-readable,
//! and the in-place redraw only happens when stderr is a real terminal;
//! piped or redirected, the dashboard degrades to occasional plain
//! `sweep: c/t rep(s) done ...` lines — the same shape `--progress`
//! prints — so CI logs stay diff-friendly. Out-of-band lines (failure
//! reports, structured logs) go through [`Dashboard::println_above`],
//! which scrolls them out above the panel and repaints, so interleaved
//! output never shears the frame.

use flagsim_core::sweep::SweepProgress;
use flagsim_telemetry::MetricsRegistry;
use flagsim_watch::term::{detect_width, sparkline, Panel};
use std::io::IsTerminal;
use std::sync::{Arc, Mutex, MutexGuard};

/// How many mean samples the sparkline keeps.
const HISTORY: usize = 32;

/// One worker row of the fleet panel (a rendered-down
/// [`WorkerObs`](flagsim_shard::WorkerObs) snapshot).
#[derive(Debug, Clone, Default)]
pub struct FleetRow {
    /// Worker name from its `hello_ok`.
    pub name: String,
    /// Session currently open.
    pub connected: bool,
    /// Repetitions merged from this worker.
    pub reps_done: u64,
    /// Recent throughput, repetitions per second.
    pub reps_per_sec: f64,
    /// Milliseconds since the last frame from this worker.
    pub heartbeat_age_ms: u64,
    /// Sessions beyond the first.
    pub reconnects: u64,
    /// Telemetry frames shipped by this worker.
    pub shipped: u64,
    /// Telemetry records dropped (bounded buffers / forced loss).
    pub dropped: u64,
    /// Recent throughput series for the row's sparkline.
    pub spark: Vec<f64>,
}

/// Mutable dashboard state behind the [`Dashboard`]'s mutex.
#[derive(Debug)]
struct State {
    /// Last repetition each worker finished (`None` until its first).
    last_rep: Vec<Option<u64>>,
    /// Repetitions each worker has finished.
    per_worker: Vec<u64>,
    /// Recent history of the streaming mean, for the sparkline.
    mean_history: Vec<f64>,
    /// The repaintable stderr panel (shared plumbing with `watch`).
    panel: Panel,
    /// Completed count at the last plain-mode line.
    last_plain: u64,
}

/// A live, in-place progress panel for a sweep. Construct once, hand
/// [`Dashboard::update`] to [`flagsim_core::sweep::SweepRunner::on_progress`]
/// (or poll [`Dashboard::update_fleet`] for sharded sweeps), and call
/// [`Dashboard::finish`] when the sweep returns.
#[derive(Debug)]
pub struct Dashboard {
    jobs: usize,
    total: u64,
    metrics: Arc<MetricsRegistry>,
    interactive: bool,
    state: Mutex<State>,
}

impl Dashboard {
    /// A dashboard for `jobs` workers over `total` repetitions, reading
    /// live statistics from `metrics`. Interactive (in-place ANSI
    /// redraw) exactly when stderr is a terminal.
    pub fn new(jobs: usize, total: u64, metrics: Arc<MetricsRegistry>) -> Self {
        Self::with_width(jobs, total, metrics, detect_width())
    }

    /// [`Dashboard::new`] with an explicit width (tests; `new` detects).
    pub fn with_width(
        jobs: usize,
        total: u64,
        metrics: Arc<MetricsRegistry>,
        width: usize,
    ) -> Self {
        let interactive = std::io::stderr().is_terminal();
        Dashboard {
            jobs: jobs.max(1),
            total,
            metrics,
            interactive,
            state: Mutex::new(State {
                last_rep: vec![None; jobs.max(1)],
                per_worker: vec![0; jobs.max(1)],
                mean_history: Vec::new(),
                panel: Panel::new(interactive, width),
                last_plain: 0,
            }),
        }
    }

    /// Whether the dashboard will redraw in place (stderr is a TTY) or
    /// fall back to plain progress lines.
    pub fn is_interactive(&self) -> bool {
        self.interactive
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Print a line *above* the live panel and repaint it: the line
    /// scrolls away like normal output while the panel stays put at the
    /// bottom. Non-interactive (or before the first frame) this is a
    /// plain stderr line. This is the dashboard-aware writer that
    /// failure reports and structured logs route through, so
    /// interleaved output never shears the frame.
    pub fn println_above(&self, line: &str) {
        let mut st = self.lock_state();
        let mut err = std::io::stderr().lock();
        st.panel.println_above(line, &mut err);
    }

    /// Record one progress snapshot and redraw. Safe to call from the
    /// sweep's worker threads (the runner already serializes callbacks).
    pub fn update(&self, p: SweepProgress) {
        let mut st = self.lock_state();
        if let Some(slot) = st.last_rep.get_mut(p.worker % self.jobs.max(1)) {
            *slot = Some(p.rep);
        }
        if let Some(n) = st.per_worker.get_mut(p.worker % self.jobs.max(1)) {
            *n += 1;
        }
        let mean = self.metrics.gauge("sweep.completion.mean_s").get();
        if mean > 0.0 {
            st.mean_history.push(mean);
            let excess = st.mean_history.len().saturating_sub(HISTORY);
            if excess > 0 {
                st.mean_history.drain(..excess);
            }
        }
        if self.interactive {
            let frame = self.render_frame(&st, &p);
            let mut err = std::io::stderr().lock();
            st.panel.draw(&frame, &mut err);
        } else {
            // Plain fallback: one line every ~10% (and the final rep),
            // mirroring --progress so piped output stays log-friendly.
            let step = (self.total / 10).max(1);
            if p.completed == p.total || p.completed >= st.last_plain + step {
                st.last_plain = p.completed;
                eprintln!(
                    "sweep: {}/{} rep(s) done, {} failed{}",
                    p.completed,
                    p.total,
                    p.failed,
                    self.stats_suffix()
                );
            }
        }
    }

    /// Redraw the panel from a fleet snapshot (sharded sweeps): one row
    /// per worker process instead of one per thread.
    pub fn update_fleet(&self, merged: u64, failed: u64, rows: &[FleetRow]) {
        let mut st = self.lock_state();
        let mean = self.metrics.gauge("sweep.completion.mean_s").get();
        if mean > 0.0 && st.mean_history.last() != Some(&mean) {
            st.mean_history.push(mean);
            let excess = st.mean_history.len().saturating_sub(HISTORY);
            if excess > 0 {
                st.mean_history.drain(..excess);
            }
        }
        if self.interactive {
            let frame = self.render_fleet_frame(&st, merged, failed, rows);
            let mut err = std::io::stderr().lock();
            st.panel.draw(&frame, &mut err);
        } else {
            let step = (self.total / 10).max(1);
            if merged == self.total || merged >= st.last_plain + step {
                st.last_plain = merged;
                let live = rows.iter().filter(|r| r.connected).count();
                eprintln!(
                    "sweep: {}/{} rep(s) merged, {} failed, {}/{} worker(s) live{}",
                    merged,
                    self.total,
                    failed,
                    live,
                    rows.len(),
                    self.stats_suffix()
                );
            }
        }
    }

    /// Finish the panel: leave the last frame on screen and move to a
    /// fresh line (interactive), or print the final plain line.
    pub fn finish(&self) {
        let mut st = self.lock_state();
        if self.interactive {
            // The panel closes: later println_above calls fall back to
            // plain lines instead of repainting a stale frame.
            let mut err = std::io::stderr().lock();
            st.panel.finish(&mut err);
        } else if st.last_plain == 0 {
            // A sweep short enough that no step line fired still gets
            // one closing line.
            eprintln!("sweep: done{}", self.stats_suffix());
        }
    }

    /// ` | mean 12.34s ± 0.56s` once the streaming gauges are live.
    fn stats_suffix(&self) -> String {
        let mean = self.metrics.gauge("sweep.completion.mean_s").get();
        if mean <= 0.0 {
            return String::new();
        }
        let ci = self.metrics.gauge("sweep.completion.ci95_s").get();
        format!(" | mean {mean:.2}s \u{b1} {ci:.2}s")
    }

    /// `sweep [###---] c/t rep(s), f failed` — shared by both frames.
    fn progress_bar(&self, completed: u64, failed: u64, verb: &str) -> String {
        let filled = (completed * 24).checked_div(self.total).unwrap_or(0) as usize;
        format!(
            "sweep [{}{}] {}/{} rep(s) {}, {} failed\n",
            "#".repeat(filled.min(24)),
            "-".repeat(24 - filled.min(24)),
            completed,
            self.total,
            verb,
            failed,
        )
    }

    /// One full frame of the interactive per-thread panel.
    fn render_frame(&self, st: &State, p: &SweepProgress) -> String {
        let mut out = self.progress_bar(p.completed, p.failed, "done");
        for (w, (last, n)) in st.last_rep.iter().zip(&st.per_worker).enumerate() {
            match last {
                Some(rep) => out.push_str(&format!(
                    "  worker {w}: rep {rep:>4} done  ({n} so far)\n"
                )),
                None => out.push_str(&format!("  worker {w}: idle\n")),
            }
        }
        out.push_str(&format!(
            "  completion{}  {}\n",
            self.stats_suffix(),
            sparkline(&st.mean_history)
        ));
        out
    }

    /// One full frame of the interactive fleet panel.
    fn render_fleet_frame(
        &self,
        st: &State,
        merged: u64,
        failed: u64,
        rows: &[FleetRow],
    ) -> String {
        let mut out = self.progress_bar(merged, failed, "merged");
        let name_w = rows.iter().map(|r| r.name.chars().count()).max().unwrap_or(6).max(6);
        for r in rows {
            let state = if r.connected { '\u{25cf}' } else { '\u{25cb}' };
            let mut line = format!(
                "  {state} {:<name_w$}  {:>6} reps  {:>7.1}/s  hb {:>5}ms  rc {}",
                r.name, r.reps_done, r.reps_per_sec, r.heartbeat_age_ms, r.reconnects,
            );
            if r.shipped > 0 || r.dropped > 0 {
                line.push_str(&format!("  tx {} ({} dropped)", r.shipped, r.dropped));
            }
            let spark = sparkline(&r.spark);
            if !spark.is_empty() {
                line.push_str("  ");
                line.push_str(&spark);
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "  completion{}  {}\n",
            self.stats_suffix(),
            sparkline(&st.mean_history)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(completed: u64, total: u64, worker: usize, rep: u64) -> SweepProgress {
        SweepProgress {
            completed,
            failed: 0,
            total,
            worker,
            rep,
        }
    }

    #[test]
    fn update_tracks_workers_and_history() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge("sweep.completion.mean_s").set(12.5);
        let dash = Dashboard::new(2, 8, Arc::clone(&metrics));
        dash.update(progress(1, 8, 0, 0));
        dash.update(progress(2, 8, 1, 1));
        dash.update(progress(3, 8, 0, 2));
        let st = dash.state.lock().unwrap();
        assert_eq!(st.last_rep, vec![Some(2), Some(1)]);
        assert_eq!(st.per_worker, vec![2, 1]);
        assert_eq!(st.mean_history.len(), 3);
    }

    #[test]
    fn frame_mentions_every_worker_and_the_bar() {
        let metrics = Arc::new(MetricsRegistry::new());
        let dash = Dashboard::new(3, 10, metrics);
        let st = dash.state.lock().unwrap();
        let frame = dash.render_frame(&st, &progress(5, 10, 0, 4));
        assert!(frame.contains("5/10"), "{frame}");
        assert!(frame.contains("worker 0"), "{frame}");
        assert!(frame.contains("worker 2"), "{frame}");
        assert!(frame.contains('#'), "{frame}");
    }

    #[test]
    fn history_is_bounded() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge("sweep.completion.mean_s").set(1.0);
        let dash = Dashboard::new(1, 100, Arc::clone(&metrics));
        for i in 0..(HISTORY as u64 + 20) {
            metrics
                .gauge("sweep.completion.mean_s")
                .set(1.0 + i as f64);
            dash.update(progress(i + 1, 100, 0, i));
        }
        let st = dash.state.lock().unwrap();
        assert_eq!(st.mean_history.len(), HISTORY);
    }

    #[test]
    fn fleet_frame_shows_rows_state_and_shipping() {
        let metrics = Arc::new(MetricsRegistry::new());
        let dash = Dashboard::with_width(1, 100, metrics, 200);
        let rows = vec![
            FleetRow {
                name: "local-0".into(),
                connected: true,
                reps_done: 42,
                reps_per_sec: 8.25,
                heartbeat_age_ms: 13,
                reconnects: 1,
                shipped: 7,
                dropped: 2,
                spark: vec![1.0, 2.0, 3.0],
            },
            FleetRow { name: "local-1".into(), ..FleetRow::default() },
        ];
        let st = dash.state.lock().unwrap();
        let frame = dash.render_fleet_frame(&st, 50, 0, &rows);
        assert!(frame.contains("50/100"), "{frame}");
        assert!(frame.contains("merged"), "{frame}");
        assert!(frame.contains('\u{25cf}'), "connected marker: {frame}");
        assert!(frame.contains('\u{25cb}'), "disconnected marker: {frame}");
        assert!(frame.contains("local-0"), "{frame}");
        assert!(frame.contains("tx 7 (2 dropped)"), "{frame}");
        assert!(frame.contains("rc 1"), "{frame}");
    }

    #[test]
    fn panel_plumbing_is_the_shared_watch_implementation() {
        // The dashboard's clamping/sparkline/repaint behavior is
        // exactly flagsim_watch::term's — spot-check the re-used pieces
        // so a fork of the plumbing would fail here.
        let s = sparkline(&[1.0, 3.0]);
        assert_eq!(s.chars().count(), 2);
        let mut panel = Panel::new(true, 80);
        let mut out: Vec<u8> = Vec::new();
        panel.draw("a\nb\n", &mut out);
        panel.draw("c\nd\n", &mut out);
        assert!(String::from_utf8(out).unwrap().contains("\x1b[2A"));
    }
}
