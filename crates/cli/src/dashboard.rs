//! Live sweep dashboard: an in-place ANSI status panel for
//! `flagsim sweep --dashboard`.
//!
//! While the sweep runs, the panel shows per-worker activity (which
//! repetition each worker last finished), overall progress, and the
//! streaming completion-time mean ± 95% CI with a sparkline of the mean's
//! recent history — read live from the telemetry
//! [`MetricsRegistry`] gauges that
//! [`flagsim_core::sweep`]'s collector publishes
//! (`sweep.completion.mean_s` / `sweep.completion.ci95_s`).
//!
//! Everything is drawn on **stderr** so stdout stays machine-readable,
//! and the in-place redraw (cursor-up escapes) only happens when stderr
//! is a real terminal; piped or redirected, the dashboard degrades to
//! occasional plain `sweep: c/t rep(s) done ...` lines — the same shape
//! `--progress` prints — so CI logs stay diff-friendly.

use flagsim_core::sweep::SweepProgress;
use flagsim_telemetry::MetricsRegistry;
use std::io::{IsTerminal, Write as _};
use std::sync::{Arc, Mutex};

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];

/// How many mean samples the sparkline keeps.
const HISTORY: usize = 32;

/// Mutable dashboard state behind the [`Dashboard`]'s mutex.
#[derive(Debug)]
struct State {
    /// Last repetition each worker finished (`None` until its first).
    last_rep: Vec<Option<u64>>,
    /// Repetitions each worker has finished.
    per_worker: Vec<u64>,
    /// Recent history of the streaming mean, for the sparkline.
    mean_history: Vec<f64>,
    /// Lines the previous frame drew (0 before the first frame).
    drawn_lines: usize,
    /// Completed count at the last plain-mode line.
    last_plain: u64,
}

/// A live, in-place progress panel for a sweep. Construct once, hand
/// [`Dashboard::update`] to [`flagsim_core::sweep::SweepRunner::on_progress`],
/// and call [`Dashboard::finish`] when the sweep returns.
#[derive(Debug)]
pub struct Dashboard {
    jobs: usize,
    total: u64,
    metrics: Arc<MetricsRegistry>,
    interactive: bool,
    state: Mutex<State>,
}

impl Dashboard {
    /// A dashboard for `jobs` workers over `total` repetitions, reading
    /// live statistics from `metrics`. Interactive (in-place ANSI
    /// redraw) exactly when stderr is a terminal.
    pub fn new(jobs: usize, total: u64, metrics: Arc<MetricsRegistry>) -> Self {
        Dashboard {
            jobs: jobs.max(1),
            total,
            metrics,
            interactive: std::io::stderr().is_terminal(),
            state: Mutex::new(State {
                last_rep: vec![None; jobs.max(1)],
                per_worker: vec![0; jobs.max(1)],
                mean_history: Vec::new(),
                drawn_lines: 0,
                last_plain: 0,
            }),
        }
    }

    /// Whether the dashboard will redraw in place (stderr is a TTY) or
    /// fall back to plain progress lines.
    pub fn is_interactive(&self) -> bool {
        self.interactive
    }

    /// Record one progress snapshot and redraw. Safe to call from the
    /// sweep's worker threads (the runner already serializes callbacks).
    pub fn update(&self, p: SweepProgress) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(slot) = st.last_rep.get_mut(p.worker % self.jobs.max(1)) {
            *slot = Some(p.rep);
        }
        if let Some(n) = st.per_worker.get_mut(p.worker % self.jobs.max(1)) {
            *n += 1;
        }
        let mean = self.metrics.gauge("sweep.completion.mean_s").get();
        if mean > 0.0 {
            st.mean_history.push(mean);
            let excess = st.mean_history.len().saturating_sub(HISTORY);
            if excess > 0 {
                st.mean_history.drain(..excess);
            }
        }
        if self.interactive {
            let frame = self.render_frame(&st, &p);
            let up = st.drawn_lines;
            st.drawn_lines = frame.lines().count();
            let mut err = std::io::stderr().lock();
            if up > 0 {
                let _ = write!(err, "\x1b[{up}A\r");
            }
            // Clear-to-end-of-line on every row so shrinking text never
            // leaves stale characters behind.
            let _ = write!(err, "{}", frame.replace('\n', "\x1b[K\n"));
            let _ = err.flush();
        } else {
            // Plain fallback: one line every ~10% (and the final rep),
            // mirroring --progress so piped output stays log-friendly.
            let step = (self.total / 10).max(1);
            if p.completed == p.total || p.completed >= st.last_plain + step {
                st.last_plain = p.completed;
                eprintln!(
                    "sweep: {}/{} rep(s) done, {} failed{}",
                    p.completed,
                    p.total,
                    p.failed,
                    self.stats_suffix()
                );
            }
        }
    }

    /// Finish the panel: leave the last frame on screen and move to a
    /// fresh line (interactive), or print the final plain line.
    pub fn finish(&self) {
        let st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if self.interactive {
            if st.drawn_lines > 0 {
                eprintln!();
            }
        } else if st.last_plain == 0 {
            // A sweep short enough that no step line fired still gets
            // one closing line.
            eprintln!("sweep: done{}", self.stats_suffix());
        }
    }

    /// ` | mean 12.34s ± 0.56s` once the streaming gauges are live.
    fn stats_suffix(&self) -> String {
        let mean = self.metrics.gauge("sweep.completion.mean_s").get();
        if mean <= 0.0 {
            return String::new();
        }
        let ci = self.metrics.gauge("sweep.completion.ci95_s").get();
        format!(" | mean {mean:.2}s \u{b1} {ci:.2}s")
    }

    /// One full frame of the interactive panel.
    fn render_frame(&self, st: &State, p: &SweepProgress) -> String {
        let mut out = String::new();
        let filled = (p.completed * 24).checked_div(self.total).unwrap_or(0) as usize;
        out.push_str(&format!(
            "sweep [{}{}] {}/{} rep(s), {} failed\n",
            "#".repeat(filled.min(24)),
            "-".repeat(24 - filled.min(24)),
            p.completed,
            p.total,
            p.failed,
        ));
        for (w, (last, n)) in st.last_rep.iter().zip(&st.per_worker).enumerate() {
            match last {
                Some(rep) => out.push_str(&format!(
                    "  worker {w}: rep {rep:>4} done  ({n} so far)\n"
                )),
                None => out.push_str(&format!("  worker {w}: idle\n")),
            }
        }
        out.push_str(&format!(
            "  completion{}  {}\n",
            self.stats_suffix(),
            sparkline(&st.mean_history)
        ));
        out
    }
}

/// Render `values` as a fixed-height sparkline (empty string for no
/// data). Scaling is min..max of the window, so the line shows the
/// streaming mean settling as repetitions accumulate.
fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if values.is_empty() || !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * (SPARKS.len() - 1) as f64).round() as usize;
            SPARKS[idx.min(SPARKS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(completed: u64, total: u64, worker: usize, rep: u64) -> SweepProgress {
        SweepProgress {
            completed,
            failed: 0,
            total,
            worker,
            rep,
        }
    }

    #[test]
    fn sparkline_scales_between_min_and_max() {
        let s = sparkline(&[1.0, 2.0, 3.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], SPARKS[0]);
        assert_eq!(chars[2], SPARKS[7]);
    }

    #[test]
    fn sparkline_of_nothing_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_of_constant_series_stays_low() {
        let s = sparkline(&[5.0, 5.0]);
        assert!(s.chars().all(|c| c == SPARKS[0]), "{s}");
    }

    #[test]
    fn update_tracks_workers_and_history() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge("sweep.completion.mean_s").set(12.5);
        let dash = Dashboard::new(2, 8, Arc::clone(&metrics));
        dash.update(progress(1, 8, 0, 0));
        dash.update(progress(2, 8, 1, 1));
        dash.update(progress(3, 8, 0, 2));
        let st = dash.state.lock().unwrap();
        assert_eq!(st.last_rep, vec![Some(2), Some(1)]);
        assert_eq!(st.per_worker, vec![2, 1]);
        assert_eq!(st.mean_history.len(), 3);
    }

    #[test]
    fn frame_mentions_every_worker_and_the_bar() {
        let metrics = Arc::new(MetricsRegistry::new());
        let dash = Dashboard::new(3, 10, metrics);
        let st = dash.state.lock().unwrap();
        let frame = dash.render_frame(&st, &progress(5, 10, 0, 4));
        assert!(frame.contains("5/10"), "{frame}");
        assert!(frame.contains("worker 0"), "{frame}");
        assert!(frame.contains("worker 2"), "{frame}");
        assert!(frame.contains('#'), "{frame}");
    }

    #[test]
    fn history_is_bounded() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge("sweep.completion.mean_s").set(1.0);
        let dash = Dashboard::new(1, 100, Arc::clone(&metrics));
        for i in 0..(HISTORY as u64 + 20) {
            metrics
                .gauge("sweep.completion.mean_s")
                .set(1.0 + i as f64);
            dash.update(progress(i + 1, 100, 0, i));
        }
        let st = dash.state.lock().unwrap();
        assert_eq!(st.mean_history.len(), HISTORY);
    }
}
