//! The `flagsim` binary: thin wrapper over [`flagsim_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flagsim_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
