//! The `flagsim` binary: thin wrapper over [`flagsim_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flagsim_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Usage/runtime errors exit 2; a soft-deadline expiry exits 3
            // so wrapper scripts know the sweep is resumable.
            std::process::exit(e.exit_code());
        }
    }
}
