//! A text format for student dependency-graph submissions, so the §V-C
//! rubric can grade transcriptions of real drawings:
//!
//! ```text
//! # one task per line, then the arrows
//! task black stripe
//! task green stripe
//! task red triangle
//! task white dot
//! edge black stripe -> red triangle
//! edge green stripe -> red triangle
//! edge red triangle -> white dot
//! # optional markers:
//! # spatial      (layout implied the layers, arrows omitted)
//! # incomplete   (the drawing was unfinished)
//! ```

use flagsim_taskgraph::SubmittedGraph;

/// Parse a submission file. Errors carry the 1-based line number.
pub fn parse_submission(text: &str) -> Result<SubmittedGraph, String> {
    let mut tasks: Vec<String> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut spatial = false;
    let mut incomplete = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("task ") {
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty task name"));
            }
            if tasks.iter().any(|t| t.eq_ignore_ascii_case(name)) {
                return Err(format!("line {lineno}: duplicate task {name:?}"));
            }
            tasks.push(name.to_owned());
        } else if let Some(rest) = line.strip_prefix("edge ") {
            let (from, to) = rest
                .split_once("->")
                .ok_or_else(|| format!("line {lineno}: edge needs 'a -> b'"))?;
            let find = |name: &str| -> Result<usize, String> {
                let name = name.trim();
                tasks
                    .iter()
                    .position(|t| t.eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("line {lineno}: unknown task {name:?}"))
            };
            edges.push((find(from)?, find(to)?));
        } else if line == "spatial" {
            spatial = true;
        } else if line == "incomplete" {
            incomplete = true;
        } else {
            return Err(format!("line {lineno}: unrecognized line {line:?}"));
        }
    }
    if tasks.is_empty() {
        return Err("submission has no tasks".to_owned());
    }
    let mut sub = SubmittedGraph::new(tasks, edges);
    sub.spatial_only = spatial;
    sub.complete = !incomplete;
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_perfect_jordan_submission() {
        let sub = parse_submission(
            "# Jordan\ntask black stripe\ntask green stripe\ntask red triangle\n\
             task white dot\nedge black stripe -> red triangle\n\
             edge green stripe -> red triangle\nedge red triangle -> white dot\n",
        )
        .unwrap();
        assert_eq!(sub.tasks.len(), 4);
        assert_eq!(sub.edges.len(), 3);
        assert!(sub.complete);
        assert!(!sub.spatial_only);
    }

    #[test]
    fn markers_set_flags() {
        let sub = parse_submission("task a\ntask b\nspatial\nincomplete\n").unwrap();
        assert!(sub.spatial_only);
        assert!(!sub.complete);
    }

    #[test]
    fn edge_names_match_case_insensitively() {
        let sub =
            parse_submission("task Black Stripe\ntask Dot\nedge black stripe -> DOT\n").unwrap();
        assert_eq!(sub.edges, vec![(0, 1)]);
    }

    #[test]
    fn errors_with_line_numbers() {
        assert!(parse_submission("task a\nedge a -> missing\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_submission("nonsense\n").unwrap_err().contains("line 1"));
        assert!(parse_submission("task a\nedge a b\n")
            .unwrap_err()
            .contains("'a -> b'"));
        assert!(parse_submission("").unwrap_err().contains("no tasks"));
        assert!(parse_submission("task a\ntask A\n")
            .unwrap_err()
            .contains("duplicate"));
    }
}
