//! Command dispatch.

use crate::submission::parse_submission;
use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_assessment::jordan;
use flagsim_core::classroom::ClassroomSession;
use flagsim_core::config::ActivityConfig;
use flagsim_core::discussion;
use flagsim_core::faults::{FaultPlan, RecoveryPolicy};
use flagsim_core::layered;
use flagsim_core::scenario::Scenario;
use flagsim_core::slides;
use flagsim_core::work::PreparedFlag;
use flagsim_core::TeamKit;
use flagsim_flags::{library, FlagSpec};
use flagsim_simcheck as simcheck;
use flagsim_grid::render;
use flagsim_taskgraph::{analysis, classify, list_schedule, Priority};
use std::fmt::Write as _;

/// A user-facing failure: message plus the usage hint to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Exit code for a soft-deadline expiry (`sweep --max-wall-secs`):
/// distinct from usage/runtime errors so scripts can tell "resume me"
/// apart from "you did it wrong".
pub const EXIT_DEADLINE: i32 = 3;

/// Exit code for every other CLI error.
pub const EXIT_USAGE: i32 = 2;

impl CliError {
    /// The process exit status this error asks for.
    pub fn exit_code(&self) -> i32 {
        if self.message.starts_with("soft deadline") {
            EXIT_DEADLINE
        } else {
            EXIT_USAGE
        }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError {
        message: message.into(),
    })
}

const USAGE: &str = "\
flagsim — the flag-coloring PDC activity simulator

USAGE:
  flagsim flags
  flagsim render <flag> [ascii|ansi|ppm|svg] [WxH]
  flagsim slides [<flag>]
  flagsim run <SCENARIO> [--flag NAME] [--kind KIND]
              [--seed N] [--markers N] [--gantt] [--trace-out FILE]
              [--no-check]
  flagsim faults <SCENARIO> (--plan SPEC | --random)
                 [--policy rebalance|spare:SECS|abort] [--flag NAME]
                 [--kind KIND] [--seed N] [--trace-out FILE] [--no-check]
  flagsim faults --demo-deadlock
  flagsim sweep <SCENARIO> [--reps M] [--jobs N]
                [--flag NAME] [--kind KIND] [--seed N] [--team N]
                [--warmup] [--stream] [--progress] [--dashboard]
                [--trace-out FILE] [--no-check]
                [--workers N | --connect ADDR[,ADDR..]]
                [--checkpoint FILE] [--checkpoint-every K]
                [--resume FILE] [--max-wall-secs S]
                [--policy rebalance|spare:SECS|abort] [--chunk K]
                [--obs-out FILE] [--obs-serve ADDR] [--trace-sample N]
                [--log-level error|warn|info|debug|trace]
  flagsim worker --listen ADDR [--once] [--quiet] [--name NAME]
                 [--log-level error|warn|info|debug|trace]
  flagsim explain <SCENARIO> [--format text|json] [--flag NAME]
                  [--kind KIND] [--seed N] [--team N] [--jobs N]
  flagsim profile <SCENARIO> [--out FILE] [--format chrome|folded|table]
                  [--metrics] [--reps M] [--jobs N] [--flag NAME]
                  [--kind KIND] [--seed N]
  flagsim session [--repeat] [--seed N]
  flagsim check <SCENARIO|FLAG|PLAN|demo-deadlock>
                [--format text|json] [--deny note|warning|error]
                [--allow IDS] [--static-only] [--flag NAME] [--kind KIND]
                [--team N] [--seed N] [--jobs N] [--plan SPEC] [--policy P]
  flagsim verify <SCENARIO|demo-deadlock> [--flag NAME] [--kind KIND]
                 [--seed N] [--max-schedules N] [--naive]
                 [--format text|json] [--deny note|warning|error]
                 [--allow IDS] [--witness-out PREFIX]
  flagsim lint <flag|file> [--size WxH] [--format text|json]
               [--deny note|warning|error] [--allow IDS]
  flagsim graph <flag> [--procs N]
  flagsim grade <file>
  flagsim parse <file>
  flagsim pack --out DIR [--flag NAME] [--kind KIND] [--seed N]
  flagsim vocab [<term>]
  flagsim report [--seed N]
  flagsim replay <SCENARIO> [--flag NAME] [--frames N]
                 [--seed N]
  flagsim watch <SCENARIO> [--flag NAME] [--kind KIND] [--seed N]
                [--script KEYS] [--frames-out FILE] [--width N] [--no-check]
  flagsim watch --trace FILE [--script KEYS] [--frames-out FILE]
  flagsim watch (--connect ADDR | --follow FILE) [--once] [--width N]

SCENARIO: 1 | 2 | 3 | 4 | pipelined | alternating
          (onestripe = 3, fourslice = 4)

KIND: dauber | thick | thin | crayon (default thick)

PLAN SPEC: comma-separated fault events —
  break:COLOR@SECS  dryout:COLOR@SECS  dropout:STUDENT@SECS
  late:STUDENT@SECS  fumble:COLOR+SECS  bell@SECS
  e.g. \"break:blue@20,dropout:2@30,bell@120\"
";

/// Execute a command line (without the program name). Returns the text to
/// print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(USAGE.to_owned());
    };
    match cmd.as_str() {
        "flags" => cmd_flags(),
        "render" => cmd_render(&args[1..]),
        "slides" => cmd_slides(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "faults" => cmd_faults(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "worker" => cmd_worker(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "session" => cmd_session(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "graph" => cmd_graph(&args[1..]),
        "grade" => cmd_grade(&args[1..]),
        "parse" => cmd_parse(&args[1..]),
        "pack" => cmd_pack(&args[1..]),
        "vocab" => cmd_vocab(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn find_flag(name: &str) -> Result<FlagSpec, CliError> {
    library::by_name(name).ok_or_else(|| CliError {
        message: format!(
            "unknown flag {name:?}; available: {}",
            library::all()
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    })
}

fn parse_kind(s: &str) -> Result<ImplementKind, CliError> {
    Ok(match s {
        "dauber" => ImplementKind::BingoDauber,
        "thick" => ImplementKind::ThickMarker,
        "thin" => ImplementKind::ThinMarker,
        "crayon" => ImplementKind::Crayon,
        other => return err(format!("unknown implement kind {other:?}")),
    })
}

/// Pull `--key value` and `--flag`-style switches out of an arg list.
struct Opts {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

fn parse_opts(args: &[String], value_keys: &[&str]) -> Result<Opts, CliError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if value_keys.contains(&key) {
                let Some(value) = it.next() else {
                    return err(format!("--{key} needs a value"));
                };
                options.push((key.to_owned(), Some(value.clone())));
            } else {
                options.push((key.to_owned(), None));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Opts {
        positional,
        options,
    })
}

impl Opts {
    fn value(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }
    fn flag(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }
    /// Every value given for a repeatable option, in order.
    fn values<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.options
            .iter()
            .filter(move |(k, _)| k == key)
            .filter_map(|(_, v)| v.as_deref())
    }
}

/// Run `body` with a telemetry collector installed when `--trace-out FILE`
/// was given, then write the recorded Chrome trace to the file. The
/// confirmation note goes to stderr so stdout stays machine-readable.
fn with_optional_trace<T>(
    path: Option<&str>,
    body: impl FnOnce() -> Result<T, CliError>,
) -> Result<T, CliError> {
    let Some(path) = path else {
        return body();
    };
    let collector = flagsim_telemetry::Collector::install();
    let result = body();
    let set = collector.finish();
    if result.is_ok() {
        std::fs::write(path, set.chrome_trace()).map_err(|e| CliError {
            message: format!("cannot write {path}: {e}"),
        })?;
        eprintln!("trace: {} span(s) written to {path}", set.len());
    }
    result
}

fn cmd_flags() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16}{:>8}{:>8}{:>10}{:>12}",
        "flag", "width", "height", "layers", "layered?"
    );
    for f in library::all() {
        let _ = writeln!(
            out,
            "{:<16}{:>8}{:>8}{:>10}{:>12}",
            f.name,
            f.default_width,
            f.default_height,
            f.layer_count(),
            if f.is_layered() { "yes" } else { "flat" }
        );
    }
    Ok(out)
}

fn parse_size(s: &str) -> Result<(u32, u32), CliError> {
    let Some((w, h)) = s.split_once('x') else {
        return err(format!("bad size {s:?}, expected WxH"));
    };
    let w: u32 = w.parse().map_err(|_| CliError {
        message: format!("bad width {w:?}"),
    })?;
    let h: u32 = h.parse().map_err(|_| CliError {
        message: format!("bad height {h:?}"),
    })?;
    if w == 0 || h == 0 {
        return err("size must be nonzero");
    }
    Ok((w, h))
}

fn cmd_render(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &[])?;
    let Some(name) = opts.positional.first() else {
        return err("usage: flagsim render <flag> [ascii|ansi|ppm] [WxH]");
    };
    let flag = find_flag(name)?;
    let mut mode = "ascii";
    let mut size = (flag.default_width, flag.default_height);
    for extra in &opts.positional[1..] {
        match extra.as_str() {
            "ascii" | "ansi" | "ppm" | "svg" => mode = extra,
            s if s.contains('x') => size = parse_size(s)?,
            other => return err(format!("unexpected argument {other:?}")),
        }
    }
    let grid = flag.rasterize_at(size.0, size.1);
    Ok(match mode {
        "ansi" => render::to_ansi(&grid),
        "ppm" => render::to_ppm(&grid),
        "svg" => render::to_svg(&grid, 24),
        _ => format!(
            "{}legend: {}\n",
            render::to_ascii(&grid),
            render::legend(&grid)
        ),
    })
}

fn cmd_slides(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &[])?;
    let spec = match opts.positional.first() {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    Ok(slides::fig1_deck(&PreparedFlag::new(&spec)))
}

fn build_scenario(which: &str, flag: &PreparedFlag) -> Result<Scenario, CliError> {
    Ok(match which {
        "1" | "2" | "3" | "4" => Scenario::fig1(which.parse::<u8>().expect("digit")),
        // Mnemonic aliases for the two scenarios most scripts profile.
        "onestripe" => Scenario::fig1(3),
        "fourslice" => Scenario::fig1(4),
        "pipelined" => Scenario::pipelined_slices(flag, 4, 4),
        "alternating" => Scenario::alternating_slices(),
        other => {
            return err(format!(
                "unknown scenario {other:?} (use 1-4, onestripe, fourslice, pipelined, \
                 alternating)"
            ))
        }
    })
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["flag", "kind", "seed", "markers", "trace-out"])?;
    let Some(which) = opts.positional.first() else {
        return err("usage: flagsim run <SCENARIO> [options]");
    };
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let markers: usize = opts
        .value("markers")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError {
            message: "bad --markers".into(),
        })?;
    if markers == 0 {
        return err("--markers must be at least 1");
    }
    let cfg = ActivityConfig::default().with_seed(seed);
    let size = scenario.team_size(&flag, &cfg);
    let mut team: Vec<StudentProfile> =
        (1..=size).map(|i| StudentProfile::new(format!("P{i}"))).collect();
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[])).with_count_all(markers);
    if !opts.flag("no-check") {
        preflight_static(&spec, &flag, &scenario, &kit, size + 1, &cfg, &FaultPlan::none())?;
    }
    let report = with_optional_trace(opts.value("trace-out"), || {
        scenario
            .run(&flag, &mut team, &kit, &cfg)
            .map_err(|message| CliError { message })
    })?;
    // Human diagnostics go to stderr (PR-3 sweep convention) so stdout
    // stays the machine-readable report.
    if !report.correct {
        eprintln!(
            "run: finished grid does not match {} — wrong flag on the wall",
            report.flag_name
        );
    }
    if report.breakages > 0 {
        eprintln!("run: {} implement breakage(s) during the run", report.breakages);
    }
    let mut out = report.detail();
    if opts.flag("gantt") {
        let _ = writeln!(out, "\n{}", report.trace.gantt(72));
    }
    Ok(out)
}

fn parse_policy(s: &str) -> Result<RecoveryPolicy, CliError> {
    if s == "rebalance" {
        return Ok(RecoveryPolicy::Rebalance);
    }
    if s == "abort" {
        return Ok(RecoveryPolicy::AbortAndReport);
    }
    if let Some(d) = s.strip_prefix("spare:") {
        let secs: f64 = d.parse().map_err(|_| CliError {
            message: format!("bad spare delay {d:?}"),
        })?;
        if !secs.is_finite() || secs < 0.0 {
            return err("spare delay must be finite and non-negative");
        }
        return Ok(RecoveryPolicy::SpareSwap {
            replacement_delay_secs: secs,
        });
    }
    err(format!(
        "unknown policy {s:?} (use rebalance, spare:SECS, or abort)"
    ))
}

/// Two processes, two markers, opposite acquisition order: the textbook
/// circular wait. The engine's stall detector catches it and reports the
/// full wait-for graph instead of hanging or panicking.
fn demo_deadlock() -> String {
    use flagsim_desim::{Action, Engine, FnProcess, SimDuration, SimError};
    use std::collections::VecDeque;

    let mut engine = Engine::new();
    let red = engine.add_resource("red marker", SimDuration::ZERO);
    let blue = engine.add_resource("blue marker", SimDuration::ZERO);
    let script = |actions: Vec<Action>| {
        let mut queue: VecDeque<Action> = actions.into();
        move |_now| queue.pop_front().unwrap_or(Action::Done)
    };
    engine.add_process(Box::new(FnProcess::new(
        "grabs-red-then-blue",
        script(vec![
            Action::Acquire(red),
            Action::Work(SimDuration::from_secs_f64(1.0)),
            Action::Acquire(blue),
        ]),
    )));
    engine.add_process(Box::new(FnProcess::new(
        "grabs-blue-then-red",
        script(vec![
            Action::Acquire(blue),
            Action::Work(SimDuration::from_secs_f64(1.0)),
            Action::Acquire(red),
        ]),
    )));
    let mut out = String::from(
        "Two students, two markers, opposite grab order — the classic\n\
         circular wait. Instead of hanging, the engine reports:\n\n",
    );
    match engine.try_run() {
        Err(SimError::Stalled { waiters }) => {
            let _ = writeln!(out, "error: {}", SimError::Stalled { waiters: waiters.clone() });
            let _ = writeln!(
                out,
                "\nEvery blocked student appears with what they hold and what\n\
                 they wait for — enough to see the cycle and pick a victim."
            );
            debug_assert!(!waiters.is_empty());
        }
        Err(other) => {
            let _ = writeln!(out, "unexpected error: {other}");
        }
        Ok(_) => {
            let _ = writeln!(out, "unexpectedly completed (engine bug?)");
        }
    }
    out
}

fn cmd_faults(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["plan", "policy", "flag", "kind", "seed", "trace-out"])?;
    if opts.flag("demo-deadlock") {
        return Ok(demo_deadlock());
    }
    let Some(which) = opts.positional.first() else {
        return err(
            "usage: flagsim faults <1|2|3|4|pipelined|alternating> (--plan SPEC | --random) \
             [--policy P] [options], or flagsim faults --demo-deadlock",
        );
    };
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let cfg = ActivityConfig::default().with_seed(seed);
    let size = scenario.team_size(&flag, &cfg);
    let colors = flag.colors_needed(&[]);
    let mut plan = match (opts.value("plan"), opts.flag("random")) {
        (Some(spec), false) => {
            FaultPlan::parse(spec, "cli plan").map_err(|message| CliError { message })?
        }
        (None, true) => FaultPlan::random(seed, size, &colors),
        (Some(_), true) => return err("--plan and --random are mutually exclusive"),
        (None, false) => return err("faults needs --plan SPEC or --random"),
    };
    if let Some(p) = opts.value("policy") {
        plan = plan.with_policy(parse_policy(p)?);
    }
    let mut team: Vec<StudentProfile> =
        (1..=size).map(|i| StudentProfile::new(format!("P{i}"))).collect();
    let kit = TeamKit::uniform(kind, &colors);
    if !opts.flag("no-check") {
        preflight_static(&spec, &flag, &scenario, &kit, size + 1, &cfg, &plan)?;
    }
    let report = with_optional_trace(opts.value("trace-out"), || {
        scenario
            .run_with_faults(&flag, &mut team, &kit, &cfg, &plan)
            .map_err(|message| CliError { message })
    })?;
    // Measurements on stdout; the blow-by-blow incident narrative is
    // human diagnostics and goes to stderr (PR-3 sweep convention), so
    // `flagsim faults ... > results.txt` stays machine-readable.
    let mut out = report.detail_core();
    if let Some(res) = &report.resilience {
        out.push_str(&res.summary());
        eprint!("{}", res.narrative());
    }
    Ok(out)
}

/// `flagsim sweep` — the measurement campaign front door: run a scenario
/// across many seeds on `--jobs` worker threads and print the summary
/// statistics. The job count never changes the numbers, only the
/// wall-clock time.
fn cmd_sweep(args: &[String]) -> Result<String, CliError> {
    use flagsim_core::sweep::SweepRunner;

    let opts = parse_opts(
        args,
        &[
            "flag", "kind", "seed", "reps", "jobs", "team", "trace-out", "workers", "connect",
            "checkpoint", "checkpoint-every", "resume", "max-wall-secs", "policy", "chunk",
            "obs-out", "obs-serve", "log-level", "trace-sample",
        ],
    )?;
    if let Some(level) = opts.value("log-level") {
        let parsed = flagsim_telemetry::Level::parse(level)
            .map_err(|message| CliError { message })?;
        flagsim_telemetry::log::set_level(parsed);
    }
    // Any distribution/durability/observability flag routes through the
    // shard coordinator (which also runs plain in-process sweeps, so
    // `--checkpoint` alone works without any workers).
    if [
        "workers", "connect", "checkpoint", "checkpoint-every", "resume", "max-wall-secs",
        "obs-out", "obs-serve",
    ]
    .iter()
    .any(|k| opts.flag(k))
    {
        return cmd_sweep_shard(&opts);
    }
    let Some(which) = opts.positional.first() else {
        return err(
            "usage: flagsim sweep <SCENARIO> [--reps M] [--jobs N] \
             [--flag NAME] [--kind KIND] [--seed N] [--team N] [--warmup] [--stream] \
             [--progress] [--dashboard] [--trace-out FILE] [--log-level LEVEL]",
        );
    };
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let reps: u64 = opts
        .value("reps")
        .unwrap_or("32")
        .parse()
        .map_err(|_| CliError {
            message: "bad --reps".into(),
        })?;
    if reps == 0 {
        return err("--reps must be at least 1");
    }
    let jobs: usize = match opts.value("jobs") {
        Some(j) => j.parse().map_err(|_| CliError {
            message: "bad --jobs".into(),
        })?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    if jobs == 0 {
        return err("--jobs must be at least 1");
    }
    let cfg = ActivityConfig::default().with_seed(seed);
    let team: usize = match opts.value("team") {
        Some(t) => t.parse().map_err(|_| CliError {
            message: "bad --team".into(),
        })?,
        None => scenario.team_size(&flag, &cfg),
    };
    let stream = opts.flag("stream");
    let dashboard = opts.flag("dashboard");
    let trace_out = opts.value("trace-out");
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    if !opts.flag("no-check") {
        preflight_static(&spec, &flag, &scenario, &kit, team + 1, &cfg, &FaultPlan::none())?;
    }
    let mut runner = SweepRunner::new(&scenario, &flag, &kit, &cfg)
        .team_size(team)
        .warmup(opts.flag("warmup"))
        .reps(reps)
        .jobs(jobs)
        .retain_reports(!stream);
    // Both the trace file and the dashboard's live mean/CI gauges need a
    // telemetry collector; the global slot is generation-guarded, so
    // install exactly one and share it.
    let collector =
        (dashboard || trace_out.is_some()).then(flagsim_telemetry::Collector::install);
    let dash = match (&collector, dashboard) {
        (Some(c), true) => Some(std::sync::Arc::new(crate::dashboard::Dashboard::new(
            jobs,
            reps,
            c.metrics(),
        ))),
        _ => None,
    };
    if let Some(d) = &dash {
        let d = std::sync::Arc::clone(d);
        runner = runner.on_progress(move |p| d.update(p));
    } else if opts.flag("progress") {
        let step = (reps / 10).max(1);
        runner = runner.on_progress(move |p| {
            if p.completed % step == 0 || p.completed == p.total {
                eprintln!("sweep: {}/{} rep(s) done, {} failed", p.completed, p.total, p.failed);
            }
        });
    }
    let result = runner.run().map_err(|e| CliError {
        message: e.to_string(),
    });
    if let Some(d) = &dash {
        d.finish();
    }
    if let Some(c) = collector {
        let set = c.finish();
        if result.is_ok() {
            if let Some(path) = trace_out {
                std::fs::write(path, set.chrome_trace()).map_err(|e| CliError {
                    message: format!("cannot write {path}: {e}"),
                })?;
                eprintln!("trace: {} span(s) written to {path}", set.len());
            }
        }
    }
    let result = result?;
    let mut out = format!(
        "{} — {}, {} rep(s), {} job(s), seed {}{}\n\n",
        scenario.name,
        spec.name,
        reps,
        jobs,
        seed,
        if stream {
            ", streaming statistics (reports dropped)"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "{:<12}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "metric", "n", "mean s", "stddev", "min", "median", "max"
    );
    for (label, s) in [("completion", &result.completion), ("waiting", &result.waiting)] {
        let _ = writeln!(
            out,
            "{:<12}{:>6}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            label, s.n, s.mean, s.stddev, s.min, s.median, s.max
        );
    }
    let _ = writeln!(
        out,
        "\ncompletion {} (mean ± 95% CI)",
        result.completion.display_secs()
    );
    // Failure diagnostics go to stderr (and the `sweep.failures` counter
    // when telemetry is on) so `flagsim sweep ... > results.txt` stays
    // machine-readable.
    if !result.failures.is_empty() {
        let first = &result.failures[0];
        eprintln!(
            "sweep: {} repetition(s) failed; first: rep {}: {}",
            result.failures.len(),
            first.rep,
            first.error
        );
    }
    Ok(out)
}

/// `flagsim sweep` with distribution/durability flags: run the campaign
/// through the shard coordinator. Handles `--workers N` (spawn local
/// worker processes), `--connect ADDR` (use an existing cluster),
/// `--checkpoint`/`--checkpoint-every`/`--resume` (durable progress),
/// and `--max-wall-secs` (soft deadline → checkpoint + exit code 3).
/// Statistics are bit-for-bit identical to the in-process streaming
/// sweep at any worker count.
fn cmd_sweep_shard(opts: &Opts) -> Result<String, CliError> {
    use flagsim_shard::{
        run_sweep, Checkpoint, CoordinatorConfig, JobSpec, LeaseConfig, ShardOutcome,
    };

    // The job: from the checkpoint on --resume (its spec is the source
    // of truth — the fingerprint guards against splicing campaigns), or
    // from the command line.
    let resume = match opts.value("resume") {
        Some(path) => Some(
            Checkpoint::load(std::path::Path::new(path)).map_err(|message| CliError { message })?,
        ),
        None => None,
    };
    let job = match &resume {
        Some(ck) => ck.job.clone(),
        None => {
            let Some(which) = opts.positional.first() else {
                return err(
                    "usage: flagsim sweep <SCENARIO> [--workers N | --connect ADDR,..] \
                     [--checkpoint FILE] [--checkpoint-every K] [--resume FILE] \
                     [--max-wall-secs S] [--reps M] [--jobs N] [--flag NAME] [--kind KIND] \
                     [--seed N] [--team N] [--warmup] [--dashboard] [--trace-out FILE] \
                     [--trace-sample N] [--obs-out FILE] [--log-level LEVEL]",
                );
            };
            let spec = match opts.value("flag") {
                Some(name) => find_flag(name)?,
                None => library::mauritius(),
            };
            let flag = PreparedFlag::new(&spec);
            let scenario = build_scenario(which, &flag)?;
            parse_kind(opts.value("kind").unwrap_or("thick"))?;
            let seed: u64 = opts
                .value("seed")
                .unwrap_or("2025")
                .parse()
                .map_err(|_| CliError { message: "bad --seed".into() })?;
            let reps: u64 = opts
                .value("reps")
                .unwrap_or("32")
                .parse()
                .map_err(|_| CliError { message: "bad --reps".into() })?;
            if reps == 0 {
                return err("--reps must be at least 1");
            }
            let cfg0 = ActivityConfig::default().with_seed(seed);
            let team: usize = match opts.value("team") {
                Some(t) => t.parse().map_err(|_| CliError { message: "bad --team".into() })?,
                None => scenario.team_size(&flag, &cfg0),
            };
            if team == 0 {
                return err("--team must be at least 1");
            }
            JobSpec {
                scenario: which.clone(),
                flag: spec.name.clone(),
                kind: opts.value("kind").unwrap_or("thick").to_owned(),
                seed,
                reps,
                team,
                warmup: opts.flag("warmup"),
            }
        }
    };
    // One validation point for both paths; also names the scenario for
    // the summary header.
    let mat = job.materialize().map_err(|message| CliError { message })?;

    let mut endpoints: Vec<String> = Vec::new();
    for value in opts.values("connect") {
        for part in value.split(',').filter(|p| !p.is_empty()) {
            part.parse::<std::net::SocketAddr>().map_err(|_| CliError {
                message: format!("bad --connect address {part:?} (want host:port)"),
            })?;
            endpoints.push(part.to_owned());
        }
    }
    if opts.flag("connect") && endpoints.is_empty() {
        return err("--connect got no usable address");
    }
    let workers: Option<usize> = opts
        .value("workers")
        .map(|w| w.parse().map_err(|_| CliError { message: "bad --workers".into() }))
        .transpose()?;
    if workers == Some(0) {
        return err("--workers must be at least 1");
    }
    let jobs: usize = match opts.value("jobs") {
        Some(j) => j.parse().map_err(|_| CliError { message: "bad --jobs".into() })?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    if jobs == 0 {
        return err("--jobs must be at least 1");
    }
    let checkpoint_every: u64 = opts
        .value("checkpoint-every")
        .unwrap_or("64")
        .parse()
        .map_err(|_| CliError { message: "bad --checkpoint-every".into() })?;
    if checkpoint_every == 0 {
        return err("--checkpoint-every must be at least 1");
    }
    let chunk: u64 = opts
        .value("chunk")
        .unwrap_or("8")
        .parse()
        .map_err(|_| CliError { message: "bad --chunk".into() })?;
    if chunk == 0 {
        return err("--chunk must be at least 1");
    }
    let max_wall = match opts.value("max-wall-secs") {
        Some(s) => {
            let secs: f64 = s
                .parse()
                .map_err(|_| CliError { message: "bad --max-wall-secs".into() })?;
            if !secs.is_finite() || secs < 0.0 {
                return err("--max-wall-secs must be finite and non-negative");
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
        None => None,
    };
    let policy = parse_policy(opts.value("policy").unwrap_or("rebalance"))?;
    // Resuming keeps checkpointing to the resume file unless overridden,
    // so a twice-killed sweep stays resumable.
    let checkpoint_path = opts
        .value("checkpoint")
        .or_else(|| opts.value("resume"))
        .map(std::path::PathBuf::from);

    let mut children = Vec::new();
    if let Some(n) = workers {
        let (spawned, procs) = spawn_local_workers(n)?;
        endpoints.extend(spawned);
        children = procs;
    }
    let worker_count = endpoints.len();

    let dashboard = opts.flag("dashboard");
    let trace_out = opts.value("trace-out");
    let obs_out = opts.value("obs-out");
    // 0 = auto: the coordinator aims for ~256 instrumented reps per
    // campaign so shipping cost stays bounded on huge sweeps.
    let trace_sample: u64 = opts
        .value("trace-sample")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError { message: "bad --trace-sample".into() })?;
    // Trace file and dashboard both need the telemetry collector; the
    // global slot is generation-guarded, so install exactly one. The
    // fleet hub is independent of the collector (it only powers the
    // dashboard rows and the --obs-out dump) and is cheap, so it is
    // always on for sharded runs.
    let collector =
        (dashboard || trace_out.is_some()).then(flagsim_telemetry::Collector::install);
    let hub = flagsim_shard::ObsHub::new();

    let cfg = CoordinatorConfig {
        endpoints,
        local_jobs: jobs,
        checkpoint_path,
        checkpoint_every,
        resume,
        max_wall,
        lease: LeaseConfig { chunk, policy, ..LeaseConfig::default() },
        halt_after_reps: None,
        quiet: false,
        obs: Some(hub.clone()),
        trace_sample,
    };

    let started = std::time::Instant::now();
    // `--obs-serve ADDR`: push fleet snapshots to attached watchers
    // (`flagsim watch --connect`). Strictly one-way — the server never
    // parses client bytes, so a watcher cannot touch the merge path.
    let obs_server = match opts.value("obs-serve") {
        Some(addr) => {
            let t0 = started;
            let server = flagsim_shard::ObsServer::start(hub.clone(), addr, 250, move || {
                t0.elapsed().as_millis() as u64
            })
            .map_err(|e| CliError {
                message: format!("cannot serve observability on {addr}: {e}"),
            })?;
            eprintln!("obs: serving fleet snapshots on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let dash = match (&collector, dashboard) {
        (Some(c), true) => Some(std::sync::Arc::new(crate::dashboard::Dashboard::new(
            worker_count.max(1),
            job.reps,
            c.metrics(),
        ))),
        _ => None,
    };
    // Structured logs print *above* the live panel so interleaved
    // output never shears the frame.
    if let Some(d) = &dash {
        let d = std::sync::Arc::clone(d);
        flagsim_telemetry::log::set_sink(Some(Box::new(move |rec| {
            d.println_above(&rec.render());
        })));
    }
    let poller = dash.as_ref().map(|d| {
        let d = std::sync::Arc::clone(d);
        let hub = hub.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let now = started.elapsed().as_millis() as u64;
                let (merged, rows) = hub.with(|fv| (fv.merged, fleet_rows(fv, now)));
                d.update_fleet(merged, 0, &rows);
                std::thread::sleep(std::time::Duration::from_millis(150));
            }
        });
        (stop, handle)
    });

    let outcome = run_sweep(&job, &cfg).map_err(|message| CliError { message });

    if let Some(mut server) = obs_server {
        server.stop(); // closes watcher connections: their cue to exit
    }
    if let Some((stop, handle)) = poller {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.join().ok();
    }
    if dash.is_some() {
        flagsim_telemetry::log::set_sink(None);
    }
    if let Some(d) = &dash {
        d.finish();
    }
    // A dashboard-aware stderr writer: while the panel is live, lines
    // scroll out above it instead of shearing the frame.
    let emit = |line: &str| match &dash {
        Some(d) => d.println_above(line),
        None => eprintln!("{line}"),
    };
    if let Some(c) = collector {
        let set = c.finish();
        if outcome.is_ok() {
            if let Some(path) = trace_out {
                let trace = set.chrome_trace();
                // The merged multi-process trace is validated before it
                // lands on disk: a malformed trace here is a bug worth
                // failing loudly on, not something to hand to a viewer.
                flagsim_telemetry::json::validate_chrome_trace(&trace).map_err(|e| CliError {
                    message: format!("merged trace failed validation: {e}"),
                })?;
                std::fs::write(path, trace).map_err(|e| CliError {
                    message: format!("cannot write {path}: {e}"),
                })?;
                emit(&format!("trace: {} span(s) written to {path}", set.len()));
            }
        }
    }
    if outcome.is_ok() {
        if let Some(path) = obs_out {
            let now = started.elapsed().as_millis() as u64;
            std::fs::write(path, hub.snapshot_json(now)).map_err(|e| CliError {
                message: format!("cannot write {path}: {e}"),
            })?;
            emit(&format!("fleet: observability snapshot written to {path}"));
        }
    }
    // Spawned workers are `--once`: a clean shutdown already ended them,
    // and kill() on an exited child is a harmless no-op. Always reap.
    for child in &mut children {
        child.kill().ok();
        child.wait().ok();
    }
    match outcome? {
        ShardOutcome::Completed(r) => {
            if !r.failures.is_empty() {
                let first = &r.failures[0];
                emit(&format!(
                    "sweep: {} repetition(s) failed; first: rep {}: {}",
                    r.failures.len(),
                    first.rep,
                    first.error
                ));
            }
            let mut out = format!(
                "{} — {}, {} rep(s), {} worker(s), {} job(s), seed {}, sharded\n\n",
                mat.scenario.name, mat.spec.name, job.reps, worker_count, jobs, job.seed,
            );
            let _ = writeln!(
                out,
                "{:<12}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}",
                "metric", "n", "mean s", "stddev", "min", "median", "max"
            );
            for (label, s) in [("completion", &r.completion), ("waiting", &r.waiting)] {
                let _ = writeln!(
                    out,
                    "{:<12}{:>6}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
                    label, s.n, s.mean, s.stddev, s.min, s.median, s.max
                );
            }
            let _ = writeln!(
                out,
                "\ncompletion {} (mean ± 95% CI)",
                r.completion.display_secs()
            );
            Ok(out)
        }
        ShardOutcome::DeadlineExpired { merged, total, checkpoint } => {
            let hint = match checkpoint {
                Some(path) => format!(
                    "; resume with: flagsim sweep --resume {}",
                    path.display()
                ),
                None => "; add --checkpoint FILE to make expiry resumable".to_owned(),
            };
            // The "soft deadline" prefix selects exit code 3.
            err(format!(
                "soft deadline expired with {merged}/{total} rep(s) merged{hint}"
            ))
        }
        ShardOutcome::Halted { merged } => {
            err(format!("sweep halted unexpectedly at {merged} rep(s)"))
        }
    }
}

/// Render a [`FleetView`](flagsim_shard::FleetView) snapshot down to
/// the dashboard's per-worker rows.
fn fleet_rows(fv: &flagsim_shard::FleetView, now_ms: u64) -> Vec<crate::dashboard::FleetRow> {
    fv.workers()
        .map(|w| crate::dashboard::FleetRow {
            name: w.name.clone(),
            connected: w.connected,
            reps_done: w.reps_done,
            reps_per_sec: w.reps_per_sec(),
            heartbeat_age_ms: w.silence_ms(now_ms),
            reconnects: w.reconnects,
            shipped: w.shipped_frames,
            dropped: w.dropped_records,
            spark: w.series.points().map(|(_, v)| v).collect(),
        })
        .collect()
}

/// Spawn `n` `flagsim worker --once` child processes on ephemeral
/// loopback ports; each prints its bound address on stdout, which is
/// how the coordinator learns where to connect.
fn spawn_local_workers(
    n: usize,
) -> Result<(Vec<String>, Vec<std::process::Child>), CliError> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe().map_err(|e| CliError {
        message: format!("cannot locate own executable to spawn workers: {e}"),
    })?;
    let mut endpoints = Vec::new();
    let mut children = Vec::new();
    for i in 0..n {
        let mut child = std::process::Command::new(&exe)
            .args([
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--once",
                "--quiet",
                "--name",
            ])
            .arg(format!("local-{i}"))
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| CliError { message: format!("cannot spawn worker {i}: {e}") })?;
        let stdout = child.stdout.take().ok_or_else(|| CliError {
            message: format!("worker {i} has no stdout"),
        })?;
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| CliError { message: format!("worker {i} said nothing: {e}") })?;
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .filter(|a| a.parse::<std::net::SocketAddr>().is_ok())
            .ok_or_else(|| CliError {
                message: format!("worker {i} printed no listen address (got {line:?})"),
            })?;
        endpoints.push(addr.to_owned());
        children.push(child);
    }
    Ok((endpoints, children))
}

/// `flagsim worker` — serve sweep repetitions to a coordinator. Binds
/// `--listen ADDR` (port 0 picks an ephemeral port), prints the bound
/// address on stdout, and answers `hello`/`lease` frames until the
/// coordinator shuts the session down (`--once`) or forever.
fn cmd_worker(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["listen", "name", "log-level"])?;
    let Some(addr) = opts.value("listen") else {
        return err(
            "usage: flagsim worker --listen ADDR [--once] [--quiet] [--name NAME] \
             [--log-level LEVEL]",
        );
    };
    if let Some(level) = opts.value("log-level") {
        let parsed = flagsim_telemetry::Level::parse(level)
            .map_err(|message| CliError { message })?;
        flagsim_telemetry::log::set_level(parsed);
    }
    let listener = std::net::TcpListener::bind(addr).map_err(|e| CliError {
        message: format!("cannot listen on {addr}: {e}"),
    })?;
    let local = listener.local_addr().map_err(|e| CliError {
        message: format!("cannot resolve bound address: {e}"),
    })?;
    // Printed (and flushed) before serving: a spawning coordinator
    // parses this line to learn the ephemeral port.
    println!("worker: listening on {local}");
    std::io::Write::flush(&mut std::io::stdout()).ok();
    let worker_opts = flagsim_shard::WorkerOptions {
        once: opts.flag("once"),
        name: opts
            .value("name")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        quiet: opts.flag("quiet"),
        drop_telemetry_every: 0,
    };
    flagsim_shard::serve(&listener, &worker_opts).map_err(|e| CliError {
        message: format!("worker failed: {e}"),
    })?;
    Ok(String::new())
}

/// `flagsim explain` — run a scenario once, deterministically, and show
/// *why* it took as long as it did: the executed critical path overlaid
/// on the gantt, the per-marker contention blame table, and the what-if
/// bounds (infinite implements, zero warmup, perfect balance),
/// cross-checked against the trace-derived task graph's span.
/// `--format json` emits the same analysis machine-readably.
fn cmd_explain(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["flag", "kind", "seed", "team", "jobs", "format"])?;
    let Some(which) = opts.positional.first() else {
        return err(
            "usage: flagsim explain <SCENARIO> [--format text|json] [--flag NAME] \
             [--kind KIND] [--seed N] [--team N] [--jobs N]",
        );
    };
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let jobs: usize = opts
        .value("jobs")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError {
            message: "bad --jobs".into(),
        })?;
    if jobs == 0 {
        return err("--jobs must be at least 1");
    }
    let cfg = ActivityConfig::default().with_seed(seed);
    let team: usize = match opts.value("team") {
        Some(t) => t.parse().map_err(|_| CliError {
            message: "bad --team".into(),
        })?,
        None => scenario.team_size(&flag, &cfg),
    };
    if team == 0 {
        return err("--team must be at least 1");
    }
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    let explanation =
        flagsim_core::explain::explain_scenario(&scenario, &flag, &kit, &cfg, team, jobs)
            .map_err(|message| CliError { message })?;
    match opts.value("format").unwrap_or("text") {
        "text" => Ok(explanation.render_text(72)),
        "json" => Ok(explanation.to_json()),
        other => err(format!("unknown format {other:?} (use text or json)")),
    }
}

/// `flagsim profile` — run a scenario sweep under an installed telemetry
/// collector and export what the simulator did: Chrome `trace_event`
/// JSON (load it in `chrome://tracing` or Perfetto), collapsed
/// flamegraph stacks, or an aggregated self-time table. `--metrics`
/// appends the metrics registry in text exposition.
fn cmd_profile(args: &[String]) -> Result<String, CliError> {
    use flagsim_core::sweep::SweepRunner;

    let opts = parse_opts(
        args,
        &["out", "format", "reps", "jobs", "flag", "kind", "seed"],
    )?;
    let Some(which) = opts.positional.first() else {
        return err(
            "usage: flagsim profile <SCENARIO> [--out FILE] \
             [--format chrome|folded|table] [--metrics] [--reps M] [--jobs N] \
             [--flag NAME] [--kind KIND] [--seed N]",
        );
    };
    let format = opts.value("format").unwrap_or("chrome");
    if !matches!(format, "chrome" | "folded" | "table") {
        return err(format!(
            "unknown format {format:?} (use chrome, folded, or table)"
        ));
    }
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let reps: u64 = opts
        .value("reps")
        .unwrap_or("4")
        .parse()
        .map_err(|_| CliError {
            message: "bad --reps".into(),
        })?;
    if reps == 0 {
        return err("--reps must be at least 1");
    }
    let jobs: usize = opts
        .value("jobs")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError {
            message: "bad --jobs".into(),
        })?;
    if jobs == 0 {
        return err("--jobs must be at least 1");
    }
    let cfg = ActivityConfig::default().with_seed(seed);
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    let runner = SweepRunner::new(&scenario, &flag, &kit, &cfg)
        .team_size(scenario.team_size(&flag, &cfg))
        .reps(reps)
        .jobs(jobs)
        .retain_reports(false);
    let collector = flagsim_telemetry::Collector::install();
    let metrics = collector.metrics();
    let run_result = runner.run();
    // Always finish the collector (disabling telemetry) before surfacing
    // any sweep error.
    let set = collector.finish();
    run_result.map_err(|e| CliError {
        message: e.to_string(),
    })?;
    let rendered = match format {
        "folded" => set.folded_stacks(),
        "table" => set.self_time_table(),
        _ => set.chrome_trace(),
    };
    let mut out = String::new();
    match opts.value("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| CliError {
                message: format!("cannot write {path}: {e}"),
            })?;
            let _ = writeln!(
                out,
                "profile: {} — {} rep(s), {} job(s); {} span(s) written to {path} ({format})",
                scenario.name,
                reps,
                jobs,
                set.len()
            );
        }
        None => out.push_str(&rendered),
    }
    if opts.flag("metrics") {
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("\n--- metrics ---\n");
        out.push_str(&metrics.render_text());
    }
    Ok(out)
}

fn cmd_session(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["seed"])?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let mut session = ClassroomSession::new(
        &library::mauritius(),
        ActivityConfig::default().with_seed(seed),
    );
    session.add_team("Daubers", 5, ImplementKind::BingoDauber);
    session.add_team("ThickMk", 5, ImplementKind::ThickMarker);
    session.add_team("ThinMk", 5, ImplementKind::ThinMarker);
    let all = session
        .run_core_activity(opts.flag("repeat"))
        .map_err(|message| CliError { message })?;
    let mut out = session.board_table();
    // The debrief: lessons for team 2 (thick markers) plus the hardware
    // lesson across teams.
    let team_runs: Vec<_> = all.iter().map(|runs| runs[1].clone()).collect();
    let lessons = discussion::detect_lessons(&team_runs);
    let _ = write!(out, "\n{}", discussion::discussion_handout(&lessons));
    let scenario1: Vec<(String, _)> = session
        .teams()
        .iter()
        .zip(&all[0])
        .map(|(t, r)| (t.name.clone(), r.clone()))
        .collect();
    if let Some(hw) = discussion::detect_hardware_lesson(&scenario1) {
        let _ = writeln!(out, "{}. {} — {}", lessons.len() + 1, hw.concept.name(), hw.evidence);
    }
    Ok(out)
}

/// Parse `--deny LEVEL` / `--allow IDS` / `--format F` shared by `check`
/// and `lint`.
fn parse_diag_opts(opts: &Opts) -> Result<(simcheck::Severity, Vec<String>, String), CliError> {
    let deny_name = opts.value("deny").unwrap_or("error");
    let Some(deny) = simcheck::Severity::parse(deny_name) else {
        return err(format!(
            "unknown --deny level {deny_name:?} (use note, warning, or error)"
        ));
    };
    let allow: Vec<String> = opts
        .value("allow")
        .map(|s| s.split(',').map(|a| a.trim().to_owned()).collect())
        .unwrap_or_default();
    let format = opts.value("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return err(format!("unknown format {format:?} (use text or json)"));
    }
    Ok((deny, allow, format.to_owned()))
}

/// Render a finished report and enforce `--deny`: the report is always
/// the command's stdout output; when it trips the deny level it is
/// printed here and the command fails (nonzero exit) with a short
/// summary on stderr.
fn finish_report(
    mut report: simcheck::Report,
    deny: simcheck::Severity,
    allow: &[String],
    format: &str,
) -> Result<String, CliError> {
    report.allow(allow);
    report.sort();
    let rendered = match format {
        "json" => {
            let mut j = report.to_json();
            j.push('\n');
            j
        }
        _ => report.render_text(),
    };
    if report.denies(deny) {
        print!("{rendered}");
        return err(format!(
            "check failed for {}: {}",
            report.target,
            report.summary()
        ));
    }
    Ok(rendered)
}

/// `flagsim check` — the static analyzer front door. The positional
/// argument picks the target: a scenario (full static checks, the §IV
/// advice, and — unless `--static-only` — one deterministic run for the
/// happens-before race analysis), a library flag (spec lints), a fault
/// plan string (plan validation), or `demo-deadlock` (the lock-order
/// cycle the drill is built to have).
fn cmd_check(args: &[String]) -> Result<String, CliError> {
    use flagsim_core::sweep::SweepRunner;

    let opts = parse_opts(
        args,
        &[
            "flag", "kind", "team", "seed", "jobs", "plan", "policy", "format", "deny", "allow",
        ],
    )?;
    let Some(what) = opts.positional.first() else {
        return err(
            "usage: flagsim check <SCENARIO|FLAG|PLAN|demo-deadlock> \
             [--format text|json] [--deny note|warning|error] [--allow IDS] \
             [--static-only] [--flag NAME] [--kind KIND] [--team N] [--seed N] \
             [--jobs N] [--plan SPEC] [--policy P] [--no-check is for run/sweep/faults]",
        );
    };
    let (deny, allow, format) = parse_diag_opts(&opts)?;

    // Target: the demo-deadlock drill — purely static.
    if what == "demo-deadlock" {
        let graph = simcheck::LockOrderGraph::build(&simcheck::demo_deadlock_seqs());
        let mut report = simcheck::Report::new("demo-deadlock drill");
        report.extend(graph.diags());
        return finish_report(report, deny, &allow, &format);
    }

    // Target: a library flag — spec lints only. (No flag is named like a
    // scenario token, so this cannot shadow the scenario branch.)
    if let Some(spec) = library::by_name(what) {
        let mut report = simcheck::Report::new(format!("flag {}", spec.name));
        report.extend(simcheck::check_flag_spec(
            &spec,
            spec.default_width,
            spec.default_height,
        ));
        return finish_report(report, deny, &allow, &format);
    }

    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let cfg = ActivityConfig::default().with_seed(seed);
    let mut plan = match opts.value("plan") {
        Some(s) => FaultPlan::parse(s, "cli plan").map_err(|message| CliError { message })?,
        None => FaultPlan::none(),
    };
    if let Some(p) = opts.value("policy") {
        plan = plan.with_policy(parse_policy(p)?);
    }

    // Target: a bare fault-plan string — validate it against the team
    // and colors the options describe (defaults: scenario 4's four
    // coloring students on Mauritius). Scenario tokens contain neither
    // ':' nor '@', so this cannot shadow the scenario branch either.
    if what.contains(':') || what.contains('@') {
        let mut plan =
            FaultPlan::parse(what, "cli plan").map_err(|message| CliError { message })?;
        if let Some(p) = opts.value("policy") {
            plan = plan.with_policy(parse_policy(p)?);
        }
        let coloring: usize = match opts.value("team") {
            Some(t) => t.parse().map_err(|_| CliError {
                message: "bad --team".into(),
            })?,
            None => 4,
        };
        let mut report = simcheck::Report::new(format!("fault plan {what:?}"));
        report.extend(simcheck::check_fault_plan(
            &plan,
            coloring,
            &flag.colors_needed(&cfg.skip_colors),
            &kit,
        ));
        return finish_report(report, deny, &allow, &format);
    }

    // Target: a scenario — the full battery.
    let scenario = build_scenario(what, &flag)?;
    let team: usize = match opts.value("team") {
        Some(t) => t.parse().map_err(|_| CliError {
            message: "bad --team".into(),
        })?,
        None => scenario.team_size(&flag, &cfg).max(1) + 1, // + the timer
    };
    let target = simcheck::CheckTarget {
        spec: &spec,
        flag: &flag,
        scenario: &scenario,
        kit: &kit,
        team_size: team,
        config: &cfg,
        plan: &plan,
    };
    let mut report = simcheck::full_report(&target);
    if !opts.flag("static-only") {
        // One deterministic repetition through the sweep runner: rep 0
        // derives the same seed on any job count, so `--jobs` can never
        // change the findings (asserted byte-for-byte in the tests).
        let jobs: usize = opts
            .value("jobs")
            .unwrap_or("1")
            .parse()
            .map_err(|_| CliError {
                message: "bad --jobs".into(),
            })?;
        if jobs == 0 {
            return err("--jobs must be at least 1");
        }
        // Chatter to stderr: stdout is the report.
        eprintln!(
            "check: running {} once (seed {seed}) for happens-before analysis",
            scenario.name
        );
        let run = SweepRunner::new(&scenario, &flag, &kit, &cfg)
            .team_size(scenario.team_size(&flag, &cfg).min(team))
            .reps(1)
            .jobs(jobs)
            .plan(&plan)
            .retain_reports(true)
            .run();
        match run {
            Ok(result) if !result.reports.is_empty() => {
                report.extend(simcheck::check_run(&result.reports[0]).diags());
                report.sort();
            }
            Ok(_) | Err(_) => {
                eprintln!(
                    "check: the observation run failed — static findings only \
                     (they usually explain why)"
                );
            }
        }
    }
    finish_report(report, deny, &allow, &format)
}

/// `flagsim lint` — flag-spec lints for a library flag or a custom flag
/// file, through the same diagnostics framework as `check`.
fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["size", "format", "deny", "allow"])?;
    let Some(name) = opts.positional.first() else {
        return err(
            "usage: flagsim lint <flag|file> [--size WxH] [--format text|json] \
             [--deny note|warning|error] [--allow IDS]",
        );
    };
    let (deny, allow, format) = parse_diag_opts(&opts)?;
    let spec = match library::by_name(name) {
        Some(spec) => spec,
        None => {
            let text = std::fs::read_to_string(name).map_err(|e| CliError {
                message: format!("{name:?} is not a library flag and cannot be read: {e}"),
            })?;
            flagsim_flags::parse(&text).map_err(|e| CliError {
                message: e.to_string(),
            })?
        }
    };
    let (w, h) = match opts.value("size") {
        Some(s) => parse_size(s)?,
        None => (spec.default_width, spec.default_height),
    };
    let mut report = simcheck::Report::new(format!("flag {} at {w}x{h}", spec.name));
    report.extend(simcheck::from_flag_lints(&flagsim_flags::lint_at(&spec, w, h)));
    finish_report(report, deny, &allow, &format)
}

/// `flagsim verify` — the bounded model checker. Where `check` analyzes
/// one observed run, `verify` explores *every* resolution of the
/// engine's scheduler ties (equal-time wakeups, acquire-order ties) with
/// sleep-set partial-order reduction, then reports either outcome
/// invariance (SC412) or a minimal divergent witness pair (SC410). The
/// `demo-deadlock` target re-proves the SC204 lock-order cycle
/// dynamically: a concrete schedule that reaches the stall (SC411),
/// cross-checked against the live wait-for graph.
fn cmd_verify(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(
        args,
        &[
            "flag", "kind", "seed", "max-schedules", "format", "deny", "allow", "witness-out",
        ],
    )?;
    let Some(what) = opts.positional.first() else {
        return err(
            "usage: flagsim verify <SCENARIO|demo-deadlock> [--flag NAME] [--kind KIND] \
             [--seed N] [--max-schedules N] [--naive] [--format text|json] \
             [--deny note|warning|error] [--allow IDS] [--witness-out PREFIX]",
        );
    };
    let (deny, allow, format) = parse_diag_opts(&opts)?;
    let max_schedules: usize = opts
        .value("max-schedules")
        .unwrap_or("4096")
        .parse()
        .map_err(|_| CliError {
            message: "bad --max-schedules".into(),
        })?;
    if max_schedules == 0 {
        return err("--max-schedules must be at least 1");
    }
    let explore_cfg = simcheck::ExploreConfig {
        max_schedules,
        naive: opts.flag("naive"),
    };

    // Target: the demo-deadlock drill — the static SC204 cycle plus a
    // live exploration proving a schedule actually reaches the stall.
    if what == "demo-deadlock" {
        let graph = simcheck::LockOrderGraph::build(&simcheck::demo_deadlock_seqs());
        let cycles = graph.cycles();
        let ex = simcheck::explore_engine(simcheck::demo_deadlock_engine, &explore_cfg)
            .map_err(|message| CliError { message })?;
        eprintln!(
            "verify: demo-deadlock drill — {} schedule(s) explored, {} outcome class(es)",
            ex.schedules_run,
            ex.outcomes.len()
        );
        let mut report = simcheck::Report::new("demo-deadlock drill (schedule space)");
        for mut d in graph.diags() {
            if let Some(class) = ex.deadlock() {
                if let simcheck::Outcome::Stalled { graph: wfg, .. } = &class.outcome {
                    if simcheck::deadlock_matches_cycle(wfg, &cycles) {
                        d = d.with_detail(format!(
                            "dynamically confirmed: schedule {} reaches exactly this \
                             deadlock (see SC411)",
                            simcheck::format_script(&class.schedule)
                        ));
                    }
                }
            }
            report.push(d);
        }
        report.extend(simcheck::verify_diags(&ex));
        return finish_report(report, deny, &allow, &format);
    }

    // Target: a scenario — explore its full schedule space.
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(what, &flag)?;
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let cfg = ActivityConfig::default().with_seed(seed);
    let compiled = scenario
        .compile(&flag, &cfg)
        .map_err(|message| CliError { message })?;
    eprintln!(
        "verify: exploring {} on {} (seed {seed}, bound {max_schedules}{})",
        scenario.name,
        spec.name,
        if explore_cfg.naive { ", naive" } else { "" }
    );
    let ax = simcheck::explore_activity(&compiled, &kit, &cfg, &explore_cfg)
        .map_err(|message| CliError { message })?;
    let ex = &ax.exploration;
    eprintln!(
        "verify: {} schedule(s) run, {} outcome class(es), {} choice state(s), \
         {} sleep-pruned, {} state-hash-pruned",
        ex.schedules_run,
        ex.outcomes.len(),
        ex.visited_states,
        ex.pruned_sleep,
        ex.pruned_visited
    );
    let mut report = simcheck::Report::new(format!(
        "verify {} on {} (seed {seed})",
        scenario.name, spec.name
    ));
    report.extend(simcheck::verify_diags(ex));
    report.extend(simcheck::annotate_ties(&ax.ties, ex));
    if let Some(prefix) = opts.value("witness-out") {
        match &ex.witness {
            Some(w) => write_witness_traces(&compiled, &kit, &cfg, w, prefix)?,
            None => eprintln!(
                "verify: no witness to write — every explored schedule converges"
            ),
        }
    }
    finish_report(report, deny, &allow, &format)
}

/// Replay both sides of a witness pair with trace events on and write
/// each as a Chrome trace (`PREFIX-a.json`, `PREFIX-b.json`) that
/// `flagsim watch --trace` can scrub through.
fn write_witness_traces(
    compiled: &flagsim_core::scenario::CompiledScenario,
    kit: &TeamKit,
    cfg: &ActivityConfig,
    w: &simcheck::WitnessPair,
    prefix: &str,
) -> Result<(), CliError> {
    use flagsim_core::ActivityOutcome;
    for (suffix, script) in [("a", &w.baseline), ("b", &w.divergent)] {
        let mut team = simcheck::explore::scenario_team(compiled);
        let (policy, _log) = flagsim_desim::ForcedSchedule::new(script.clone());
        let outcome = compiled
            .run_scheduled(&mut team, kit, cfg, &FaultPlan::none(), Some(policy))
            .map_err(|message| CliError { message })?;
        let path = format!("{prefix}-{suffix}.json");
        match outcome {
            ActivityOutcome::Completed(report) => {
                std::fs::write(&path, report.trace.chrome_trace()).map_err(|e| CliError {
                    message: format!("cannot write {path}: {e}"),
                })?;
                eprintln!(
                    "verify: witness {} (schedule {}) written to {path} — open with \
                     `flagsim watch --trace {path}`",
                    suffix.to_uppercase(),
                    simcheck::format_script(script)
                );
            }
            ActivityOutcome::Stalled(g) => {
                eprintln!(
                    "verify: witness {} (schedule {}) stalls at t={}ms — no trace to write",
                    suffix.to_uppercase(),
                    simcheck::format_script(script),
                    g.at.millis()
                );
            }
        }
    }
    Ok(())
}

/// Static preflight for `run`/`sweep`/`faults`: the same checks as
/// `flagsim check --static-only` minus the advisory `SC4xx` checklist,
/// failing only on Error-level findings. `--no-check` skips it.
fn preflight_static(
    spec: &FlagSpec,
    flag: &PreparedFlag,
    scenario: &Scenario,
    kit: &TeamKit,
    team_size: usize,
    cfg: &ActivityConfig,
    plan: &FaultPlan,
) -> Result<(), CliError> {
    let report = simcheck::static_report(&simcheck::CheckTarget {
        spec,
        flag,
        scenario,
        kit,
        team_size,
        config: cfg,
        plan,
    });
    let (errors, _, _) = report.counts();
    if errors > 0 {
        return err(format!(
            "preflight: {errors} error-level finding(s) — the run cannot work as \
             configured (re-run with --no-check to try anyway)\n{}",
            report.render_text()
        ));
    }
    Ok(())
}

fn cmd_graph(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["procs"])?;
    let Some(name) = opts.positional.first() else {
        return err("usage: flagsim graph <flag> [--procs N]");
    };
    let spec = find_flag(name)?;
    let procs: usize = opts
        .value("procs")
        .unwrap_or("4")
        .parse()
        .map_err(|_| CliError {
            message: "bad --procs".into(),
        })?;
    if procs == 0 {
        return err("--procs must be at least 1");
    }
    let g = layered::flag_taskgraph(&spec, 2000);
    let mut out = g.to_dot(&spec.name);
    let (path, span) = analysis::critical_path(&g);
    let _ = writeln!(
        out,
        "work {:.0}s  span {:.0}s  parallelism {:.2}",
        analysis::work(&g) as f64 / 1000.0,
        span as f64 / 1000.0,
        analysis::parallelism(&g)
    );
    let labels: Vec<&str> = path.iter().map(|&t| g.label(t)).collect();
    let _ = writeln!(out, "critical path: {}", labels.join(" -> "));
    let s = list_schedule(&g, procs, Priority::CriticalPath);
    let _ = writeln!(out, "\nschedule on {procs} student(s):");
    out.push_str(&s.gantt(&g, 60));
    Ok(out)
}

fn cmd_grade(args: &[String]) -> Result<String, CliError> {
    let Some(path) = args.first() else {
        return err("usage: flagsim grade <file>");
    };
    let text = std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("cannot read {path}: {e}"),
    })?;
    grade_text(&text)
}

/// Grade a submission text against the Jordan reference (separated from
/// the file I/O so tests can call it directly).
pub fn grade_text(text: &str) -> Result<String, CliError> {
    let sub = parse_submission(text).map_err(|message| CliError { message })?;
    let grade = classify(&sub, &jordan::reference_graph(), &jordan::grade_options());
    let mut out = format!("grade: {grade:?}\n");
    let _ = writeln!(
        out,
        "counts toward the paper's \"at least mostly correct\": {}",
        if grade.is_at_least_mostly_correct() {
            "yes"
        } else {
            "no"
        }
    );
    Ok(out)
}

/// Re-run a recorded scenario (the scenario, flag, kind, and seed fully
/// determine the run) and return its display title, report, and
/// assignments — the shared recorded-run source behind `replay` and
/// `watch`.
fn recorded_run(
    which: &str,
    opts: &Opts,
    check: bool,
) -> Result<(String, flagsim_core::RunReport, Vec<Vec<flagsim_core::WorkItem>>), CliError> {
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let flag = PreparedFlag::new(&spec);
    let scenario = build_scenario(which, &flag)?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let cfg = ActivityConfig::default().with_seed(seed);
    let assignments = scenario
        .strategy
        .assignments(&flag, scenario.order, &cfg.skip_colors);
    let size = assignments.len();
    let mut team: Vec<StudentProfile> =
        (1..=size).map(|i| StudentProfile::new(format!("P{i}"))).collect();
    let kit = TeamKit::uniform(
        parse_kind(opts.value("kind").unwrap_or("thick"))?,
        &flag.colors_needed(&[]),
    );
    if check {
        preflight_static(
            &spec,
            &flag,
            &scenario,
            &kit,
            size + 1,
            &cfg,
            &FaultPlan::none(),
        )?;
    }
    let report = flagsim_core::run_activity(
        scenario.name.clone(),
        &flag,
        &assignments,
        &mut team,
        &kit,
        &cfg,
    )
    .map_err(|message| CliError { message })?;
    let title = format!("{} — {} (seed {seed})", report.label, spec.name);
    Ok((title, report, assignments))
}

fn cmd_replay(args: &[String]) -> Result<String, CliError> {
    use flagsim_core::replay::Replay;
    let opts = parse_opts(args, &["flag", "kind", "frames", "seed"])?;
    let Some(which) = opts.positional.first() else {
        return err("usage: flagsim replay <1|2|3|4|pipelined|alternating> [--frames N]");
    };
    let frames: usize = opts
        .value("frames")
        .unwrap_or("6")
        .parse()
        .map_err(|_| CliError {
            message: "bad --frames".into(),
        })?;
    if frames == 0 {
        return err("--frames must be at least 1");
    }
    let (_, report, assignments) = recorded_run(which, &opts, false)?;
    let replay = Replay::new(&report, &assignments);
    let mut out = format!("{} — the flag filling in:\n\n", report.label);
    for frame in replay.ascii_frames(frames) {
        out.push_str(&frame);
        out.push('\n');
    }
    Ok(out)
}

const WATCH_USAGE: &str = "usage: flagsim watch <SCENARIO> [--flag NAME] [--kind KIND] [--seed N]\n\
       \x20      [--script KEYS] [--frames-out FILE] [--width N] [--no-check]\n\
       flagsim watch --trace FILE [--script KEYS] [--frames-out FILE]\n\
       flagsim watch (--connect ADDR | --follow FILE) [--once] [--width N]";

fn cmd_watch(args: &[String]) -> Result<String, CliError> {
    use flagsim_watch::{app, chrome, frame, input};
    use std::io::IsTerminal;
    let opts = parse_opts(
        args,
        &[
            "flag", "kind", "seed", "script", "frames-out", "width", "trace", "connect",
            "follow",
        ],
    )?;
    let width = match opts.value("width") {
        Some(w) => w
            .parse::<usize>()
            .ok()
            .filter(|w| (20..=1000).contains(w))
            .ok_or(CliError {
                message: "bad --width (20..=1000)".into(),
            })?,
        None => flagsim_watch::term::detect_width(),
    };
    if opts.value("connect").is_some() || opts.value("follow").is_some() {
        return watch_live(&opts, width);
    }
    let data = if let Some(path) = opts.value("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("cannot read {path}: {e}"),
        })?;
        let trace =
            chrome::parse_chrome_trace(&text).map_err(|message| CliError { message })?;
        app::ReplayData::from_trace(format!("trace file {path}"), trace)
    } else {
        let Some(which) = opts.positional.first() else {
            return err(WATCH_USAGE);
        };
        let (title, report, assignments) = recorded_run(which, &opts, !opts.flag("no-check"))?;
        app::ReplayData::from_report(title, &report, &assignments)
    };
    // Scripted mode: a fixed key sequence, one frame per key, no clock —
    // byte-deterministic, for tests and CI.
    if let Some(script) = opts.value("script") {
        let keys = input::script_keys(script).map_err(|message| CliError { message })?;
        let frames = app::run_script(&data, &keys, width);
        let dump = frame::dump_frames(&frames);
        if let Some(path) = opts.value("frames-out") {
            std::fs::write(path, &dump).map_err(|e| CliError {
                message: format!("cannot write {path}: {e}"),
            })?;
            return Ok(format!("watch: {} frame(s) written to {path}\n", frames.len()));
        }
        return Ok(dump);
    }
    if std::io::stdout().is_terminal() {
        if let Err(e) = app::run_interactive(&data) {
            // No raw-mode terminal after all (no /dev/tty, no stty):
            // fall through to the plain final frame.
            eprintln!("watch: cannot go interactive ({e}); printing the final frame");
        } else {
            return Ok(String::new());
        }
    }
    // Non-TTY (or interactive-failed) fallback: the run's final state as
    // one plain frame, so piped output stays useful.
    let mut state = app::App::new(data.end_ms());
    state.handle_key(input::Key::End);
    Ok(app::render(&data, &state, width).render())
}

/// Live mode: tail fleet snapshots from a socket (`--connect`) or a
/// rewritten snapshot file (`--follow`) and render the fleet panel.
/// Interactive stdout repaints in place; piped stdout prints one
/// summary line per new snapshot. `--once` exits after the first
/// snapshot (smoke tests). Never writes to the source.
fn watch_live(opts: &Opts, width: usize) -> Result<String, CliError> {
    use flagsim_watch::live::{render_fleet, SnapshotSource};
    use std::io::{IsTerminal, Write as _};
    let mut src = match (opts.value("connect"), opts.value("follow")) {
        (Some(addr), _) => SnapshotSource::connect(addr).map_err(|message| CliError { message })?,
        (_, Some(path)) => SnapshotSource::follow(path),
        _ => return err(WATCH_USAGE),
    };
    let once = opts.flag("once");
    let mut out = std::io::stdout();
    let mut panel =
        flagsim_watch::term::Panel::new(std::io::stdout().is_terminal() && !once, width);
    let mut last_line = String::new();
    let mut last_frame = String::new();
    loop {
        match src.next_snapshot() {
            Ok(Some(snap)) => {
                let frame = render_fleet(&snap, width).render();
                if panel.is_interactive() {
                    panel.draw(&frame, &mut out);
                } else if once {
                    return Ok(frame);
                } else {
                    // Plain fallback: one log-friendly line per change.
                    let line = frame.lines().nth(1).unwrap_or("").to_owned();
                    if line != last_line {
                        let _ = writeln!(out, "{line}");
                        let _ = out.flush();
                        last_line = line;
                    }
                }
                last_frame = frame;
            }
            Ok(None) => continue,
            Err(e) => {
                // The source ending (sweep finished, file removed) is
                // the normal way out; leave the last state on screen.
                panel.finish(&mut out);
                if last_frame.is_empty() {
                    return err(e);
                }
                eprintln!("watch: {e}");
                return Ok(if panel.is_interactive() {
                    String::new()
                } else {
                    last_frame
                });
            }
        }
    }
}

fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["seed"])?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    Ok(flagsim_assessment::report::full_report(seed))
}

fn cmd_vocab(args: &[String]) -> Result<String, CliError> {
    use flagsim_core::glossary;
    match args.first() {
        None => Ok(glossary::render_glossary()),
        Some(word) => match glossary::lookup(word) {
            Some(t) => Ok(format!(
                "{}\n  what:  {}\n  where: {}\n  measured in: {}\n",
                t.term, t.definition, t.seen_in_activity, t.experiment
            )),
            None => err(format!("no glossary entry matches {word:?}")),
        },
    }
}

fn cmd_pack(args: &[String]) -> Result<String, CliError> {
    let opts = parse_opts(args, &["out", "flag", "kind", "seed"])?;
    let Some(dir) = opts.value("out") else {
        return err("usage: flagsim pack --out DIR [--flag NAME] [--kind KIND] [--seed N]");
    };
    let spec = match opts.value("flag") {
        Some(name) => find_flag(name)?,
        None => library::mauritius(),
    };
    let kind = parse_kind(opts.value("kind").unwrap_or("thick"))?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("2025")
        .parse()
        .map_err(|_| CliError {
            message: "bad --seed".into(),
        })?;
    let files = build_pack(&spec, kind, seed).map_err(|message| CliError { message })?;
    std::fs::create_dir_all(dir).map_err(|e| CliError {
        message: format!("cannot create {dir}: {e}"),
    })?;
    let mut out = format!("instructor pack for {} in {dir}/:\n", spec.name);
    for (name, content) in &files {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, content).map_err(|e| CliError {
            message: format!("cannot write {path}: {e}"),
        })?;
        let _ = writeln!(out, "  {name} ({} bytes)", content.len());
    }
    Ok(out)
}

/// Build every file of the instructor pack in memory (separated from the
/// filesystem so tests can inspect the contents).
pub fn build_pack(
    spec: &FlagSpec,
    kind: ImplementKind,
    seed: u64,
) -> Result<Vec<(String, String)>, String> {
    use flagsim_assessment::quiz::render_quiz_form;
    use flagsim_core::advice;

    let flag = PreparedFlag::new(spec);
    let cfg = ActivityConfig::default().with_seed(seed);
    let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
    let mut files: Vec<(String, String)> = Vec::new();

    // 1. The flag itself, printable and projectable.
    files.push(("flag.txt".into(), render::to_ascii(&flag.reference)));
    files.push(("flag.svg".into(), render::to_svg(&flag.reference, 24)));

    // 2. The scenario slide deck (§IV: project the decomposition).
    files.push(("slides.txt".into(), slides::fig1_deck(&flag)));

    // 3. The dry-run checklist for every scenario.
    let mut checklist = String::new();
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let results = advice::preflight(&flag, &sc, &kit, 5, &cfg);
        let _ = writeln!(checklist, "--- {} ---", sc.name);
        checklist.push_str(&advice::render_checklist(&results));
        checklist.push('\n');
    }
    files.push(("checklist.txt".into(), checklist));

    // 4. The pre/post quiz, student and grader copies, plus the
    //    vocabulary handout the survey comments asked for.
    files.push(("quiz.txt".into(), render_quiz_form(false)));
    files.push(("quiz_key.txt".into(), render_quiz_form(true)));
    files.push((
        "vocabulary.txt".into(),
        flagsim_core::glossary::render_glossary(),
    ));

    // 4b. The CSV bundle of a sample scenario-4 run, for a data-analysis
    //     follow-up exercise.
    // (appended below once the sample session has run)

    // 5. A simulated sample session with the debrief, so the instructor
    //    knows what numbers to expect on the board.
    let mut team: Vec<StudentProfile> =
        (1..=4).map(|i| StudentProfile::new(format!("P{i}"))).collect();
    let mut runs = Vec::new();
    for n in 1..=4u8 {
        let r = Scenario::fig1(n).run(&flag, &mut team, &kit, &cfg)?;
        runs.push(r);
    }
    let mut sample = String::from("Sample session (simulated — your times will differ):\n");
    for r in &runs {
        let _ = writeln!(sample, "  {}", r.board_line());
    }
    sample.push('\n');
    sample.push_str(&discussion::discussion_handout(&discussion::detect_lessons(
        &runs,
    )));
    let last = runs.last().expect("four runs");
    sample.push('\n');
    sample.push_str(&last.trace.gantt(72));
    files.push(("sample_session.txt".into(), sample));
    files.push((
        "scenario4_gantt.svg".into(),
        last.trace.svg_gantt(720),
    ));
    for (name, content) in last.to_csv_bundle() {
        files.push((format!("scenario4_{name}"), content));
    }

    // 6. The dependency follow-up: the Jordan reference graph and a
    //    4-student schedule (Knox's extension).
    let jordan_spec = library::jordan();
    let g = layered::flag_taskgraph(&jordan_spec, 2000);
    files.push(("jordan_dependencies.dot".into(), g.to_dot("Jordan")));
    let schedule = list_schedule(&g, 4, Priority::CriticalPath);
    files.push((
        "jordan_schedule.svg".into(),
        schedule.svg_gantt(&g, 720),
    ));
    // The animated version — our substitute for the Webster instructor's
    // schedule animations (reference [34] of the paper).
    files.push((
        "jordan_schedule_animated.svg".into(),
        schedule.animated_svg(&g, 720, 0.00002),
    ));

    Ok(files)
}

fn cmd_parse(args: &[String]) -> Result<String, CliError> {
    let Some(path) = args.first() else {
        return err("usage: flagsim parse <file>");
    };
    let text = std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("cannot read {path}: {e}"),
    })?;
    parse_text(&text)
}

/// Validate + render a custom flag text (separated from file I/O for
/// tests). Includes the linter's findings.
pub fn parse_text(text: &str) -> Result<String, CliError> {
    let flag = flagsim_flags::parse(text).map_err(|e| CliError {
        message: e.to_string(),
    })?;
    let grid = flag.rasterize();
    let lints = flagsim_flags::lint(&flag);
    Ok(format!(
        "parsed {:?}: {} layers, {}x{}, {}\n\n{}legend: {}\n\n{}",
        flag.name,
        flag.layer_count(),
        flag.default_width,
        flag.default_height,
        if flag.is_layered() {
            "layered (has dependencies)"
        } else {
            "flat (fully parallel)"
        },
        render::to_ascii(&grid),
        render::legend(&grid),
        flagsim_flags::render_lints(&lints),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_prints_usage() {
        let out = runv(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(runv(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = runv(&["frobnicate"]).unwrap_err();
        assert!(e.message.contains("unknown command"));
        assert!(e.message.contains("USAGE"));
    }

    #[test]
    fn flags_lists_the_library() {
        let out = runv(&["flags"]).unwrap();
        assert!(out.contains("Mauritius"));
        assert!(out.contains("Great Britain"));
        assert!(out.contains("flat"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn render_ascii_and_sizes() {
        let out = runv(&["render", "mauritius"]).unwrap();
        assert!(out.contains("RRRRRRRRRRRR"));
        let big = runv(&["render", "mauritius", "24x16"]).unwrap();
        assert!(big.contains(&"R".repeat(24)));
        let ppm = runv(&["render", "france", "ppm"]).unwrap();
        assert!(ppm.starts_with("P3"));
        assert!(runv(&["render", "narnia"]).is_err());
        assert!(runv(&["render", "mauritius", "0x4"]).is_err());
    }

    #[test]
    fn slides_show_the_deck() {
        let out = runv(&["slides"]).unwrap();
        assert!(out.contains("scenario 4"));
        assert!(out.contains("P1 colors"));
    }

    #[test]
    fn run_scenario_4_with_gantt() {
        let out = runv(&["run", "4", "--seed", "7", "--gantt"]).unwrap();
        assert!(out.contains("scenario 4"));
        assert!(out.contains("correct"));
        assert!(out.contains("marker:"), "contention detail expected:\n{out}");
        assert!(out.contains('~'), "gantt should show waiting");
    }

    #[test]
    fn run_with_extra_markers_removes_waiting() {
        let out = runv(&["run", "4", "--markers", "4"]).unwrap();
        // No contended marker line when fully stocked.
        assert!(!out.contains("contended"), "{out}");
    }

    #[test]
    fn faults_runs_a_plan_and_prints_the_resilience_report() {
        let out = runv(&[
            "faults", "3", "--plan", "break:blue@10,dropout:2@20", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("fault(s) planned"), "{out}");
        assert!(out.contains("recovery overhead"), "{out}");
        assert!(out.contains("correct"), "survivors still finish: {out}");
        // The incident narrative now goes to stderr (see
        // bin_integration::faults_narrative_lands_on_stderr), not stdout.
        assert!(!out.contains("blue implement broke"), "{out}");
    }

    #[test]
    fn faults_abort_policy_reports_the_abort() {
        let out = runv(&[
            "faults", "1", "--plan", "break:red@5", "--policy", "abort",
        ])
        .unwrap();
        assert!(out.contains("aborted"), "{out}");
        assert!(out.contains("WRONG FLAG"), "{out}");
    }

    #[test]
    fn faults_random_plan_is_seeded() {
        let a = runv(&["faults", "4", "--random", "--seed", "11"]).unwrap();
        let b = runv(&["faults", "4", "--random", "--seed", "11"]).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("fault(s) planned"), "{a}");
    }

    #[test]
    fn faults_rejects_bad_input() {
        assert!(runv(&["faults", "3"]).is_err());
        assert!(runv(&["faults", "3", "--plan", "nonsense"]).is_err());
        assert!(runv(&["faults", "3", "--plan", "bell@60", "--policy", "what"]).is_err());
        assert!(
            runv(&["faults", "3", "--plan", "bell@60", "--random"]).is_err(),
            "--plan and --random together must be rejected"
        );
    }

    #[test]
    fn faults_demo_deadlock_prints_the_wait_for_graph() {
        let out = runv(&["faults", "--demo-deadlock"]).unwrap();
        assert!(out.contains("stalled"), "{out}");
        assert!(out.contains("wait-for graph"), "{out}");
        assert!(out.contains("red marker"), "{out}");
        assert!(out.contains("blue marker"), "{out}");
        assert!(out.contains("held by"), "{out}");
    }

    #[test]
    fn sweep_reports_statistics() {
        let out = runv(&["sweep", "4", "--reps", "6", "--jobs", "2", "--seed", "9"]).unwrap();
        assert!(out.contains("scenario 4"), "{out}");
        assert!(out.contains("6 rep(s), 2 job(s), seed 9"), "{out}");
        assert!(out.contains("completion"), "{out}");
        assert!(out.contains("waiting"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        assert!(!out.contains("failed"), "{out}");
    }

    #[test]
    fn sweep_statistics_are_job_count_invariant() {
        // The whole point of the deterministic merge: only the header's
        // job count differs between a serial and a parallel sweep.
        let serial = runv(&["sweep", "4", "--reps", "8", "--jobs", "1", "--seed", "3"]).unwrap();
        let par = runv(&["sweep", "4", "--reps", "8", "--jobs", "4", "--seed", "3"]).unwrap();
        let stats = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
        assert_eq!(stats(&serial), stats(&par));
        assert_ne!(serial.lines().next(), par.lines().next());
    }

    #[test]
    fn sweep_dashboard_runs_with_and_without_progress() {
        // --dashboard installs a collector; serialize with the other
        // telemetry-touching tests.
        let _guard = telemetry_lock();
        let out =
            runv(&["sweep", "4", "--reps", "4", "--jobs", "2", "--seed", "3", "--dashboard"])
                .unwrap();
        assert!(out.contains("completion"), "{out}");
        // Dashboard output is stderr-only; stdout stays the stats table.
        assert!(!out.contains("worker 0"), "{out}");
        // The numbers are identical to a plain sweep: the dashboard is
        // pure observability.
        let plain = runv(&["sweep", "4", "--reps", "4", "--jobs", "2", "--seed", "3"]).unwrap();
        assert_eq!(out, plain);
    }

    #[test]
    fn explain_text_reports_path_blame_and_bounds() {
        let out = runv(&["explain", "4", "--seed", "7"]).unwrap();
        assert!(out.contains("executed critical path"), "{out}");
        assert!(out.contains("blame:"), "{out}");
        assert!(out.contains("what-if:"), "{out}");
        assert!(out.contains("[ok]"), "bounds must hold: {out}");
        assert!(out.contains("X/W/o"), "gantt legend: {out}");
    }

    #[test]
    fn explain_json_is_valid_and_job_count_invariant() {
        let a = runv(&["explain", "fourslice", "--format", "json", "--seed", "7"]).unwrap();
        let b = runv(&[
            "explain", "fourslice", "--format", "json", "--seed", "7", "--jobs", "4",
        ])
        .unwrap();
        assert_eq!(a, b, "explain output must not depend on --jobs");
        let v = flagsim_telemetry::json::parse(&a).expect("valid JSON");
        assert!(v.get("whatif").is_some(), "{a}");
        assert_eq!(
            v.get("seed").and_then(|s| s.as_f64()),
            Some(7.0),
            "{a}"
        );
    }

    #[test]
    fn explain_matches_run_completion() {
        // `explain` analyzes exactly the run `run` reports: same seed,
        // same completion header.
        let run_out = runv(&["run", "4", "--seed", "9"]).unwrap();
        let explain_out = runv(&["explain", "4", "--seed", "9"]).unwrap();
        let completion: f64 = run_out
            .lines()
            .next()
            .and_then(|l| l.split("completion ").nth(1))
            .and_then(|l| l.split('s').next())
            .and_then(|v| v.parse().ok())
            .expect("run header has a completion");
        let makespan: f64 = explain_out
            .lines()
            .find_map(|l| l.split("makespan ").nth(1))
            .and_then(|l| l.split('s').next())
            .and_then(|v| v.parse().ok())
            .expect("explain echoes the trace summary");
        // run prints one decimal, explain three; agree to rounding.
        assert!(
            (completion - makespan).abs() < 0.06,
            "run said {completion}s, explain said {makespan}s"
        );
    }

    #[test]
    fn explain_rejects_bad_input() {
        assert!(runv(&["explain"]).is_err());
        assert!(runv(&["explain", "9"]).is_err());
        assert!(runv(&["explain", "4", "--format", "yaml"]).is_err());
        assert!(runv(&["explain", "4", "--jobs", "0"]).is_err());
        assert!(runv(&["explain", "4", "--team", "0"]).is_err());
    }

    #[test]
    fn sweep_streaming_mode_matches_retained_mean() {
        let retained = runv(&["sweep", "3", "--reps", "8", "--seed", "5"]).unwrap();
        let streamed =
            runv(&["sweep", "3", "--reps", "8", "--seed", "5", "--stream"]).unwrap();
        assert!(streamed.contains("streaming statistics"), "{streamed}");
        // n/mean/stddev/min agree either way (the P² median is an
        // estimate, so the last two columns may differ in rounding).
        let head = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("completion") && !l.contains("CI"))
                .map(|l| l.split_whitespace().take(5).map(String::from).collect::<Vec<_>>())
        };
        assert_eq!(head(&retained), head(&streamed));
    }

    #[test]
    fn sweep_rejects_bad_input() {
        assert!(runv(&["sweep"]).is_err());
        assert!(runv(&["sweep", "9"]).is_err());
        assert!(runv(&["sweep", "4", "--reps", "0"]).is_err());
        assert!(runv(&["sweep", "4", "--jobs", "0"]).is_err());
        assert!(runv(&["sweep", "4", "--reps", "abc"]).is_err());
        // A team too small for the scenario fails every repetition.
        let e = runv(&["sweep", "3", "--team", "1", "--reps", "2"]).unwrap_err();
        assert!(e.message.contains("all 2 repetitions failed"), "{e}");
    }

    #[test]
    fn run_rejects_nonsense() {
        assert!(runv(&["run", "9"]).is_err());
        assert!(runv(&["run", "1", "--kind", "quill"]).is_err());
        assert!(runv(&["run", "1", "--markers", "0"]).is_err());
        assert!(runv(&["run", "1", "--seed", "abc"]).is_err());
        assert!(runv(&["run"]).is_err());
    }

    #[test]
    fn check_scenario_reports_clean_and_warns() {
        // A clean scenario: no error-level findings, exit Ok.
        let out = runv(&["check", "4", "--seed", "7"]).unwrap();
        assert!(out.contains("check:"), "{out}");
        assert!(!out.contains("error["), "{out}");
        // Crayons are a warning (SC403) but not a deny at the default
        // --deny error…
        let crayons = runv(&["check", "4", "--kind", "crayon", "--seed", "7"]).unwrap();
        assert!(crayons.contains("warning[SC403]"), "{crayons}");
        // …and do fail under --deny warning.
        let e = runv(&[
            "check", "4", "--kind", "crayon", "--seed", "7", "--deny", "warning",
        ])
        .unwrap_err();
        assert!(e.message.contains("check failed"), "{e}");
        // An under-staffed team is an error (SC404) and denies by default.
        let e = runv(&["check", "4", "--team", "2", "--seed", "7"]).unwrap_err();
        assert!(e.message.contains("check failed"), "{e}");
    }

    #[test]
    fn check_every_builtin_scenario_is_error_free() {
        for s in ["1", "2", "3", "4", "pipelined", "alternating"] {
            let out = runv(&["check", s, "--seed", "7"]).unwrap();
            assert!(!out.contains("error["), "{s}: {out}");
        }
    }

    #[test]
    fn check_demo_deadlock_finds_the_lock_order_cycle() {
        let e = runv(&["check", "demo-deadlock"]).unwrap_err();
        assert!(e.message.contains("1 error(s)"), "{e}");
        // The diagnostics themselves went to stdout; the summary names
        // the target.
        assert!(e.message.contains("demo-deadlock"), "{e}");
        // Allow-listing the cycle turns the drill green.
        let out = runv(&["check", "demo-deadlock", "--allow", "SC204"]).unwrap();
        assert!(out.contains("no findings"), "{out}");
        // JSON rendering carries the cycle and parses.
        let e = runv(&["check", "demo-deadlock", "--format", "json"]).unwrap_err();
        assert!(e.message.contains("check failed"), "{e}");
    }

    #[test]
    fn check_flag_and_plan_targets() {
        // A library flag target: spec lints only.
        let out = runv(&["check", "mauritius"]).unwrap();
        assert!(out.contains("flag Mauritius"), "{out}");
        // A fault-plan target: validated without running anything.
        let e = runv(&["check", "dropout:9@10"]).unwrap_err();
        assert!(e.message.contains("check failed"), "targets student 9 of 4: {e}");
        let out = runv(&["check", "break:red@30,bell@120"]).unwrap();
        assert!(!out.contains("error["), "{out}");
        // Nonsense plan strings are parse errors, not findings.
        assert!(runv(&["check", "explode:now@5"]).is_err());
    }

    #[test]
    fn check_static_only_skips_the_observation_run() {
        let out = runv(&["check", "4", "--static-only"]).unwrap();
        assert!(out.contains("check:"), "{out}");
        assert!(!out.contains("error["), "{out}");
    }

    #[test]
    fn check_json_is_identical_across_job_counts() {
        let one = runv(&[
            "check", "4", "--format", "json", "--seed", "7", "--jobs", "1",
        ])
        .unwrap();
        let four = runv(&[
            "check", "4", "--format", "json", "--seed", "7", "--jobs", "4",
        ])
        .unwrap();
        assert_eq!(one, four, "--jobs must never change the findings");
        let v = flagsim_telemetry::json::parse(&one).expect("valid JSON");
        assert!(v.get("counts").is_some());
        assert!(v.get("diagnostics").and_then(|d| d.as_array()).is_some());
    }

    #[test]
    fn check_rejects_bad_input() {
        assert!(runv(&["check"]).is_err());
        assert!(runv(&["check", "4", "--deny", "fatal"]).is_err());
        assert!(runv(&["check", "4", "--format", "xml"]).is_err());
        assert!(runv(&["check", "narnia"]).is_err());
        assert!(runv(&["check", "4", "--jobs", "0"]).is_err());
    }

    #[test]
    fn lint_reports_flag_spec_diagnostics() {
        // Library flags are clean at their recommended raster.
        let out = runv(&["lint", "mauritius"]).unwrap();
        assert!(out.contains("no findings"), "{out}");
        // The same flag at a coarse raster loses stripes: SC102 warnings
        // that trip --deny warning…
        let out = runv(&["lint", "mauritius", "--size", "2x2"]).unwrap();
        assert!(out.contains("warning[SC102]"), "{out}");
        let e = runv(&["lint", "mauritius", "--size", "2x2", "--deny", "warning"])
            .unwrap_err();
        assert!(e.message.contains("check failed"), "{e}");
        // …unless the allow-list waves them through.
        let out = runv(&[
            "lint", "mauritius", "--size", "2x2", "--deny", "warning", "--allow", "SC102",
        ])
        .unwrap();
        assert!(out.contains("flag Mauritius at 2x2"), "{out}");
        // JSON mode parses.
        let out = runv(&["lint", "poland", "--format", "json"]).unwrap();
        assert!(flagsim_telemetry::json::parse(&out).is_ok(), "{out}");
        // Unknown flags that are also unreadable files error out.
        assert!(runv(&["lint", "narnia"]).is_err());
        assert!(runv(&["lint"]).is_err());
    }

    #[test]
    fn run_and_sweep_honor_no_check() {
        // The preflight passes for the built-ins, so --no-check changes
        // nothing observable here — it must still be accepted.
        let checked = runv(&["run", "4", "--seed", "7"]).unwrap();
        let unchecked = runv(&["run", "4", "--seed", "7", "--no-check"]).unwrap();
        assert_eq!(checked, unchecked);
        let out = runv(&[
            "sweep", "3", "--reps", "2", "--jobs", "1", "--no-check", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("rep(s)"), "{out}");
    }

    #[test]
    fn render_svg_mode() {
        let out = runv(&["render", "poland", "svg"]).unwrap();
        assert!(out.starts_with("<svg"));
        assert_eq!(out.matches("<rect").count(), 60);
    }

    #[test]
    fn session_prints_board_and_lessons() {
        let out = runv(&["session", "--repeat"]).unwrap();
        assert!(out.contains("scenario 1 (repeat)"));
        assert!(out.contains("What did we just see?"));
        assert!(out.contains("hardware differences"));
    }

    #[test]
    fn graph_shows_dot_and_schedule() {
        let out = runv(&["graph", "great britain"]).unwrap();
        assert!(out.contains("digraph"));
        assert!(out.contains("critical path: blue field -> white diagonals -> red cross"));
        assert!(out.contains("parallelism 1.00"));
        assert!(runv(&["graph", "great britain", "--procs", "0"]).is_err());
    }

    #[test]
    fn grade_text_end_to_end() {
        let perfect = "task black stripe\ntask green stripe\ntask red triangle\n\
                       task white dot\nedge black stripe -> red triangle\n\
                       edge green stripe -> red triangle\nedge red triangle -> white dot\n";
        let out = grade_text(perfect).unwrap();
        assert!(out.contains("Perfect"));
        assert!(out.contains("yes"));
        let chain = "task black stripe\ntask white stripe\ntask green stripe\n\
                     task red triangle\ntask white dot\n\
                     edge black stripe -> white stripe\nedge white stripe -> green stripe\n\
                     edge green stripe -> red triangle\nedge red triangle -> white dot\n";
        let out = grade_text(chain).unwrap();
        assert!(out.contains("LinearChain"));
        assert!(out.contains("no"));
    }

    #[test]
    fn parse_text_end_to_end() {
        let out = parse_text(
            "flag \"Mini\" 4x2\nlayer \"top\" red hstripe 0 2\nlayer \"bottom\" green hstripe 1 2\n",
        )
        .unwrap();
        assert!(out.contains("parsed \"Mini\""));
        assert!(out.contains("flat (fully parallel)"));
        assert!(out.contains("RRRR"));
        assert!(parse_text("flag oops").is_err());
    }

    #[test]
    fn pack_builds_every_artifact() {
        let files = build_pack(
            &library::mauritius(),
            ImplementKind::ThickMarker,
            7,
        )
        .unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "flag.txt",
            "flag.svg",
            "slides.txt",
            "checklist.txt",
            "quiz.txt",
            "quiz_key.txt",
            "sample_session.txt",
            "scenario4_gantt.svg",
            "jordan_dependencies.dot",
            "jordan_schedule.svg",
            "jordan_schedule_animated.svg",
            "vocabulary.txt",
            "scenario4_students.csv",
            "scenario4_contention.csv",
            "scenario4_events.csv",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // Spot-check content.
        let get = |n: &str| &files.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(get("slides.txt").contains("scenario 4"));
        assert!(get("quiz_key.txt").contains('*'));
        assert!(get("sample_session.txt").contains("What did we just see?"));
        assert!(get("jordan_dependencies.dot").contains("digraph"));
        assert!(get("scenario4_gantt.svg").starts_with("<svg"));
    }

    #[test]
    fn replay_shows_the_flag_filling_in() {
        let out = runv(&["replay", "4", "--frames", "3"]).unwrap();
        assert_eq!(out.matches("t =").count(), 3);
        assert!(out.contains("(96/96 cells)"));
        assert!(runv(&["replay", "4", "--frames", "0"]).is_err());
        assert!(runv(&["replay"]).is_err());
    }

    #[test]
    fn report_regenerates_the_evaluation() {
        let out = runv(&["report"]).unwrap();
        assert!(out.contains("Table I"));
        assert!(out.contains("McNemar"));
        assert!(!out.contains('!'), "no table mismatches expected");
    }

    #[test]
    fn vocab_lists_and_looks_up() {
        let all = runv(&["vocab"]).unwrap();
        assert!(all.contains("contention"));
        assert!(all.contains("pipelining"));
        let one = runv(&["vocab", "speedup"]).unwrap();
        assert!(one.contains("T1 / Tp"));
        assert!(runv(&["vocab", "quantum"]).is_err());
    }

    #[test]
    fn pack_writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("flagsim-pack-{}", std::process::id()));
        let dir_s = dir.to_string_lossy().to_string();
        let out = runv(&["pack", "--out", &dir_s]).unwrap();
        assert!(out.contains("slides.txt"));
        assert!(dir.join("quiz.txt").exists());
        assert!(dir.join("flag.svg").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_requires_out() {
        assert!(runv(&["pack"]).is_err());
    }

    #[test]
    fn grade_and_parse_need_files() {
        assert!(runv(&["grade"]).is_err());
        assert!(runv(&["parse"]).is_err());
        assert!(runv(&["grade", "/nonexistent/file"]).is_err());
    }

    /// Serialize tests that install the process-global telemetry
    /// collector (`profile`, `--trace-out`): concurrent installs would
    /// steal each other's spans.
    fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn scenario_aliases_resolve() {
        let out = runv(&["run", "onestripe", "--seed", "7"]).unwrap();
        assert!(out.contains("scenario 3"), "{out}");
        let out = runv(&["run", "fourslice", "--seed", "7"]).unwrap();
        assert!(out.contains("scenario 4"), "{out}");
    }

    #[test]
    fn profile_chrome_trace_is_valid_and_balanced() {
        let _serial = telemetry_lock();
        let out = runv(&["profile", "fourslice", "--reps", "2", "--seed", "7"]).unwrap();
        let events =
            flagsim_telemetry::json::validate_chrome_trace(&out).expect("valid chrome trace");
        assert!(events > 0, "expected events in:\n{out}");
        assert!(out.contains("sweep.rep"), "{out}");
        assert!(out.contains("desim.run"), "{out}");
    }

    #[test]
    fn profile_table_folded_and_metrics() {
        let _serial = telemetry_lock();
        let table = runv(&[
            "profile", "onestripe", "--reps", "2", "--format", "table", "--metrics",
        ])
        .unwrap();
        assert!(table.contains("sweep.rep"), "{table}");
        assert!(table.contains("--- metrics ---"), "{table}");
        assert!(table.contains("desim.runs"), "{table}");
        let folded =
            runv(&["profile", "onestripe", "--reps", "2", "--format", "folded"]).unwrap();
        assert!(
            folded.lines().any(|l| l.contains("sweep;sweep.rep")),
            "{folded}"
        );
    }

    #[test]
    fn profile_out_writes_file() {
        let _serial = telemetry_lock();
        let path = std::env::temp_dir()
            .join(format!("flagsim-profile-{}.json", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let out = runv(&["profile", "onestripe", "--reps", "2", "--out", &path_s]).unwrap();
        assert!(out.contains("span(s) written"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(flagsim_telemetry::json::validate_chrome_trace(&text).unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_rejects_bad_input() {
        assert!(runv(&["profile"]).is_err());
        assert!(runv(&["profile", "4", "--format", "xml"]).is_err());
        assert!(runv(&["profile", "4", "--reps", "0"]).is_err());
        assert!(runv(&["profile", "4", "--jobs", "0"]).is_err());
        assert!(runv(&["profile", "9"]).is_err());
    }

    #[test]
    fn run_trace_out_writes_chrome_trace() {
        let _serial = telemetry_lock();
        let path = std::env::temp_dir()
            .join(format!("flagsim-run-trace-{}.json", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let out = runv(&["run", "4", "--seed", "7", "--trace-out", &path_s]).unwrap();
        assert!(out.contains("scenario 4"), "stdout stays the report: {out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(flagsim_telemetry::json::validate_chrome_trace(&text).unwrap() > 0);
        assert!(text.contains("run.activity"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
