//! Property tests for the grid substrate: partition coverage, region
//! algebra laws, and render/parse roundtrips.

use flagsim_grid::partition::{blocks, contiguous, cyclic, horizontal_bands, vertical_slices, Rect};
use flagsim_grid::region::verify_partition;
use flagsim_grid::render::to_ascii;
use flagsim_grid::{CellId, Color, Grid, Region};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (u32, u32)> {
    (1u32..40, 1u32..40)
}

proptest! {
    /// Every geometric partition covers every cell exactly once.
    #[test]
    fn partitions_are_exact((w, h) in dims(), n in 1u32..9) {
        let full = Rect::full(w, h);
        let whole = full.region(w);

        let bands: Vec<Region> =
            horizontal_bands(full, n).iter().map(|r| r.region(w)).collect();
        prop_assert!(verify_partition(&whole, &bands).is_ok());

        let slices: Vec<Region> =
            vertical_slices(full, n).iter().map(|r| r.region_column_major(w)).collect();
        prop_assert!(verify_partition(&whole, &slices).is_ok());

        let tiles: Vec<Region> =
            blocks(full, n.min(w), n.min(h)).iter().map(|r| r.region(w)).collect();
        prop_assert!(verify_partition(&whole, &tiles).is_ok());

        prop_assert!(verify_partition(&whole, &cyclic(w, h, n as usize)).is_ok());
        prop_assert!(verify_partition(&whole, &contiguous(w, h, n as usize)).is_ok());
    }

    /// Contiguous split sizes differ by at most one and are ordered
    /// largest-first.
    #[test]
    fn split_sizes_balanced(len in 0usize..200, n in 1usize..9) {
        let region = Region::from_ids((0..len as u32).map(CellId));
        let parts = region.split_contiguous(n);
        prop_assert_eq!(parts.len(), n);
        let sizes: Vec<usize> = parts.iter().map(Region::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
        prop_assert!(sizes.windows(2).all(|wnd| wnd[0] >= wnd[1]));
        prop_assert_eq!(sizes.iter().sum::<usize>(), len);
    }

    /// Region set algebra obeys the usual identities.
    #[test]
    fn region_algebra(a in proptest::collection::vec(0u32..300, 0..60),
                      b in proptest::collection::vec(0u32..300, 0..60)) {
        let ra = Region::from_ids(a.iter().copied().map(CellId));
        let rb = Region::from_ids(b.iter().copied().map(CellId));
        let inter = ra.intersection(&rb);
        let diff = ra.difference(&rb);
        // intersection ∪ difference == a, and they are disjoint.
        prop_assert!(!inter.overlaps(&diff));
        prop_assert_eq!(inter.len() + diff.len(), ra.len());
        for id in inter.iter() {
            prop_assert!(ra.contains(id) && rb.contains(id));
        }
        // union contains both and nothing else.
        let uni = ra.union(&rb);
        for id in ra.iter().chain(rb.iter()) {
            prop_assert!(uni.contains(id));
        }
        for id in uni.iter() {
            prop_assert!(ra.contains(id) || rb.contains(id));
        }
        // overlap is symmetric and consistent with intersection.
        prop_assert_eq!(ra.overlaps(&rb), rb.overlaps(&ra));
        prop_assert_eq!(ra.overlaps(&rb), !inter.is_empty());
    }

    /// ASCII render/parse is a lossless roundtrip for named-palette grids.
    #[test]
    fn ascii_roundtrip((w, h) in dims(), seed in any::<u64>()) {
        let palette = [
            Color::Blank, Color::Red, Color::Blue, Color::Yellow,
            Color::Green, Color::White, Color::Black, Color::Orange,
        ];
        let mut g = Grid::new(w, h);
        let mut state = seed;
        for id in g.ids().collect::<Vec<_>>() {
            // Cheap xorshift so the test has no RNG dependency.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let c = palette[(state % palette.len() as u64) as usize];
            if c.is_painted() {
                g.paint(id, c);
            }
        }
        let text = to_ascii(&g);
        let parsed = Grid::parse(&text).unwrap();
        prop_assert_eq!(flagsim_grid::diff(&g, &parsed).is_identical(), true);
    }

    /// Cyclic split puts cell i into part i mod n.
    #[test]
    fn cyclic_placement(len in 1usize..100, n in 1usize..8) {
        let region = Region::from_ids((0..len as u32).map(CellId));
        let parts = region.split_cyclic(n);
        for (i, id) in region.iter().enumerate() {
            prop_assert!(parts[i % n].contains(id));
        }
    }
}
