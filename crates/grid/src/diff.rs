//! Grid comparison.
//!
//! Used in tests and the verification harness to confirm that every
//! execution strategy (sequential reference, simulated teams, real threads)
//! produces the identical flag — the activity's correctness criterion: the
//! finished picture must be the same no matter how the work was divided.

use crate::{CellId, Grid};

/// The difference between two grids of equal dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridDiff {
    /// Cells whose colors differ, with `(id, left_color_code, right_color_code)`.
    pub mismatches: Vec<(CellId, char, char)>,
    /// Total number of cells compared.
    pub total: usize,
}

impl GridDiff {
    /// Whether the grids are identical.
    pub fn is_identical(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Fraction of cells that match, in `[0, 1]`.
    pub fn similarity(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.mismatches.len() as f64 / self.total as f64
    }
}

/// Compare two grids cell-by-cell. Panics if dimensions differ (comparing
/// different flags is a caller bug, not a diff result).
pub fn diff(left: &Grid, right: &Grid) -> GridDiff {
    assert_eq!(
        (left.width(), left.height()),
        (right.width(), right.height()),
        "grids must have equal dimensions"
    );
    let mismatches = left
        .iter()
        .zip(right.iter())
        .filter(|&((_id, a), (_, b))| a != b).map(|((id, a), (_, b))| (id, a.code(), b.code()))
        .collect();
    GridDiff {
        mismatches,
        total: left.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Color;

    #[test]
    fn identical_grids() {
        let a = Grid::parse("RG\nBY\n").unwrap();
        let d = diff(&a, &a.clone());
        assert!(d.is_identical());
        assert_eq!(d.similarity(), 1.0);
    }

    #[test]
    fn reports_each_mismatch() {
        let a = Grid::parse("RR\nRR\n").unwrap();
        let mut b = a.clone();
        b.paint(CellId(1), Color::Blue);
        b.paint(CellId(3), Color::Green);
        let d = diff(&a, &b);
        assert_eq!(d.mismatches.len(), 2);
        assert_eq!(d.mismatches[0], (CellId(1), 'R', 'B'));
        assert_eq!(d.mismatches[1], (CellId(3), 'R', 'G'));
        assert!((d.similarity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let a = Grid::new(2, 2);
        let b = Grid::new(3, 2);
        let _ = diff(&a, &b);
    }
}
