//! Geometric grid partitions.
//!
//! These helpers carve a grid (or any rectangular sub-area) into the
//! work-assignment shapes the activity uses: horizontal stripes (scenarios
//! 2 and 3 of Figure 1), vertical slices (scenario 4), blocks, and cyclic
//! interleavings. Higher-level, *flag-aware* partitions (e.g. "the red and
//! blue stripes") live in `flagsim-core`; this module is pure geometry.

use crate::{Coord, Region};
#[cfg(test)]
use crate::CellId;

/// A rectangular area of a grid: columns `[x0, x1)` × rows `[y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: u32,
    /// Top edge (inclusive).
    pub y0: u32,
    /// Right edge (exclusive).
    pub x1: u32,
    /// Bottom edge (exclusive).
    pub y1: u32,
}

impl Rect {
    /// Construct; panics on inverted edges.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// A rect covering an entire `width × height` grid.
    pub fn full(width: u32, height: u32) -> Self {
        Rect::new(0, 0, width, height)
    }

    /// Width in cells.
    pub fn width(&self) -> u32 {
        self.x1 - self.x0
    }

    /// Height in cells.
    pub fn height(&self) -> u32 {
        self.y1 - self.y0
    }

    /// Number of cells.
    pub fn area(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// Whether a coordinate lies inside.
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.x0 && c.x < self.x1 && c.y >= self.y0 && c.y < self.y1
    }

    /// Cells of this rect in row-major order, as ids on a grid of width
    /// `grid_width`.
    pub fn region(&self, grid_width: u32) -> Region {
        let mut r = Region::new();
        for y in self.y0..self.y1 {
            for x in self.x0..self.x1 {
                r.push(Coord::new(x, y).to_id(grid_width));
            }
        }
        r
    }

    /// Cells in column-major order (top-to-bottom, then next column) — the
    /// natural fill order for a vertical slice, matching how scenario 4's
    /// students work down their slice stripe by stripe.
    pub fn region_column_major(&self, grid_width: u32) -> Region {
        let mut r = Region::new();
        for x in self.x0..self.x1 {
            for y in self.y0..self.y1 {
                r.push(Coord::new(x, y).to_id(grid_width));
            }
        }
        r
    }
}

/// Split `[0, extent)` into `n` contiguous near-equal spans (larger first).
fn spans(extent: u32, n: u32) -> Vec<(u32, u32)> {
    assert!(n > 0, "cannot split into zero parts");
    let base = extent / n;
    let extra = extent % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut start = 0;
    for i in 0..n {
        let len = base + u32::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Split a rect into `n` horizontal bands (stacked top to bottom). With
/// `n = 4` on the Mauritius flag this is exactly scenario 3's "each of them
/// doing one stripe".
pub fn horizontal_bands(rect: Rect, n: u32) -> Vec<Rect> {
    spans(rect.height(), n)
        .into_iter()
        .map(|(a, b)| Rect::new(rect.x0, rect.y0 + a, rect.x1, rect.y0 + b))
        .collect()
}

/// Split a rect into `n` vertical slices (left to right) — scenario 4's
/// decomposition, where "each of them is responsible for a vertical slice
/// of the flag which includes part of each stripe".
pub fn vertical_slices(rect: Rect, n: u32) -> Vec<Rect> {
    spans(rect.width(), n)
        .into_iter()
        .map(|(a, b)| Rect::new(rect.x0 + a, rect.y0, rect.x0 + b, rect.y1))
        .collect()
}

/// Split a rect into a `cols × rows` grid of blocks, row-major.
pub fn blocks(rect: Rect, cols: u32, rows: u32) -> Vec<Rect> {
    let hs = spans(rect.width(), cols);
    let vs = spans(rect.height(), rows);
    let mut out = Vec::with_capacity((cols * rows) as usize);
    for &(ya, yb) in &vs {
        for &(xa, xb) in &hs {
            out.push(Rect::new(
                rect.x0 + xa,
                rect.y0 + ya,
                rect.x0 + xb,
                rect.y0 + yb,
            ));
        }
    }
    out
}

/// Assign the cells of a `width × height` grid to `n` parts round-robin by
/// row-major index — a cyclic distribution, useful as a load-balancing
/// baseline in the benchmarks.
pub fn cyclic(width: u32, height: u32, n: usize) -> Vec<Region> {
    Rect::full(width, height).region(width).split_cyclic(n)
}

/// Row-major ids of an entire grid, split into `n` contiguous chunks — a
/// "block" 1-D distribution ignoring geometry.
pub fn contiguous(width: u32, height: u32, n: usize) -> Vec<Region> {
    Rect::full(width, height).region(width).split_contiguous(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::verify_partition;

    #[test]
    fn rect_region_row_major() {
        let r = Rect::new(1, 1, 3, 3).region(4);
        // Grid width 4: (1,1)=5, (2,1)=6, (1,2)=9, (2,2)=10.
        assert_eq!(
            r.cells(),
            &[CellId(5), CellId(6), CellId(9), CellId(10)]
        );
    }

    #[test]
    fn rect_region_column_major() {
        let r = Rect::new(0, 0, 2, 2).region_column_major(4);
        assert_eq!(r.cells(), &[CellId(0), CellId(4), CellId(1), CellId(5)]);
    }

    #[test]
    fn horizontal_bands_cover_exactly() {
        let full = Rect::full(12, 8);
        let bands = horizontal_bands(full, 4);
        assert_eq!(bands.len(), 4);
        assert!(bands.iter().all(|b| b.height() == 2 && b.width() == 12));
        let whole = full.region(12);
        let parts: Vec<Region> = bands.iter().map(|b| b.region(12)).collect();
        verify_partition(&whole, &parts).unwrap();
    }

    #[test]
    fn vertical_slices_cover_exactly() {
        let full = Rect::full(12, 8);
        let slices = vertical_slices(full, 4);
        assert!(slices.iter().all(|s| s.width() == 3 && s.height() == 8));
        let whole = full.region(12);
        let parts: Vec<Region> = slices.iter().map(|s| s.region_column_major(12)).collect();
        verify_partition(&whole, &parts).unwrap();
    }

    #[test]
    fn uneven_split_puts_larger_parts_first() {
        let bands = horizontal_bands(Rect::full(5, 7), 3);
        assert_eq!(
            bands.iter().map(Rect::height).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
    }

    #[test]
    fn blocks_tile_exactly() {
        let full = Rect::full(10, 6);
        let tiles = blocks(full, 2, 3);
        assert_eq!(tiles.len(), 6);
        let whole = full.region(10);
        let parts: Vec<Region> = tiles.iter().map(|b| b.region(10)).collect();
        verify_partition(&whole, &parts).unwrap();
    }

    #[test]
    fn cyclic_and_contiguous_partition() {
        let whole = Rect::full(6, 4).region(6);
        for n in 1..=5 {
            verify_partition(&whole, &cyclic(6, 4, n)).unwrap();
            verify_partition(&whole, &contiguous(6, 4, n)).unwrap();
        }
    }

    #[test]
    fn rect_contains() {
        let r = Rect::new(2, 2, 4, 4);
        assert!(r.contains(Coord::new(2, 2)));
        assert!(r.contains(Coord::new(3, 3)));
        assert!(!r.contains(Coord::new(4, 3)));
        assert!(!r.contains(Coord::new(1, 2)));
    }
}
