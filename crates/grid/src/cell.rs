//! Cell addressing.
//!
//! Cells are addressed two ways: as `(col, row)` coordinates ([`Coord`],
//! used by geometry code such as shape containment tests) and as a flat
//! row-major index ([`CellId`], used by regions, partitions and the
//! simulator, where a compact `u32` keeps hot structures small — see the
//! "Smaller Integers" advice in the Rust Performance Book).

use std::fmt;

/// A `(col, row)` coordinate on a grid. `x` grows rightward, `y` downward
/// (raster convention), matching how the paper's figures are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column, 0-based from the left edge.
    pub x: u32,
    /// Row, 0-based from the top edge.
    pub y: u32,
}

impl Coord {
    /// Construct a coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// Flat row-major cell id for a grid of the given width.
    #[inline]
    pub const fn to_id(self, width: u32) -> CellId {
        CellId(self.y * width + self.x)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((x, y): (u32, u32)) -> Self {
        Coord::new(x, y)
    }
}

/// A flat row-major cell index into a [`Grid`](crate::Grid).
///
/// The numbering matches the paper's practice of numbering cells on the
/// scenario slides "to efficiently convey the order in which they should be
/// filled": id 0 is the top-left cell, ids increase left-to-right then
/// top-to-bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The flat index as a `usize`, for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Convert back to a coordinate given the grid width.
    #[inline]
    pub const fn to_coord(self, width: u32) -> Coord {
        Coord {
            x: self.0 % width,
            y: self.0 / width,
        }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_id_roundtrip() {
        let width = 12;
        for y in 0..8 {
            for x in 0..width {
                let c = Coord::new(x, y);
                assert_eq!(c.to_id(width).to_coord(width), c);
            }
        }
    }

    #[test]
    fn row_major_numbering_starts_top_left() {
        assert_eq!(Coord::new(0, 0).to_id(10), CellId(0));
        assert_eq!(Coord::new(9, 0).to_id(10), CellId(9));
        assert_eq!(Coord::new(0, 1).to_id(10), CellId(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Coord::new(3, 4).to_string(), "(3, 4)");
        assert_eq!(CellId(7).to_string(), "#7");
    }
}
