//! The [`Grid`]: a sheet of gridded paper.

use crate::{CellId, Color, Coord, Region};

/// A rectangular raster of colored cells — the "gridded paper" the activity
/// hands out.
///
/// Cells start [`Color::Blank`] and are painted via [`Grid::paint`]. The grid
/// deliberately allows repainting (a later flag layer may overpaint an
/// earlier one — the painter's-algorithm approach the paper discusses for the
/// flag of Great Britain) and records how many paint strokes each cell has
/// received so that layered and flat colorings can be distinguished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: u32,
    height: u32,
    cells: Vec<Color>,
    strokes: Vec<u16>,
}

impl Grid {
    /// Create a blank grid. Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        let n = (width as usize) * (height as usize);
        Grid {
            width,
            height,
            cells: vec![Color::Blank; n],
            strokes: vec![0; n],
        }
    }

    /// Parse a grid from the compact golden-test format produced by
    /// [`crate::render::to_ascii`]: one line per row, one
    /// [`Color::code`] character per cell. Whitespace-only lines are
    /// skipped; all rows must have equal length.
    pub fn parse(text: &str) -> Result<Grid, String> {
        let rows: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if rows.is_empty() {
            return Err("empty grid text".to_owned());
        }
        let width = rows[0].chars().count();
        let mut cells = Vec::with_capacity(width * rows.len());
        for (y, row) in rows.iter().enumerate() {
            if row.chars().count() != width {
                return Err(format!(
                    "row {y} has {} cells, expected {width}",
                    row.chars().count()
                ));
            }
            for (x, ch) in row.chars().enumerate() {
                let color = Color::from_code(ch)
                    .ok_or_else(|| format!("unknown color code {ch:?} at ({x}, {y})"))?;
                cells.push(color);
            }
        }
        let strokes = cells.iter().map(|c| u16::from(c.is_painted())).collect();
        Ok(Grid {
            width: width as u32,
            height: rows.len() as u32,
            cells,
            strokes,
        })
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has zero cells (never true: dimensions are nonzero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether the coordinate lies on the grid.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The color of a cell.
    #[inline]
    pub fn get(&self, id: CellId) -> Color {
        self.cells[id.index()]
    }

    /// The color at a coordinate.
    #[inline]
    pub fn get_at(&self, c: Coord) -> Color {
        self.get(c.to_id(self.width))
    }

    /// Paint a cell, returning the color it had before.
    ///
    /// Painting with [`Color::Blank`] is rejected — erasing is not a thing
    /// you can do with a marker on paper.
    #[inline]
    pub fn paint(&mut self, id: CellId, color: Color) -> Color {
        assert!(color.is_painted(), "cannot paint a cell blank");
        let slot = &mut self.cells[id.index()];
        let prev = *slot;
        *slot = color;
        self.strokes[id.index()] = self.strokes[id.index()].saturating_add(1);
        prev
    }

    /// Paint at a coordinate. See [`Grid::paint`].
    #[inline]
    pub fn paint_at(&mut self, c: Coord, color: Color) -> Color {
        self.paint(c.to_id(self.width), color)
    }

    /// How many times a cell has been painted (0 for untouched cells).
    /// Layered colorings overpaint; flat colorings touch each cell once.
    #[inline]
    pub fn stroke_count(&self, id: CellId) -> u16 {
        self.strokes[id.index()]
    }

    /// Total paint strokes applied to the whole grid.
    pub fn total_strokes(&self) -> u64 {
        self.strokes.iter().map(|&s| u64::from(s)).sum()
    }

    /// Number of cells still blank.
    pub fn blank_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_painted()).count()
    }

    /// Whether every cell has been painted.
    pub fn is_complete(&self) -> bool {
        self.blank_cells() == 0
    }

    /// Iterate over all cell ids in row-major (execution-number) order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = CellId> + 'static {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterate over `(CellId, Color)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, Color)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, &c)| (CellId(i as u32), c))
    }

    /// A region containing every cell, in row-major order.
    pub fn full_region(&self) -> Region {
        Region::from_ids(self.ids())
    }

    /// The region of cells currently holding `color`.
    pub fn cells_of_color(&self, color: Color) -> Region {
        Region::from_ids(
            self.iter()
                .filter_map(|(id, c)| (c == color).then_some(id)),
        )
    }

    /// Check that this grid's colors match `expected` cell-for-cell,
    /// returning the ids of mismatching cells (empty = match). Used by the
    /// integration tests to verify that every execution strategy — serial,
    /// simulated-parallel, real threads — produces the same flag.
    pub fn mismatches(&self, expected: &Grid) -> Vec<CellId> {
        assert_eq!(
            (self.width, self.height),
            (expected.width, expected.height),
            "grids must have equal dimensions"
        );
        self.iter()
            .zip(expected.iter())
            .filter_map(|((id, a), (_, b))| (a != b).then_some(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_blank() {
        let g = Grid::new(6, 4);
        assert_eq!(g.len(), 24);
        assert_eq!(g.blank_cells(), 24);
        assert!(!g.is_complete());
        assert_eq!(g.total_strokes(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Grid::new(0, 5);
    }

    #[test]
    fn paint_and_get() {
        let mut g = Grid::new(3, 2);
        let prev = g.paint_at(Coord::new(1, 1), Color::Red);
        assert_eq!(prev, Color::Blank);
        assert_eq!(g.get_at(Coord::new(1, 1)), Color::Red);
        assert_eq!(g.blank_cells(), 5);
    }

    #[test]
    fn overpaint_counts_strokes() {
        let mut g = Grid::new(2, 2);
        let id = CellId(3);
        g.paint(id, Color::Blue);
        let prev = g.paint(id, Color::White);
        assert_eq!(prev, Color::Blue);
        assert_eq!(g.get(id), Color::White);
        assert_eq!(g.stroke_count(id), 2);
        assert_eq!(g.total_strokes(), 2);
    }

    #[test]
    #[should_panic(expected = "blank")]
    fn painting_blank_is_rejected() {
        let mut g = Grid::new(2, 2);
        g.paint(CellId(0), Color::Blank);
    }

    #[test]
    fn complete_after_painting_everything() {
        let mut g = Grid::new(4, 4);
        for id in g.ids().collect::<Vec<_>>() {
            g.paint(id, Color::Green);
        }
        assert!(g.is_complete());
        assert_eq!(g.cells_of_color(Color::Green).len(), 16);
    }

    #[test]
    fn parse_roundtrip() {
        let text = "RRBB\nYYGG\n";
        let g = Grid::parse(text).unwrap();
        assert_eq!(g.width(), 4);
        assert_eq!(g.height(), 2);
        assert_eq!(g.get_at(Coord::new(0, 0)), Color::Red);
        assert_eq!(g.get_at(Coord::new(3, 1)), Color::Green);
        assert_eq!(crate::render::to_ascii(&g), "RRBB\nYYGG\n");
    }

    #[test]
    fn parse_rejects_ragged_and_unknown() {
        assert!(Grid::parse("RR\nRRR\n").is_err());
        assert!(Grid::parse("Rz\n").is_err());
        assert!(Grid::parse("   \n").is_err());
    }

    #[test]
    fn mismatches_reports_differences() {
        let a = Grid::parse("RB\nGY\n").unwrap();
        let mut b = a.clone();
        assert!(a.mismatches(&b).is_empty());
        b.paint(CellId(2), Color::Red);
        assert_eq!(a.mismatches(&b), vec![CellId(2)]);
    }
}
