//! Cell fill quality.
//!
//! Section IV of the paper observes "a wide variety of how well students
//! colored the grid cells; some completely covered the paper and others
//! added a minimal amount of color", and recommends "a back and forth
//! scribble that touches all edges of the cell" as the middle road. Fill
//! style matters to the simulation because it scales per-cell work: a full
//! fill takes longer than a scribble, which takes longer than a token dab —
//! and the paper notes classes drifted toward minimal fills "to minimize
//! the tedium of coloring and to reduce the time as they got competitive".

/// How thoroughly a cell is covered with color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FillStyle {
    /// Complete coverage of the cell.
    Full,
    /// The paper's recommended "back and forth scribble that touches all
    /// edges of the cell" — the default.
    #[default]
    Scribble,
    /// "A minimal amount of color" — the competitive-student shortcut.
    Minimal,
}

impl FillStyle {
    /// Work multiplier relative to a scribble fill (the calibration unit).
    ///
    /// Full coverage costs roughly twice a scribble; a minimal dab roughly
    /// half. These ratios only need to be *ordered* correctly for the
    /// paper's lessons to reproduce; absolute values are a free calibration.
    pub fn work_factor(self) -> f64 {
        match self {
            FillStyle::Full => 2.0,
            FillStyle::Scribble => 1.0,
            FillStyle::Minimal => 0.5,
        }
    }

    /// Whether this style achieves "uniformity of time per cell", which the
    /// paper says the scribble makes possible. Minimal fills are erratic —
    /// the cost model adds extra variance for them.
    pub fn uniform_timing(self) -> bool {
        !matches!(self, FillStyle::Minimal)
    }

    /// All styles, for sweeps.
    pub const ALL: [FillStyle; 3] = [FillStyle::Full, FillStyle::Scribble, FillStyle::Minimal];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ordering_full_gt_scribble_gt_minimal() {
        assert!(FillStyle::Full.work_factor() > FillStyle::Scribble.work_factor());
        assert!(FillStyle::Scribble.work_factor() > FillStyle::Minimal.work_factor());
    }

    #[test]
    fn scribble_is_default_and_unit() {
        assert_eq!(FillStyle::default(), FillStyle::Scribble);
        assert_eq!(FillStyle::Scribble.work_factor(), 1.0);
    }

    #[test]
    fn minimal_fills_are_not_uniform() {
        assert!(FillStyle::Full.uniform_timing());
        assert!(FillStyle::Scribble.uniform_timing());
        assert!(!FillStyle::Minimal.uniform_timing());
    }
}
