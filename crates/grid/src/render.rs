//! Text renderers.
//!
//! The calibration notes for this reproduction rule out a GUI ("GUI crates
//! immature; more effort than value"), so flags render as text: a compact
//! ASCII code form (used by golden tests and [`crate::Grid::parse`]), an
//! ANSI-truecolor form for terminals, and PPM (P3) for anything that wants
//! an actual image file.

use crate::{Color, Coord, Grid};
use std::fmt::Write as _;

/// Render one [`Color::code`] character per cell, rows separated by `\n`,
/// with a trailing newline. Inverse of [`Grid::parse`].
pub fn to_ascii(grid: &Grid) -> String {
    let mut out = String::with_capacity((grid.width() as usize + 1) * grid.height() as usize);
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            out.push(grid.get_at(Coord::new(x, y)).code());
        }
        out.push('\n');
    }
    out
}

/// Render using ANSI truecolor background escapes, two spaces per cell so
/// cells are roughly square in a terminal. Ends each row with a reset and
/// newline.
pub fn to_ansi(grid: &Grid) -> String {
    let mut out = String::new();
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let (r, g, b) = grid.get_at(Coord::new(x, y)).rgb();
            let _ = write!(out, "\x1b[48;2;{r};{g};{b}m  ");
        }
        out.push_str("\x1b[0m\n");
    }
    out
}

/// Render as a plain-text PPM (P3) image, one pixel per cell.
pub fn to_ppm(grid: &Grid) -> String {
    let mut out = format!("P3\n{} {}\n255\n", grid.width(), grid.height());
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let (r, g, b) = grid.get_at(Coord::new(x, y)).rgb();
            let _ = writeln!(out, "{r} {g} {b}");
        }
    }
    out
}

/// Render as an SVG document, `cell` pixels per cell, with hairline grid
/// lines like the activity's gridded paper. Pure text output — printable
/// handouts without any graphics dependency.
pub fn to_svg(grid: &Grid, cell: u32) -> String {
    assert!(cell > 0, "cell size must be nonzero");
    let (w, h) = (grid.width() * cell, grid.height() * cell);
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n"
    );
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let (r, g, b) = grid.get_at(Coord::new(x, y)).rgb();
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{cell}\" height=\"{cell}\" \
                 fill=\"rgb({r},{g},{b})\" stroke=\"#999\" stroke-width=\"0.5\"/>",
                x * cell,
                y * cell,
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Render a numbered-cell view of an execution order, mimicking the paper's
/// scenario slides where "the numbers indicat\[e\] the execution order".
/// Cells not in `order` print as `..`; numbers are 1-based and shown modulo
/// 100 to keep the layout fixed-width.
pub fn to_numbered(grid: &Grid, order: &crate::Region) -> String {
    let mut numbers = vec![None; grid.len()];
    for (i, id) in order.iter().enumerate() {
        numbers[id.index()] = Some(i + 1);
    }
    let mut out = String::new();
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let idx = Coord::new(x, y).to_id(grid.width()).index();
            match numbers[idx] {
                Some(n) => {
                    let _ = write!(out, "{:>2}", n % 100);
                }
                None => out.push_str(".."),
            }
            out.push(' ');
        }
        // Drop the trailing space on each row.
        out.pop();
        out.push('\n');
    }
    out
}

/// A one-line legend mapping color codes to names for the colors present in
/// the grid, e.g. `R=red B=blue Y=yellow G=green`.
pub fn legend(grid: &Grid) -> String {
    let mut seen: Vec<Color> = Vec::new();
    for (_, c) in grid.iter() {
        if c.is_painted() && !seen.contains(&c) {
            seen.push(c);
        }
    }
    seen.iter()
        .map(|c| format!("{}={}", c.code(), c.name()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellId, Region};

    fn sample() -> Grid {
        Grid::parse("RB\nYG\n").unwrap()
    }

    #[test]
    fn ascii_roundtrip() {
        let g = sample();
        assert_eq!(to_ascii(&g), "RB\nYG\n");
        assert_eq!(Grid::parse(&to_ascii(&g)).unwrap(), g);
    }

    #[test]
    fn ansi_contains_truecolor_escapes_and_resets() {
        let s = to_ansi(&sample());
        assert!(s.contains("\x1b[48;2;"));
        assert_eq!(s.matches("\x1b[0m\n").count(), 2);
    }

    #[test]
    fn ppm_header_and_pixel_count() {
        let s = to_ppm(&sample());
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("P3"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.count(), 4);
    }

    #[test]
    fn svg_has_one_rect_per_cell() {
        let s = to_svg(&sample(), 16);
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<rect").count(), 4);
        assert!(s.contains("width=\"32\" height=\"32\""));
        // The red cell's fill is present.
        let (r, g, b) = Color::Red.rgb();
        assert!(s.contains(&format!("rgb({r},{g},{b})")));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn svg_zero_cell_panics() {
        let _ = to_svg(&sample(), 0);
    }

    #[test]
    fn numbered_view_marks_order() {
        let g = Grid::new(3, 1);
        let order = Region::from_ids([CellId(2), CellId(0)]);
        let s = to_numbered(&g, &order);
        assert_eq!(s, " 2 ..  1\n");
    }

    #[test]
    fn legend_lists_present_colors_once() {
        assert_eq!(legend(&sample()), "R=red B=blue Y=yellow G=green");
        let blank = Grid::new(2, 2);
        assert_eq!(legend(&blank), "");
    }
}
