//! The activity's color palette.
//!
//! The paper's core activity uses the flag of Mauritius, whose "four
//! equally-sized stripes" are red, blue, yellow and green — conveniently,
//! each team gets "one drawing implement of each color". Variations add the
//! French flag (blue/white/red), the Canadian flag (red/white), the flag of
//! Great Britain (blue/white/red) and the flag of Jordan
//! (black/white/green/red). We model colors as a small closed enum plus an
//! escape hatch for arbitrary RGB so that renderers and custom flags stay
//! flexible.

use std::fmt;

/// A drawable color.
///
/// Named variants cover every color used by the flags in the paper; the
/// [`Color::Rgb`] variant supports custom flags. `Blank` represents an
/// unfilled cell of gridded paper (which the paper notes can stand in for
/// white: students were allowed to omit the white stripe of Jordan because
/// "the background is initially white").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Color {
    /// Unfilled paper. Renders as white but is distinct from painted White.
    Blank,
    /// Red (Mauritius stripe 1, Canada, France, Great Britain, Jordan).
    Red,
    /// Blue (Mauritius stripe 2, France, Great Britain).
    Blue,
    /// Yellow (Mauritius stripe 3).
    Yellow,
    /// Green (Mauritius stripe 4, Jordan).
    Green,
    /// Painted white (France, Canada, Great Britain, Jordan).
    White,
    /// Black (Jordan).
    Black,
    /// Orange (spare palette color for custom flags).
    Orange,
    /// An arbitrary 24-bit color for custom flags.
    Rgb(u8, u8, u8),
}

impl Color {
    /// The four colors of the flag of Mauritius in stripe order
    /// (top to bottom): red, blue, yellow, green.
    pub const MAURITIUS: [Color; 4] = [Color::Red, Color::Blue, Color::Yellow, Color::Green];

    /// All named, paintable colors (excludes `Blank` and `Rgb`).
    pub const NAMED: [Color; 7] = [
        Color::Red,
        Color::Blue,
        Color::Yellow,
        Color::Green,
        Color::White,
        Color::Black,
        Color::Orange,
    ];

    /// Whether this color represents actual paint (anything except `Blank`).
    #[inline]
    pub fn is_painted(self) -> bool {
        self != Color::Blank
    }

    /// 24-bit sRGB value used by the renderers.
    pub fn rgb(self) -> (u8, u8, u8) {
        match self {
            Color::Blank => (0xF5, 0xF5, 0xF0),
            Color::Red => (0xEA, 0x26, 0x39),
            Color::Blue => (0x1A, 0x20, 0x6D),
            Color::Yellow => (0xFF, 0xD5, 0x00),
            Color::Green => (0x00, 0xA5, 0x51),
            Color::White => (0xFF, 0xFF, 0xFF),
            Color::Black => (0x14, 0x14, 0x14),
            Color::Orange => (0xF7, 0x7F, 0x00),
            Color::Rgb(r, g, b) => (r, g, b),
        }
    }

    /// One-character code used by the ASCII renderer and by compact golden
    /// tests: `.` blank, `R`ed, `B`lue, `Y`ellow, `G`reen, `W`hite,
    /// `K` black (as in CMYK), `O`range, `#` custom.
    pub fn code(self) -> char {
        match self {
            Color::Blank => '.',
            Color::Red => 'R',
            Color::Blue => 'B',
            Color::Yellow => 'Y',
            Color::Green => 'G',
            Color::White => 'W',
            Color::Black => 'K',
            Color::Orange => 'O',
            Color::Rgb(..) => '#',
        }
    }

    /// Inverse of [`Color::code`] for the named palette.
    ///
    /// Returns `None` for characters that do not name a palette color
    /// (including `#`, which is not invertible).
    pub fn from_code(c: char) -> Option<Color> {
        Some(match c {
            '.' => Color::Blank,
            'R' => Color::Red,
            'B' => Color::Blue,
            'Y' => Color::Yellow,
            'G' => Color::Green,
            'W' => Color::White,
            'K' => Color::Black,
            'O' => Color::Orange,
            _ => return None,
        })
    }

    /// Human-readable lowercase name (matches the paper's prose:
    /// "red, blue, yellow, and green").
    pub fn name(self) -> &'static str {
        match self {
            Color::Blank => "blank",
            Color::Red => "red",
            Color::Blue => "blue",
            Color::Yellow => "yellow",
            Color::Green => "green",
            Color::White => "white",
            Color::Black => "black",
            Color::Orange => "orange",
            Color::Rgb(..) => "custom",
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Color::Rgb(r, g, b) => write!(f, "rgb({r},{g},{b})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mauritius_palette_order_matches_paper() {
        // "four equally-sized stripes colored red, blue, yellow, and green"
        assert_eq!(
            Color::MAURITIUS,
            [Color::Red, Color::Blue, Color::Yellow, Color::Green]
        );
    }

    #[test]
    fn code_roundtrip_for_named_palette() {
        for c in Color::NAMED {
            assert_eq!(Color::from_code(c.code()), Some(c), "roundtrip for {c}");
        }
        assert_eq!(Color::from_code('.'), Some(Color::Blank));
    }

    #[test]
    fn from_code_rejects_unknown() {
        assert_eq!(Color::from_code('z'), None);
        assert_eq!(Color::from_code('#'), None);
    }

    #[test]
    fn blank_is_not_painted() {
        assert!(!Color::Blank.is_painted());
        for c in Color::NAMED {
            assert!(c.is_painted());
        }
        assert!(Color::Rgb(1, 2, 3).is_painted());
    }

    #[test]
    fn display_names() {
        assert_eq!(Color::Red.to_string(), "red");
        assert_eq!(Color::Rgb(1, 2, 3).to_string(), "rgb(1,2,3)");
    }

    #[test]
    fn rgb_variant_passes_through() {
        assert_eq!(Color::Rgb(9, 8, 7).rgb(), (9, 8, 7));
    }
}
