//! Ordered cell regions.
//!
//! A [`Region`] is the unit of work assignment in the activity: "P1 colors
//! the red and blue stripes" is a region, and the numbers printed on the
//! scenario slides give the order in which its cells should be filled.
//! Regions therefore preserve insertion order *and* support set queries.

use crate::CellId;
use std::collections::BTreeSet;

/// An ordered collection of distinct cells.
///
/// Iteration yields cells in the order they were added (the "execution
/// order" from the paper's Figure 1); membership tests and set algebra use
/// an internal sorted set. Duplicate inserts are ignored, keeping the first
/// position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Region {
    order: Vec<CellId>,
    members: BTreeSet<CellId>,
}

impl Region {
    /// An empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Build from an iterator of ids, de-duplicating while preserving the
    /// first occurrence order.
    pub fn from_ids<I: IntoIterator<Item = CellId>>(ids: I) -> Self {
        let mut r = Region::new();
        for id in ids {
            r.push(id);
        }
        r
    }

    /// Append a cell; returns `true` if it was newly added.
    pub fn push(&mut self, id: CellId) -> bool {
        if self.members.insert(id) {
            self.order.push(id);
            true
        } else {
            false
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: CellId) -> bool {
        self.members.contains(&id)
    }

    /// The cells in execution order.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.order
    }

    /// Iterate in execution order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = CellId> + '_ {
        self.order.iter().copied()
    }

    /// The `i`-th cell in execution order.
    pub fn get(&self, i: usize) -> Option<CellId> {
        self.order.get(i).copied()
    }

    /// Whether two regions share any cell.
    pub fn overlaps(&self, other: &Region) -> bool {
        // Iterate the smaller set for efficiency.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.members.iter().any(|id| large.members.contains(id))
    }

    /// Cells present in both regions, in `self`'s order.
    pub fn intersection(&self, other: &Region) -> Region {
        Region::from_ids(self.iter().filter(|id| other.contains(*id)))
    }

    /// Cells of `self` not in `other`, in `self`'s order.
    pub fn difference(&self, other: &Region) -> Region {
        Region::from_ids(self.iter().filter(|id| !other.contains(*id)))
    }

    /// All cells of `self` then the new cells of `other`.
    pub fn union(&self, other: &Region) -> Region {
        Region::from_ids(self.iter().chain(other.iter()))
    }

    /// Split the region into `n` contiguous chunks of near-equal size
    /// (sizes differ by at most one, larger chunks first) — the activity's
    /// way of dividing a stripe among students. Panics if `n == 0`.
    pub fn split_contiguous(&self, n: usize) -> Vec<Region> {
        assert!(n > 0, "cannot split into zero parts");
        let len = self.len();
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n);
        let mut idx = 0;
        for i in 0..n {
            let take = base + usize::from(i < extra);
            out.push(Region::from_ids(
                self.order[idx..idx + take].iter().copied(),
            ));
            idx += take;
        }
        out
    }

    /// Split round-robin ("cyclic" distribution): cell `i` goes to part
    /// `i mod n`. Panics if `n == 0`.
    pub fn split_cyclic(&self, n: usize) -> Vec<Region> {
        assert!(n > 0, "cannot split into zero parts");
        let mut out = vec![Region::new(); n];
        for (i, id) in self.iter().enumerate() {
            out[i % n].push(id);
        }
        out
    }
}

impl FromIterator<CellId> for Region {
    fn from_iter<T: IntoIterator<Item = CellId>>(iter: T) -> Self {
        Region::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = CellId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CellId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.order.iter().copied()
    }
}

/// Verify that `parts` is an exact partition of `whole`: every cell of
/// `whole` appears in exactly one part and no part contains foreign cells.
/// Returns a human-readable description of the first violation.
pub fn verify_partition(whole: &Region, parts: &[Region]) -> Result<(), String> {
    let mut seen = BTreeSet::new();
    for (i, part) in parts.iter().enumerate() {
        for id in part.iter() {
            if !whole.contains(id) {
                return Err(format!("part {i} contains foreign cell {id}"));
            }
            if !seen.insert(id) {
                return Err(format!("cell {id} assigned to more than one part"));
            }
        }
    }
    if let Some(missing) = whole.iter().find(|id| !seen.contains(id)) {
        return Err(format!("cell {missing} not covered by any part"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Region {
        Region::from_ids(v.iter().map(|&i| CellId(i)))
    }

    #[test]
    fn preserves_insertion_order_and_dedups() {
        let r = ids(&[5, 3, 5, 9, 3]);
        assert_eq!(r.cells(), &[CellId(5), CellId(3), CellId(9)]);
        assert_eq!(r.len(), 3);
        assert!(r.contains(CellId(9)));
        assert!(!r.contains(CellId(4)));
    }

    #[test]
    fn set_algebra() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[3, 4, 5]);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersection(&b), ids(&[3, 4]));
        assert_eq!(a.difference(&b), ids(&[1, 2]));
        assert_eq!(a.union(&b), ids(&[1, 2, 3, 4, 5]));
        let c = ids(&[7, 8]);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn split_contiguous_balances_sizes() {
        let r = ids(&[0, 1, 2, 3, 4, 5, 6]);
        let parts = r.split_contiguous(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(Region::len).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        verify_partition(&r, &parts).unwrap();
    }

    #[test]
    fn split_contiguous_more_parts_than_cells() {
        let r = ids(&[0, 1]);
        let parts = r.split_contiguous(4);
        assert_eq!(
            parts.iter().map(Region::len).collect::<Vec<_>>(),
            vec![1, 1, 0, 0]
        );
        verify_partition(&r, &parts).unwrap();
    }

    #[test]
    fn split_cyclic_interleaves() {
        let r = ids(&[10, 11, 12, 13, 14]);
        let parts = r.split_cyclic(2);
        assert_eq!(parts[0], ids(&[10, 12, 14]));
        assert_eq!(parts[1], ids(&[11, 13]));
        verify_partition(&r, &parts).unwrap();
    }

    #[test]
    fn verify_partition_detects_violations() {
        let whole = ids(&[0, 1, 2]);
        assert!(verify_partition(&whole, &[ids(&[0, 1])]).is_err()); // missing 2
        assert!(verify_partition(&whole, &[ids(&[0, 1]), ids(&[1, 2])]).is_err()); // dup 1
        assert!(verify_partition(&whole, &[ids(&[0, 1, 2, 3])]).is_err()); // foreign 3
        assert!(verify_partition(&whole, &[ids(&[0]), ids(&[2, 1])]).is_ok());
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_panics() {
        ids(&[1]).split_contiguous(0);
    }
}
