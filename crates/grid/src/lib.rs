//! # flagsim-grid
//!
//! Pixel-grid raster substrate for the flag-coloring activity simulator.
//!
//! The unplugged activity described in the paper has students fill in
//! "pixels" (cells of gridded paper) with colored drawing implements. This
//! crate provides the paper-and-grid part of that world:
//!
//! * [`Color`] — the activity's palette (the flag of Mauritius needs red,
//!   blue, yellow and green; other flags add white, black, orange, …) plus
//!   arbitrary RGB for rendering.
//! * [`Grid`] — a row-major raster of cells, the "gridded paper".
//! * [`CellId`] / [`Coord`] — stable cell addressing.
//! * [`Region`] — an *ordered* set of cells: the paper numbers cells to
//!   "efficiently convey the order in which they should be filled"
//!   (Section IV), so order is a first-class part of a region.
//! * [`FillStyle`] — how thoroughly a student covers a cell (Section IV's
//!   advice about scribble-fills versus complete coverage), which scales the
//!   per-cell work.
//! * [`render`] — ASCII / ANSI-truecolor / PPM renderers (no GUI; the
//!   calibration notes for this reproduction explicitly rule one out).
//! * [`partition`] — geometric helpers for splitting a grid among
//!   "processors" (rows, columns, blocks, contiguous spans, cyclic).
//!
//! Everything here is deterministic and allocation-conscious; the simulator
//! layers stochastic timing on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canvas;
pub mod cell;
pub mod color;
pub mod diff;
pub mod fill;
pub mod partition;
pub mod region;
pub mod render;

mod raster;

pub use cell::{CellId, Coord};
pub use color::Color;
pub use diff::{diff, GridDiff};
pub use fill::FillStyle;
pub use raster::Grid;
pub use region::Region;
