//! The CS1 "flag coloring" programming-assignment API.
//!
//! The unplugged activity is the paper's translation of an existing CS1
//! assignment (its reference \[9\]) in which "students practice loops by
//! drawing flags using a library that allows them to set pixel values".
//! This module *is* that library, sized for week-3 students: a canvas, a
//! `set_pixel`, and nothing they haven't met yet. The convenience helpers
//! (`fill_rect`, `h_stripe`, `v_stripe`) are the loops they write,
//! provided for graders and tests.
//!
//! ```
//! use flagsim_grid::canvas::FlagCanvas;
//! use flagsim_grid::Color;
//!
//! // The assignment: draw the flag of Mauritius with loops.
//! let mut canvas = FlagCanvas::new(12, 8);
//! let stripes = [Color::Red, Color::Blue, Color::Yellow, Color::Green];
//! for y in 0..canvas.height() {
//!     for x in 0..canvas.width() {
//!         canvas.set_pixel(x, y, stripes[(y / 2) as usize]);
//!     }
//! }
//! assert!(canvas.grid().is_complete());
//! ```

use crate::{Color, Coord, Grid};

/// A student-facing pixel canvas. Out-of-bounds writes are counted (not
/// panicked — week-3 students get a gentle report, not a crash) and
/// ignored.
#[derive(Debug, Clone)]
pub struct FlagCanvas {
    grid: Grid,
    out_of_bounds_writes: u64,
}

impl FlagCanvas {
    /// A blank canvas.
    pub fn new(width: u32, height: u32) -> Self {
        FlagCanvas {
            grid: Grid::new(width, height),
            out_of_bounds_writes: 0,
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> u32 {
        self.grid.width()
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> u32 {
        self.grid.height()
    }

    /// THE assignment primitive: set one pixel. Off-canvas coordinates
    /// are recorded and ignored.
    pub fn set_pixel(&mut self, x: u32, y: u32, color: Color) {
        if x < self.width() && y < self.height() && color.is_painted() {
            self.grid.paint_at(Coord::new(x, y), color);
        } else {
            self.out_of_bounds_writes += 1;
        }
    }

    /// How many writes missed the canvas (or tried to paint blank) — the
    /// graders' first diagnostic for off-by-one loop bounds.
    pub fn out_of_bounds_writes(&self) -> u64 {
        self.out_of_bounds_writes
    }

    /// Fill a rectangle `[x0, x1) × [y0, y1)` — the loop nest every
    /// solution contains, provided for reference solutions.
    pub fn fill_rect(&mut self, x0: u32, y0: u32, x1: u32, y1: u32, color: Color) {
        for y in y0..y1 {
            for x in x0..x1 {
                self.set_pixel(x, y, color);
            }
        }
    }

    /// Horizontal stripe `index` of `count` equal stripes.
    pub fn h_stripe(&mut self, index: u32, count: u32, color: Color) {
        assert!(count > 0 && index < count, "stripe {index} of {count}");
        let top = self.height() * index / count;
        let bottom = self.height() * (index + 1) / count;
        self.fill_rect(0, top, self.width(), bottom, color);
    }

    /// Vertical stripe `index` of `count` equal stripes.
    pub fn v_stripe(&mut self, index: u32, count: u32, color: Color) {
        assert!(count > 0 && index < count, "stripe {index} of {count}");
        let left = self.width() * index / count;
        let right = self.width() * (index + 1) / count;
        self.fill_rect(left, 0, right, self.height(), color);
    }

    /// The finished drawing.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Consume the canvas, returning the grid.
    pub fn into_grid(self) -> Grid {
        self.grid
    }

    /// Grade a submission against a reference raster: fraction of matching
    /// cells plus the out-of-bounds diagnostic.
    pub fn grade_against(&self, reference: &Grid) -> CanvasGrade {
        let diff = crate::diff(&self.grid, reference);
        CanvasGrade {
            similarity: diff.similarity(),
            mismatched_cells: diff.mismatches.len(),
            out_of_bounds_writes: self.out_of_bounds_writes,
        }
    }
}

/// The autograder's verdict on a canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanvasGrade {
    /// Fraction of cells matching the reference, in `[0, 1]`.
    pub similarity: f64,
    /// Cells that differ.
    pub mismatched_cells: usize,
    /// Writes that missed the canvas (loop-bounds bugs).
    pub out_of_bounds_writes: u64,
}

impl CanvasGrade {
    /// A pass: pixel-perfect and no stray writes.
    pub fn is_perfect(&self) -> bool {
        self.mismatched_cells == 0 && self.out_of_bounds_writes == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_pixel_and_bounds() {
        let mut c = FlagCanvas::new(4, 3);
        c.set_pixel(0, 0, Color::Red);
        c.set_pixel(3, 2, Color::Blue);
        c.set_pixel(4, 0, Color::Red); // off the right edge
        c.set_pixel(0, 3, Color::Red); // off the bottom
        c.set_pixel(1, 1, Color::Blank); // can't paint blank
        assert_eq!(c.grid().get_at(Coord::new(0, 0)), Color::Red);
        assert_eq!(c.grid().get_at(Coord::new(3, 2)), Color::Blue);
        assert_eq!(c.out_of_bounds_writes(), 3);
    }

    #[test]
    fn stripes_tile_the_canvas() {
        let mut c = FlagCanvas::new(12, 8);
        for (i, color) in Color::MAURITIUS.iter().enumerate() {
            c.h_stripe(i as u32, 4, *color);
        }
        assert!(c.grid().is_complete());
        assert_eq!(c.out_of_bounds_writes(), 0);
        assert_eq!(c.grid().cells_of_color(Color::Yellow).len(), 24);
    }

    #[test]
    #[should_panic(expected = "stripe 4 of 4")]
    fn stripe_index_checked() {
        let mut c = FlagCanvas::new(4, 4);
        c.h_stripe(4, 4, Color::Red);
    }

    #[test]
    fn grading_catches_mistakes() {
        // Reference: Poland (white over red).
        let mut reference = FlagCanvas::new(10, 6);
        reference.h_stripe(0, 2, Color::White);
        reference.h_stripe(1, 2, Color::Red);
        let reference = reference.into_grid();

        // A buggy submission: upside-down flag.
        let mut buggy = FlagCanvas::new(10, 6);
        buggy.h_stripe(0, 2, Color::Red);
        buggy.h_stripe(1, 2, Color::White);
        let grade = buggy.grade_against(&reference);
        assert!(!grade.is_perfect());
        assert_eq!(grade.mismatched_cells, 60);
        assert_eq!(grade.similarity, 0.0);

        // A correct submission.
        let mut good = FlagCanvas::new(10, 6);
        good.h_stripe(0, 2, Color::White);
        good.h_stripe(1, 2, Color::Red);
        assert!(good.grade_against(&reference).is_perfect());
    }

    #[test]
    fn off_by_one_loops_show_in_the_diagnostic() {
        let mut c = FlagCanvas::new(4, 4);
        // The classic `<=` bug.
        for y in 0..=c.height() {
            for x in 0..=c.width() {
                c.set_pixel(x, y, Color::Green);
            }
        }
        assert!(c.grid().is_complete());
        assert_eq!(c.out_of_bounds_writes(), 9); // the extra row + column
    }
}
