//! Property tests for the metrics crate: statistical identities that must
//! hold for arbitrary inputs.

use flagsim_metrics::inference::{mcnemar, normal_cdf, two_proportion_z};
use flagsim_metrics::{
    amdahl_speedup, efficiency, gustafson_speedup, karp_flatt, median, speedup, RunStats,
    StreamingStats, TransitionMatrix,
};
use proptest::prelude::*;

proptest! {
    /// Speedup/efficiency identities.
    #[test]
    fn speedup_identities(t1 in 0.001f64..1e6, tp in 0.001f64..1e6, p in 1usize..64) {
        let s = speedup(t1, tp);
        prop_assert!(s > 0.0);
        prop_assert!((efficiency(t1, tp, p) - s / p as f64).abs() < 1e-12);
        // Speedup of a run against itself is 1.
        prop_assert!((speedup(t1, t1) - 1.0).abs() < 1e-12);
    }

    /// Amdahl ≤ Gustafson, both within [1, p], monotone in p.
    #[test]
    fn amdahl_gustafson_bounds(serial in 0.0f64..=1.0, p in 1usize..128) {
        let a = amdahl_speedup(serial, p);
        let g = gustafson_speedup(serial, p);
        prop_assert!(a >= 1.0 - 1e-12 && a <= p as f64 + 1e-12);
        prop_assert!(g >= 1.0 - 1e-12 && g <= p as f64 + 1e-12);
        prop_assert!(g >= a - 1e-9, "gustafson {g} < amdahl {a}");
        if p > 1 {
            prop_assert!(amdahl_speedup(serial, p) >= amdahl_speedup(serial, p - 1) - 1e-12);
        }
    }

    /// Karp–Flatt inverts Amdahl for any serial fraction.
    #[test]
    fn karp_flatt_inverts_amdahl(serial in 0.0f64..=1.0, p in 2usize..64) {
        let s = amdahl_speedup(serial, p);
        prop_assert!((karp_flatt(s, p) - serial).abs() < 1e-9);
    }

    /// The Likert median lies between min and max and is order-invariant.
    #[test]
    fn median_properties(mut responses in proptest::collection::vec(1u8..=5, 1..60)) {
        let m = median(&responses).unwrap();
        let lo = *responses.iter().min().unwrap() as f64;
        let hi = *responses.iter().max().unwrap() as f64;
        prop_assert!(m >= lo && m <= hi);
        responses.reverse();
        prop_assert_eq!(median(&responses), Some(m));
    }

    /// RunStats invariants: min ≤ median ≤ max, mean within [min, max].
    #[test]
    fn runstats_invariants(xs in proptest::collection::vec(0.0f64..1e6, 1..80)) {
        let s = RunStats::from_sample(&xs);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.ci95_half_width() >= 0.0);
    }

    /// Streaming statistics match the batch `RunStats::from_sample` on
    /// arbitrary samples: n/min/max exactly, the mean bit-for-bit (both
    /// are a left fold divided by n), the stddev to 1e-9 relative
    /// (Welford vs two-pass round differently), and the median exactly
    /// while the P² estimator is still in its exact (n ≤ 5) regime —
    /// beyond that it is an estimate bounded by [min, max].
    #[test]
    fn streaming_matches_from_sample(xs in proptest::collection::vec(0.0f64..1e6, 1..80)) {
        let exact = RunStats::from_sample(&xs);
        let mut acc = StreamingStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let got = acc.to_stats();
        prop_assert_eq!(got.n, exact.n);
        prop_assert_eq!(got.mean.to_bits(), exact.mean.to_bits(), "mean not bit-identical");
        prop_assert_eq!(got.min, exact.min);
        prop_assert_eq!(got.max, exact.max);
        let tol = 1e-9 * exact.stddev.max(1.0);
        prop_assert!((got.stddev - exact.stddev).abs() <= tol,
                     "stddev {} vs {}", got.stddev, exact.stddev);
        if xs.len() <= 5 {
            prop_assert_eq!(got.median, exact.median);
        } else {
            prop_assert!(got.median >= exact.min && got.median <= exact.max);
        }
    }

    /// Snapshot → restore → continue pushing is indistinguishable from an
    /// uninterrupted push sequence: for an arbitrary sample and an
    /// arbitrary cut point, serializing the accumulator at the cut and
    /// resuming from the JSON yields bit-identical final statistics
    /// (mean, stddev, median, min, max, n) — the checkpoint/resume
    /// contract the sharded sweep relies on.
    #[test]
    fn snapshot_restore_continue_equals_uninterrupted(
        xs in proptest::collection::vec(0.0f64..1e6, 1..120),
        cut_frac in 0.0f64..=1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let cut = cut.min(xs.len());
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut first = StreamingStats::new();
        for &x in &xs[..cut] {
            first.push(x);
        }
        let snapshot = first.to_json();
        let mut resumed = StreamingStats::from_json(&snapshot)
            .expect("snapshot must round-trip");
        for &x in &xs[cut..] {
            resumed.push(x);
        }
        let (a, b) = (resumed.to_stats(), whole.to_stats());
        prop_assert_eq!(a.n, b.n);
        prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean diverged");
        prop_assert_eq!(a.stddev.to_bits(), b.stddev.to_bits(), "stddev diverged");
        prop_assert_eq!(a.median.to_bits(), b.median.to_bits(), "median diverged");
        prop_assert_eq!(a.min.to_bits(), b.min.to_bits());
        prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
        // And a second snapshot taken at the end agrees byte-for-byte.
        prop_assert_eq!(resumed.to_json(), whole.to_json());
    }

    /// Transition percentages always total 100 for nonempty cohorts, and
    /// net gain equals gained% − lost%.
    #[test]
    fn transition_identities(r in 0usize..100, g in 0usize..100,
                             l in 0usize..100, s in 0usize..100) {
        prop_assume!(r + g + l + s > 0);
        let m = TransitionMatrix::from_counts(r, g, l, s);
        let total = m.retained_pct() + m.gained_pct() + m.lost_pct() + m.stayed_incorrect_pct();
        prop_assert!((total - 100.0).abs() < 1e-9);
        prop_assert!((m.net_gain_pp() - (m.gained_pct() - m.lost_pct())).abs() < 1e-9);
    }

    /// McNemar: p in [0, 1], symmetric in gained/lost, and more discordant
    /// imbalance ⇒ smaller p.
    #[test]
    fn mcnemar_properties(r in 0usize..50, g in 0usize..80, l in 0usize..80, s in 0usize..50) {
        let m = TransitionMatrix::from_counts(r, g, l, s);
        let swapped = TransitionMatrix::from_counts(r, l, g, s);
        match (mcnemar(&m), mcnemar(&swapped)) {
            (Some(a), Some(b)) => {
                prop_assert!((0.0..=1.0).contains(&a.p_value));
                prop_assert!((a.p_value - b.p_value).abs() < 1e-12, "not symmetric");
            }
            (None, None) => prop_assert_eq!(g + l, 0),
            _ => prop_assert!(false, "symmetry of existence violated"),
        }
    }

    /// Normal CDF is monotone and symmetric around 0.5.
    #[test]
    fn normal_cdf_properties(z in -6.0f64..6.0) {
        let p = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((normal_cdf(-z) - (1.0 - p)).abs() < 1e-6);
        prop_assert!(normal_cdf(z + 0.1) >= p - 1e-9);
    }

    /// Two-proportion z: symmetric sign flip when swapping the samples.
    #[test]
    fn two_prop_symmetry(x1 in 0usize..50, n1 in 1usize..50,
                         x2 in 0usize..50, n2 in 1usize..50) {
        let x1 = x1.min(n1);
        let x2 = x2.min(n2);
        if let (Some(a), Some(b)) =
            (two_proportion_z(x1, n1, x2, n2), two_proportion_z(x2, n2, x1, n1))
        {
            prop_assert!((a.statistic + b.statistic).abs() < 1e-9);
            prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
        }
    }
}
