//! One-pass streaming statistics.
//!
//! The parallel sweep engine can run hundreds of thousands of
//! repetitions; retaining every [`RunStats`] input (let alone every run
//! report) would make memory the bottleneck instead of the CPU. A
//! [`StreamingStats`] accumulates a sample one observation at a time in
//! O(1) memory per metric: an exact running sum for the mean, Welford's
//! recurrence for the variance, exact min/max, and a P² (Jain &
//! Chlamtac 1985) marker estimate for the median.
//!
//! Exactness contract, relied on by the sweep determinism tests:
//!
//! * `n`, `min`, `max` are exact;
//! * `mean` is bit-for-bit identical to [`RunStats::from_sample`] (both
//!   are a left-to-right sum divided by `n`);
//! * `stddev` agrees with the two-pass computation to ~1e-9 relative
//!   (Welford is at least as accurate, but rounds differently);
//! * `median` is exact for samples of up to five observations and a P²
//!   estimate beyond that.

//!
//! Snapshots: [`StreamingStats::to_json`] serializes the *entire*
//! accumulator state (count, exact sum, Welford mean/M2, min/max, and
//! all five P² markers) with every float as its IEEE-754 bit pattern, so
//! [`StreamingStats::from_json`] restores it bit-for-bit. Snapshot →
//! restore → keep pushing is indistinguishable from never having
//! stopped — the property the sharded sweep's checkpoint/resume gate is
//! built on.

use crate::stats::RunStats;
use flagsim_telemetry::json::{self, f64_bits_hex, f64_from_bits_hex, Value};
use std::fmt::Write as _;

/// P² single-quantile estimator (five markers). Exact until five
/// observations have been seen, then O(1) per observation.
#[derive(Debug, Clone)]
struct P2Quantile {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Actual marker positions, 1-based.
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    incr: [f64; 5],
    /// Observations seen so far.
    count: usize,
}

impl P2Quantile {
    fn new(q: f64) -> Self {
        debug_assert!(q > 0.0 && q < 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            incr: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;
        // Find the cell k such that heights[k] <= x < heights[k+1], and
        // clamp x into the current extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // Offset within 1..5 equals the 0-based cell index k such
            // that heights[k] <= x < heights[k+1].
            (1..5).position(|i| x < self.heights[i]).unwrap_or(3)
        };
        for (i, d) in self.desired.iter_mut().enumerate() {
            *d += self.incr[i];
        }
        for i in (k + 1)..4 {
            self.pos[i] += 1.0;
        }
        self.pos[4] += 1.0;
        // Adjust the three interior markers toward their desired
        // positions with the parabolic formula, falling back to linear.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.heights[i]
                    + d / (self.pos[i + 1] - self.pos[i - 1])
                        * ((self.pos[i] - self.pos[i - 1] + d)
                            * (self.heights[i + 1] - self.heights[i])
                            / (self.pos[i + 1] - self.pos[i])
                            + (self.pos[i + 1] - self.pos[i] - d)
                                * (self.heights[i] - self.heights[i - 1])
                                / (self.pos[i] - self.pos[i - 1]));
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    // Linear adjustment toward the neighbor in direction d.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.heights[i] += d * (self.heights[j] - self.heights[i])
                        / (self.pos[j] - self.pos[i]);
                }
                self.pos[i] += d;
            }
        }
    }

    /// The current quantile estimate. Exact (sorted-sample definition,
    /// with midpoint averaging for the median of an even count) while
    /// fewer than six observations have been seen.
    fn estimate(&self) -> f64 {
        assert!(self.count > 0, "no observations");
        if self.count <= 5 {
            let mut sorted = self.heights[..self.count].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = sorted.len();
            // Matches RunStats::from_sample's median for q = 0.5.
            if (self.q - 0.5).abs() < f64::EPSILON {
                if n % 2 == 1 {
                    return sorted[n / 2];
                }
                return (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
            }
            let idx = ((n as f64 - 1.0) * self.q).round() as usize;
            return sorted[idx.min(n - 1)];
        }
        self.heights[2]
    }

    /// Serialize the full marker state into `out` as a JSON object.
    fn snapshot_into(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"q\":\"{}\",\"count\":{}", f64_bits_hex(self.q), self.count);
        for (key, arr) in [
            ("heights", &self.heights),
            ("pos", &self.pos),
            ("desired", &self.desired),
            ("incr", &self.incr),
        ] {
            let _ = write!(out, ",\"{key}\":[");
            for (i, x) in arr.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", f64_bits_hex(*x));
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Restore a marker state serialized by [`P2Quantile::snapshot_into`].
    fn from_snapshot(v: &Value) -> Result<Self, String> {
        let q = bits_field(v, "q")?;
        if !(q > 0.0 && q < 1.0) {
            return Err(format!("p2 snapshot: quantile {q} out of (0, 1)"));
        }
        let count = count_field(v, "count")?;
        Ok(P2Quantile {
            q,
            heights: bits_array5(v, "heights")?,
            pos: bits_array5(v, "pos")?,
            desired: bits_array5(v, "desired")?,
            incr: bits_array5(v, "incr")?,
            count: count as usize,
        })
    }
}

/// Read a hex-bits f64 field out of a snapshot object.
fn bits_field(v: &Value, key: &str) -> Result<f64, String> {
    let s = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("snapshot: missing string field {key:?}"))?;
    f64_from_bits_hex(s).map_err(|e| format!("snapshot field {key:?}: {e}"))
}

/// Read an exact non-negative integer count (stored as a JSON number;
/// exact up to 2^53, far beyond any real repetition count).
fn count_field(v: &Value, key: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("snapshot: missing numeric field {key:?}"))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15) {
        return Err(format!("snapshot field {key:?}: {n} is not an exact count"));
    }
    Ok(n as u64)
}

/// Read a fixed five-element array of hex-bits f64s.
fn bits_array5(v: &Value, key: &str) -> Result<[f64; 5], String> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("snapshot: missing array field {key:?}"))?;
    if arr.len() != 5 {
        return Err(format!("snapshot field {key:?}: want 5 elements, got {}", arr.len()));
    }
    let mut out = [0.0; 5];
    for (i, e) in arr.iter().enumerate() {
        let s = e
            .as_str()
            .ok_or_else(|| format!("snapshot field {key:?}[{i}]: not a string"))?;
        out[i] = f64_from_bits_hex(s).map_err(|e| format!("snapshot field {key:?}[{i}]: {e}"))?;
    }
    Ok(out)
}

/// One-pass accumulator producing the same summary as
/// [`RunStats::from_sample`] without retaining the sample.
#[derive(Debug, Clone)]
pub struct StreamingStats {
    n: u64,
    sum: f64,
    /// Welford running mean (kept separately from `sum / n` because the
    /// variance recurrence needs its own rounding sequence).
    w_mean: f64,
    /// Welford sum of squared deviations.
    m2: f64,
    min: f64,
    max: f64,
    median: P2Quantile,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            n: 0,
            sum: 0.0,
            w_mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            median: P2Quantile::new(0.5),
        }
    }

    /// Add one observation. Panics on non-finite values, like
    /// [`RunStats::from_sample`].
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sample contains non-finite values");
        self.n += 1;
        self.sum += x;
        let delta = x - self.w_mean;
        self.w_mean += delta / self.n as f64;
        self.m2 += delta * (x - self.w_mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.median.push(x);
    }

    /// Observations seen so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Running mean (bit-identical to the two-pass mean).
    pub fn mean(&self) -> f64 {
        assert!(self.n > 0, "no observations");
        self.sum / self.n as f64
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "no observations");
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "no observations");
        self.max
    }

    /// Median: exact for up to five observations, P² estimate beyond.
    pub fn median_estimate(&self) -> f64 {
        self.median.estimate()
    }

    /// Serialize the complete accumulator state as one JSON object.
    /// Every float is shipped as its IEEE-754 bit pattern
    /// ([`f64_bits_hex`]), so [`StreamingStats::from_json`] restores the
    /// accumulator *bit-for-bit*: continuing to push after a restore
    /// produces exactly the statistics an uninterrupted accumulator
    /// would (property-tested in `tests/prop_metrics.rs`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        let _ = write!(
            out,
            "\"n\":{},\"sum\":\"{}\",\"w_mean\":\"{}\",\"m2\":\"{}\",\"min\":\"{}\",\"max\":\"{}\",\"median\":",
            self.n,
            f64_bits_hex(self.sum),
            f64_bits_hex(self.w_mean),
            f64_bits_hex(self.m2),
            f64_bits_hex(self.min),
            f64_bits_hex(self.max),
        );
        self.median.snapshot_into(&mut out);
        out.push('}');
        out
    }

    /// Restore an accumulator serialized by [`StreamingStats::to_json`].
    /// The restored state is bit-identical: `n()`, `mean()`, `stddev()`,
    /// `min()`, `max()`, and `median_estimate()` all return exactly what
    /// the snapshotted accumulator returned, and further `push`es follow
    /// the identical rounding sequence.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("streaming snapshot: {e}"))?;
        Self::from_value(&v)
    }

    /// Restore from an already-parsed snapshot [`Value`] (checkpoint
    /// files embed several snapshots in one document).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let median = v
            .get("median")
            .ok_or("streaming snapshot: missing field \"median\"")?;
        Ok(StreamingStats {
            n: count_field(v, "n")?,
            sum: bits_field(v, "sum")?,
            w_mean: bits_field(v, "w_mean")?,
            m2: bits_field(v, "m2")?,
            min: bits_field(v, "min")?,
            max: bits_field(v, "max")?,
            median: P2Quantile::from_snapshot(median)?,
        })
    }

    /// Freeze into a [`RunStats`] summary. Panics if no observations
    /// were pushed, mirroring `from_sample`'s empty-sample panic.
    pub fn to_stats(&self) -> RunStats {
        assert!(self.n > 0, "empty sample");
        RunStats {
            n: self.n as usize,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min,
            max: self.max,
            median: self.median_estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize) -> Vec<f64> {
        // Deterministic full-period LCG; values spread over [0, 1e4).
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 * 1e4
            })
            .collect()
    }

    #[test]
    fn matches_from_sample_exactly_where_promised() {
        for n in [1, 2, 3, 4, 5, 6, 17, 100] {
            let xs = pseudo_random(n);
            let exact = RunStats::from_sample(&xs);
            let mut s = StreamingStats::new();
            for &x in &xs {
                s.push(x);
            }
            let got = s.to_stats();
            assert_eq!(got.n, exact.n);
            assert_eq!(got.mean.to_bits(), exact.mean.to_bits(), "n={n}");
            assert_eq!(got.min, exact.min);
            assert_eq!(got.max, exact.max);
            let tol = 1e-9 * exact.stddev.max(1.0);
            assert!((got.stddev - exact.stddev).abs() < tol, "n={n}");
            if n <= 5 {
                assert_eq!(got.median, exact.median, "small-n median is exact");
            }
        }
    }

    #[test]
    fn p2_median_close_on_large_uniform_sample() {
        let xs = pseudo_random(10_000);
        let exact = RunStats::from_sample(&xs);
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let est = s.median_estimate();
        // P² on a well-behaved distribution: within 1% of the range.
        let range = exact.max - exact.min;
        assert!(
            (est - exact.median).abs() < 0.01 * range,
            "estimate {est} vs exact {}",
            exact.median
        );
        assert!(est >= exact.min && est <= exact.max);
    }

    #[test]
    fn p2_exact_on_sorted_quintet() {
        let mut s = StreamingStats::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            s.push(x);
        }
        assert_eq!(s.median_estimate(), 3.0);
    }

    #[test]
    fn even_small_sample_median_matches_midpoint() {
        let mut s = StreamingStats::new();
        for x in [4.0, 1.0, 3.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.median_estimate(), 2.5);
    }

    #[test]
    fn variance_of_constant_sample_is_zero() {
        let mut s = StreamingStats::new();
        for _ in 0..1000 {
            s.push(7.5);
        }
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.median_estimate(), 7.5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        StreamingStats::new().push(f64::NAN);
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        for n in [0, 1, 3, 5, 6, 17, 1000] {
            let mut s = StreamingStats::new();
            for x in pseudo_random(n) {
                s.push(x);
            }
            let restored = StreamingStats::from_json(&s.to_json()).unwrap();
            assert_eq!(restored.n, s.n, "n={n}");
            assert_eq!(restored.sum.to_bits(), s.sum.to_bits());
            assert_eq!(restored.w_mean.to_bits(), s.w_mean.to_bits());
            assert_eq!(restored.m2.to_bits(), s.m2.to_bits());
            assert_eq!(restored.min.to_bits(), s.min.to_bits());
            assert_eq!(restored.max.to_bits(), s.max.to_bits());
            assert_eq!(restored.median.count, s.median.count);
            for i in 0..5 {
                assert_eq!(restored.median.heights[i].to_bits(), s.median.heights[i].to_bits());
                assert_eq!(restored.median.pos[i].to_bits(), s.median.pos[i].to_bits());
                assert_eq!(restored.median.desired[i].to_bits(), s.median.desired[i].to_bits());
                assert_eq!(restored.median.incr[i].to_bits(), s.median.incr[i].to_bits());
            }
        }
    }

    #[test]
    fn restore_then_continue_equals_uninterrupted() {
        // The checkpoint/resume contract in miniature: split the stream
        // at every prefix length and the final summary must be
        // bit-identical to never having stopped.
        let xs = pseudo_random(200);
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        for cut in [0, 1, 4, 5, 6, 99, 200] {
            let mut first = StreamingStats::new();
            for &x in &xs[..cut] {
                first.push(x);
            }
            let mut resumed = StreamingStats::from_json(&first.to_json()).unwrap();
            for &x in &xs[cut..] {
                resumed.push(x);
            }
            let (a, b) = (resumed.to_stats(), whole.to_stats());
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "cut={cut}");
            assert_eq!(a.stddev.to_bits(), b.stddev.to_bits(), "cut={cut}");
            assert_eq!(a.median.to_bits(), b.median.to_bits(), "cut={cut}");
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
            assert_eq!(a.n, b.n);
        }
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        assert!(StreamingStats::from_json("not json").is_err());
        assert!(StreamingStats::from_json("{}").is_err());
        // Truncated bits string.
        let mut s = StreamingStats::new();
        s.push(1.0);
        let good = s.to_json();
        let bad = good.replacen("\"sum\":\"", "\"sum\":\"zz", 1);
        assert!(StreamingStats::from_json(&bad).is_err());
        // Wrong marker-array arity.
        let bad = good.replacen("\"heights\":[", "\"heights\":[\"0000000000000000\",", 1);
        assert!(StreamingStats::from_json(&bad).is_err());
        // A count that is not an exact integer.
        let bad = good.replacen("\"n\":1", "\"n\":1.5", 1);
        assert!(StreamingStats::from_json(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_to_stats_panics() {
        let _ = StreamingStats::new().to_stats();
    }
}
