//! # flagsim-metrics
//!
//! The numbers behind the activity's lessons and its assessment:
//!
//! * [`perf`] — speedup, efficiency, Amdahl/Gustafson predictions, the
//!   Karp–Flatt experimentally-determined serial fraction, and load
//!   imbalance. These formalize the post-activity discussion ("trying to
//!   quantify this naturally leads into the concept of speedup and its
//!   calculation", §III-C).
//! * [`likert`] — 1–5 Likert-scale summaries with the half-point medians
//!   the paper reports (4.5s in Tables I–III), with NA support (Webster
//!   omitted some instructor questions).
//! * [`transition`] — pre/post quiz transition matrices (retained /
//!   gained / lost / stayed-incorrect), the exact quantities of Fig. 8.
//! * [`stats`] / [`streaming`] — mean ± stddev summaries of repeated
//!   runs, batch ([`RunStats::from_sample`]) or one observation at a
//!   time in O(1) memory ([`StreamingStats`], for huge parallel sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inference;
pub mod likert;
pub mod perf;
pub mod stats;
pub mod streaming;
pub mod transition;

pub use inference::{mcnemar, normal_cdf, two_proportion_z, TestResult};

pub use likert::{median, LikertSummary};
pub use perf::{
    amdahl_speedup, efficiency, fit_amdahl_serial_fraction, gustafson_speedup, karp_flatt,
    load_imbalance, speedup,
};
pub use stats::{clearly_different, RunStats};
pub use streaming::StreamingStats;
pub use transition::TransitionMatrix;
