//! Summary statistics for repeated measurements.
//!
//! The classroom posts one time per team per scenario; the harness runs
//! each configuration across many seeds and reports mean ± stddev, which
//! is the honest way to compare stochastic runs.

/// Summary of a sample of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Number of measurements.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (midpoint average for even n).
    pub median: f64,
}

impl RunStats {
    /// Summarize a non-empty sample.
    pub fn from_sample(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        RunStats {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Approximate 95% confidence half-width for the mean
    /// (1.96 σ / √n — fine for the n ≥ 30 the harness uses).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.n as f64).sqrt()
    }

    /// `"12.3 ± 0.4s"`-style display.
    pub fn display_secs(&self) -> String {
        format!("{:.1} ± {:.1}s", self.mean, self.ci95_half_width())
    }
}

/// Whether two samples' 95% confidence intervals are disjoint — a cheap
/// "this difference is real" check for the harness.
pub fn clearly_different(a: &RunStats, b: &RunStats) -> bool {
    let (lo_a, hi_a) = (a.mean - a.ci95_half_width(), a.mean + a.ci95_half_width());
    let (lo_b, hi_b) = (b.mean - b.ci95_half_width(), b.mean + b.ci95_half_width());
    hi_a < lo_b || hi_b < lo_a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = RunStats::from_sample(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487).abs() < 1e-9);
    }

    #[test]
    fn single_value() {
        let s = RunStats::from_sample(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn odd_median() {
        let s = RunStats::from_sample(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn clearly_different_detects_separation() {
        let tight_low = RunStats::from_sample(&vec![10.0; 50]);
        let tight_high = RunStats::from_sample(&vec![20.0; 50]);
        assert!(clearly_different(&tight_low, &tight_high));
        let noisy = RunStats::from_sample(&[5.0, 15.0, 10.0, 8.0, 12.0]);
        assert!(!clearly_different(&noisy, &RunStats::from_sample(&[9.0, 11.0, 10.0])));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        let _ = RunStats::from_sample(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = RunStats::from_sample(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_format() {
        let s = RunStats::from_sample(&[10.0, 10.0, 10.0]);
        assert_eq!(s.display_secs(), "10.0 ± 0.0s");
        assert_eq!(s.cv(), 0.0);
    }
}
