//! Pre/post quiz transition analysis.
//!
//! Fig. 8 reports, per concept per institution, the four fractions of a
//! paired pre/post outcome: students who **retained** a correct answer,
//! **gained** correctness (wrong → right — "learning"), **lost** it
//! (right → wrong — "knowledge loss"), and **stayed incorrect**
//! ("incorrect retention"). A [`TransitionMatrix`] holds the counts and
//! derives the percentages the paper prints.

/// Paired pre/post outcomes for one question over one cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionMatrix {
    /// Correct before and after.
    pub retained: usize,
    /// Incorrect before, correct after.
    pub gained: usize,
    /// Correct before, incorrect after.
    pub lost: usize,
    /// Incorrect before and after.
    pub stayed_incorrect: usize,
}

impl TransitionMatrix {
    /// Tally from paired response correctness.
    pub fn from_pairs(pairs: &[(bool, bool)]) -> Self {
        let mut m = TransitionMatrix::default();
        for &(pre, post) in pairs {
            match (pre, post) {
                (true, true) => m.retained += 1,
                (false, true) => m.gained += 1,
                (true, false) => m.lost += 1,
                (false, false) => m.stayed_incorrect += 1,
            }
        }
        m
    }

    /// Build directly from counts.
    pub fn from_counts(retained: usize, gained: usize, lost: usize, stayed_incorrect: usize) -> Self {
        TransitionMatrix {
            retained,
            gained,
            lost,
            stayed_incorrect,
        }
    }

    /// Cohort size.
    pub fn total(&self) -> usize {
        self.retained + self.gained + self.lost + self.stayed_incorrect
    }

    fn pct(&self, count: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total() as f64
        }
    }

    /// Percent retained-correct (Fig. 8's "retained correct answers").
    pub fn retained_pct(&self) -> f64 {
        self.pct(self.retained)
    }

    /// Percent gained (Fig. 8's "growth"/"learning gains").
    pub fn gained_pct(&self) -> f64 {
        self.pct(self.gained)
    }

    /// Percent lost (Fig. 8's "knowledge loss"/"reduction").
    pub fn lost_pct(&self) -> f64 {
        self.pct(self.lost)
    }

    /// Percent stayed-incorrect (Fig. 8's "incorrect retention").
    pub fn stayed_incorrect_pct(&self) -> f64 {
        self.pct(self.stayed_incorrect)
    }

    /// Fraction correct on the pre-quiz.
    pub fn pre_correct_pct(&self) -> f64 {
        self.pct(self.retained + self.lost)
    }

    /// Fraction correct on the post-quiz.
    pub fn post_correct_pct(&self) -> f64 {
        self.pct(self.retained + self.gained)
    }

    /// Net learning: post-correct minus pre-correct, in percentage points.
    pub fn net_gain_pp(&self) -> f64 {
        self.post_correct_pct() - self.pre_correct_pct()
    }

    /// Normalized learning gain (Hake gain): fraction of the students who
    /// *could* improve who did. `None` when everyone was already correct.
    pub fn normalized_gain(&self) -> Option<f64> {
        let could_improve = self.gained + self.stayed_incorrect;
        (could_improve > 0).then(|| self.gained as f64 / could_improve as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_pairs() {
        let m = TransitionMatrix::from_pairs(&[
            (true, true),
            (true, true),
            (false, true),
            (true, false),
            (false, false),
        ]);
        assert_eq!(m.retained, 2);
        assert_eq!(m.gained, 1);
        assert_eq!(m.lost, 1);
        assert_eq!(m.stayed_incorrect, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn percentages_sum_to_100() {
        let m = TransitionMatrix::from_counts(10, 5, 3, 8);
        let sum = m.retained_pct() + m.gained_pct() + m.lost_pct() + m.stayed_incorrect_pct();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pre_post_and_net() {
        // USI contention row of Fig. 8: 46.2% pre-correct, 38.5% gained.
        // With n = 13: retained 6, gained 5, lost 0, stayed 2 → 46.2/38.5.
        let m = TransitionMatrix::from_counts(6, 5, 0, 2);
        assert!((m.pre_correct_pct() - 46.2).abs() < 0.1);
        assert!((m.gained_pct() - 38.5).abs() < 0.1);
        assert!((m.post_correct_pct() - 84.6).abs() < 0.1);
        assert!((m.net_gain_pp() - 38.5).abs() < 0.1);
    }

    #[test]
    fn normalized_gain() {
        let m = TransitionMatrix::from_counts(5, 3, 0, 2);
        assert!((m.normalized_gain().unwrap() - 0.6).abs() < 1e-12);
        // Everyone already correct → undefined.
        let full = TransitionMatrix::from_counts(10, 0, 0, 0);
        assert_eq!(full.normalized_gain(), None);
    }

    #[test]
    fn empty_cohort_is_zeroes() {
        let m = TransitionMatrix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.retained_pct(), 0.0);
        assert_eq!(m.net_gain_pp(), 0.0);
    }
}
