//! Statistical inference for pre/post designs.
//!
//! The paper's §VI promises "a more in-depth statistical analysis" as
//! future work; this module supplies the standard tools for its data
//! shape. For *paired* pre/post correctness the right test is
//! **McNemar's**: it looks only at the discordant pairs (students who
//! changed answer), exactly the `gained`/`lost` cells of a
//! [`TransitionMatrix`]. A two-proportion z-test
//! is included for unpaired comparisons (e.g. between institutions).
//! Normal CDF via the Abramowitz–Stegun erf approximation — accurate to
//! ~1.5e-7, far tighter than any classroom n warrants.

use crate::transition::TransitionMatrix;

/// The error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Result of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TestResult {
    /// Significant at the given alpha?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// McNemar's test (with the standard continuity correction) on a paired
/// pre/post transition matrix: did the proportion answering correctly
/// *change*? Returns `None` when there are no discordant pairs (no one
/// changed their answer — nothing to test).
pub fn mcnemar(m: &TransitionMatrix) -> Option<TestResult> {
    let b = m.gained as f64; // wrong → right
    let c = m.lost as f64; // right → wrong
    if b + c == 0.0 {
        return None;
    }
    let chi2 = ((b - c).abs() - 1.0).max(0.0).powi(2) / (b + c);
    // Chi-square with 1 dof: p = 2·(1 − Φ(√χ²)).
    let p = 2.0 * (1.0 - normal_cdf(chi2.sqrt()));
    Some(TestResult {
        statistic: chi2,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Two-proportion z-test (pooled): `x1/n1` vs `x2/n2`, two-sided.
/// Returns `None` on empty samples or degenerate pooled proportions.
pub fn two_proportion_z(x1: usize, n1: usize, x2: usize, n2: usize) -> Option<TestResult> {
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let (p1, p2) = (x1 as f64 / n1 as f64, x2 as f64 / n2 as f64);
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    if se == 0.0 {
        return None;
    }
    let z = (p1 - p2) / se;
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn mcnemar_detects_real_change() {
        // 20 gained, 2 lost out of 60: a clear improvement.
        let m = TransitionMatrix::from_counts(30, 20, 2, 8);
        let r = mcnemar(&m).unwrap();
        assert!(r.significant(0.01), "p = {}", r.p_value);
        // χ² with continuity correction: (|20−2|−1)²/22 = 289/22 ≈ 13.1.
        assert!((r.statistic - 289.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn mcnemar_null_when_balanced() {
        // 10 gained, 10 lost: no net change.
        let m = TransitionMatrix::from_counts(30, 10, 10, 10);
        let r = mcnemar(&m).unwrap();
        assert!(!r.significant(0.05), "p = {}", r.p_value);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn mcnemar_none_without_discordant_pairs() {
        let m = TransitionMatrix::from_counts(30, 0, 0, 10);
        assert!(mcnemar(&m).is_none());
    }

    #[test]
    fn small_samples_are_not_significant() {
        // HPU-sized cohorts (n = 6) can't reach significance with 1 gain.
        let m = TransitionMatrix::from_counts(5, 1, 0, 0);
        let r = mcnemar(&m).unwrap();
        assert!(!r.significant(0.05));
    }

    #[test]
    fn two_proportion_z_works() {
        // 80/100 vs 50/100: obviously different.
        let r = two_proportion_z(80, 100, 50, 100).unwrap();
        assert!(r.significant(0.01));
        assert!(r.statistic > 4.0);
        // Equal proportions: z = 0.
        let same = two_proportion_z(50, 100, 50, 100).unwrap();
        assert!(same.statistic.abs() < 1e-12);
        assert!((same.p_value - 1.0).abs() < 1e-8);
        // Degenerate cases.
        assert!(two_proportion_z(0, 0, 1, 2).is_none());
        assert!(two_proportion_z(0, 10, 0, 10).is_none());
        assert!(two_proportion_z(10, 10, 10, 10).is_none());
    }
}
