//! Likert-scale statistics.
//!
//! The engagement survey uses "a Likert scale ranging from 1 (Strongly
//! Disagree) to 5 (Strongly Agree)" and the paper reports *medians* per
//! question per institution, including half-point values (4.5) that arise
//! from even-sized samples. Responses may be missing (Webster's NA rows in
//! Table III), so summaries operate on whatever responses exist.

/// The median of Likert responses, averaging the two middle values for
/// even counts (which is how the paper's 4.5s arise). Returns `None` for
/// an empty slice (an NA cell in the tables).
pub fn median(responses: &[u8]) -> Option<f64> {
    if responses.is_empty() {
        return None;
    }
    debug_assert!(
        responses.iter().all(|&r| (1..=5).contains(&r)),
        "Likert responses must be 1..=5"
    );
    let mut sorted = responses.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    Some(if n % 2 == 1 {
        f64::from(sorted[n / 2])
    } else {
        f64::from(sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Summary statistics for one question's responses.
#[derive(Debug, Clone, PartialEq)]
pub struct LikertSummary {
    /// Number of responses.
    pub n: usize,
    /// Median (None if no responses).
    pub median: Option<f64>,
    /// Mean (None if no responses).
    pub mean: Option<f64>,
    /// Histogram of counts for scores 1..=5.
    pub histogram: [usize; 5],
    /// Fraction of responses ≥ 4 ("agree or strongly agree").
    pub agreement: Option<f64>,
}

impl LikertSummary {
    /// Summarize a slice of responses (values outside 1..=5 are rejected).
    pub fn from_responses(responses: &[u8]) -> Self {
        let mut histogram = [0usize; 5];
        for &r in responses {
            assert!((1..=5).contains(&r), "Likert response out of range: {r}");
            histogram[(r - 1) as usize] += 1;
        }
        let n = responses.len();
        let mean = (n > 0).then(|| responses.iter().map(|&r| f64::from(r)).sum::<f64>() / n as f64);
        let agreement = (n > 0).then(|| {
            responses.iter().filter(|&&r| r >= 4).count() as f64 / n as f64
        });
        LikertSummary {
            n,
            median: median(responses),
            mean,
            histogram,
            agreement,
        }
    }

    /// Format the median the way the tables do: one decimal, or "NA".
    pub fn median_display(&self) -> String {
        match self.median {
            Some(m) => format!("{m:.1}"),
            None => "NA".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_count_median() {
        assert_eq!(median(&[5, 3, 4]), Some(4.0));
        assert_eq!(median(&[1]), Some(1.0));
    }

    #[test]
    fn even_count_half_point_median() {
        // This is how Table I's 4.5s happen.
        assert_eq!(median(&[4, 5]), Some(4.5));
        assert_eq!(median(&[3, 4, 5, 5]), Some(4.5));
        assert_eq!(median(&[4, 4, 5, 5]), Some(4.5));
    }

    #[test]
    fn empty_is_na() {
        assert_eq!(median(&[]), None);
        let s = LikertSummary::from_responses(&[]);
        assert_eq!(s.median_display(), "NA");
        assert_eq!(s.mean, None);
        assert_eq!(s.agreement, None);
    }

    #[test]
    fn summary_statistics() {
        let s = LikertSummary::from_responses(&[5, 5, 4, 3, 5]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, Some(5.0));
        assert_eq!(s.histogram, [0, 0, 1, 1, 3]);
        assert!((s.mean.unwrap() - 4.4).abs() < 1e-12);
        assert!((s.agreement.unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(s.median_display(), "5.0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = LikertSummary::from_responses(&[6]);
    }
}
