//! Parallel performance metrics.
//!
//! The quiz's own definition (Fig. 7, Q2): "Speedup is defined as the
//! ratio of the time taken to solve a problem on a single processor to the
//! time taken on a parallel system" — true. Everything else here follows
//! from that ratio.

/// Speedup `S(p) = T₁ / Tₚ`. Panics on non-positive times.
pub fn speedup(t1_secs: f64, tp_secs: f64) -> f64 {
    assert!(
        t1_secs > 0.0 && tp_secs > 0.0,
        "times must be positive: t1={t1_secs}, tp={tp_secs}"
    );
    t1_secs / tp_secs
}

/// Parallel efficiency `E(p) = S(p) / p` — 1.0 is linear speedup, the
/// "what *should* the speedup be" answer the instructor leads students to.
pub fn efficiency(t1_secs: f64, tp_secs: f64, p: usize) -> f64 {
    assert!(p > 0, "need at least one processor");
    speedup(t1_secs, tp_secs) / p as f64
}

/// Amdahl's law: predicted speedup on `p` processors when a fraction
/// `serial` of the work cannot be parallelized.
pub fn amdahl_speedup(serial: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction in [0,1]");
    assert!(p > 0);
    1.0 / (serial + (1.0 - serial) / p as f64)
}

/// Gustafson's law: scaled speedup when the parallel part grows with `p`.
pub fn gustafson_speedup(serial: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction in [0,1]");
    assert!(p > 0);
    p as f64 - serial * (p as f64 - 1.0)
}

/// Karp–Flatt metric: the experimentally determined serial fraction
/// implied by a measured speedup on `p > 1` processors. Rising values with
/// `p` indicate overheads like contention — exactly what scenario 4 adds.
pub fn karp_flatt(measured_speedup: f64, p: usize) -> f64 {
    assert!(p > 1, "Karp–Flatt needs p > 1");
    assert!(measured_speedup > 0.0);
    let p = p as f64;
    (1.0 / measured_speedup - 1.0 / p) / (1.0 - 1.0 / p)
}

/// Fit Amdahl's law to measured `(p, speedup)` points: the plain mean of
/// the Karp–Flatt serial-fraction estimates of each usable point (p > 1),
/// clamped to `[0, 1]` — not a least-squares fit, every point counts
/// equally regardless of `p`.
/// Returns `None` if no usable points exist. This is how the harness
/// turns a team-size sweep into "the activity behaves like a program
/// that is X% serial".
pub fn fit_amdahl_serial_fraction(points: &[(usize, f64)]) -> Option<f64> {
    let estimates: Vec<f64> = points
        .iter()
        .filter(|&&(p, s)| p > 1 && s > 0.0)
        .map(|&(p, s)| karp_flatt(s, p))
        .collect();
    if estimates.is_empty() {
        return None;
    }
    Some((estimates.iter().sum::<f64>() / estimates.len() as f64).clamp(0.0, 1.0))
}

/// Load imbalance of per-worker busy times: `max/mean − 1`. Zero means
/// perfect balance (the French flag's three equal stripes); large values
/// mean someone got the maple leaf.
pub fn load_imbalance(busy_secs: &[f64]) -> f64 {
    assert!(!busy_secs.is_empty(), "no workers");
    let max = busy_secs.iter().copied().fold(f64::MIN, f64::max);
    let mean = busy_secs.iter().sum::<f64>() / busy_secs.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    max / mean - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency() {
        assert_eq!(speedup(100.0, 50.0), 2.0);
        assert_eq!(efficiency(100.0, 50.0, 2), 1.0);
        assert!((efficiency(100.0, 30.0, 4) - 100.0 / 30.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        let _ = speedup(0.0, 1.0);
    }

    #[test]
    fn amdahl_limits() {
        // No serial part: linear.
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
        // All serial: no speedup.
        assert_eq!(amdahl_speedup(1.0, 8), 1.0);
        // 10% serial caps speedup below 10.
        let s = amdahl_speedup(0.1, 1024);
        assert!(s < 10.0 && s > 9.0, "{s}");
        // Monotone in p.
        assert!(amdahl_speedup(0.2, 4) > amdahl_speedup(0.2, 2));
    }

    #[test]
    fn gustafson_grows_linearly() {
        assert_eq!(gustafson_speedup(0.0, 8), 8.0);
        assert_eq!(gustafson_speedup(1.0, 8), 1.0);
        let g = gustafson_speedup(0.1, 8);
        assert!((g - (8.0 - 0.1 * 7.0)).abs() < 1e-12);
        // Gustafson ≥ Amdahl for same serial fraction and p.
        assert!(g > amdahl_speedup(0.1, 8));
    }

    #[test]
    fn karp_flatt_recovers_serial_fraction() {
        // If the measured speedup *is* Amdahl's prediction, Karp–Flatt
        // returns the serial fraction.
        for serial in [0.05, 0.2, 0.5] {
            for p in [2, 4, 8] {
                let s = amdahl_speedup(serial, p);
                let e = karp_flatt(s, p);
                assert!((e - serial).abs() < 1e-12, "serial {serial}, p {p}");
            }
        }
    }

    #[test]
    fn karp_flatt_zero_for_linear() {
        assert!(karp_flatt(4.0, 4).abs() < 1e-12);
    }

    #[test]
    fn amdahl_fit_recovers_known_fraction() {
        for serial in [0.1, 0.3, 0.6] {
            let points: Vec<(usize, f64)> = [2usize, 4, 8]
                .iter()
                .map(|&p| (p, amdahl_speedup(serial, p)))
                .collect();
            let fit = fit_amdahl_serial_fraction(&points).unwrap();
            assert!((fit - serial).abs() < 1e-9, "serial {serial} fit {fit}");
        }
    }

    #[test]
    fn amdahl_fit_edge_cases() {
        assert_eq!(fit_amdahl_serial_fraction(&[]), None);
        assert_eq!(fit_amdahl_serial_fraction(&[(1, 1.0)]), None);
        // Perfectly linear speedups fit to zero serial fraction.
        let linear: Vec<(usize, f64)> = vec![(2, 2.0), (4, 4.0)];
        assert!(fit_amdahl_serial_fraction(&linear).unwrap().abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_cases() {
        assert_eq!(load_imbalance(&[10.0, 10.0, 10.0]), 0.0);
        // One worker with double load: max 20, mean 13.33 → 0.5.
        let li = load_imbalance(&[10.0, 10.0, 20.0]);
        assert!((li - 0.5).abs() < 1e-12);
        assert_eq!(load_imbalance(&[0.0, 0.0]), 0.0);
    }
}
