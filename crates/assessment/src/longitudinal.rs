//! The paper's future work, §VI: "with continued implementation and
//! additional data collection, we plan to conduct a more in-depth
//! statistical analysis to identify trends".
//!
//! This module runs that plan on synthetic data: simulate several course
//! offerings (semesters), pool the per-concept pre/post transitions, and
//! apply the proper paired test (McNemar) — showing exactly which
//! conclusions the published single-offering data can and cannot support,
//! and how many offerings it takes for the contention/pipelining gains to
//! clear significance.

use crate::institution::Institution;
use crate::quiz::{self, Concept};
use flagsim_metrics::inference::{mcnemar, TestResult};
use flagsim_metrics::TransitionMatrix;

/// One pooled concept analysis.
#[derive(Debug, Clone)]
pub struct ConceptTrend {
    /// The concept.
    pub concept: Concept,
    /// Pooled transitions over all offerings.
    pub pooled: TransitionMatrix,
    /// McNemar's test on the pooled data (None = no discordant pairs).
    pub test: Option<TestResult>,
    /// Net gain in percentage points.
    pub net_gain_pp: f64,
}

/// Pool `offerings` simulated semesters of the Fig. 8 quiz (each semester
/// regenerates every institution's cohort with a fresh seed) and test
/// each concept's gain.
pub fn pooled_analysis(offerings: usize, seed: u64) -> Vec<ConceptTrend> {
    assert!(offerings > 0, "need at least one offering");
    let institutions = [Institution::USI, Institution::TNTech, Institution::HPU];
    Concept::ALL
        .iter()
        .map(|&concept| {
            let mut pooled = TransitionMatrix::default();
            for semester in 0..offerings {
                for inst in institutions {
                    let records =
                        quiz::generate_quiz_cohort(inst, seed ^ (semester as u64) << 32);
                    let m = quiz::measure_transitions(&records, concept);
                    pooled = TransitionMatrix::from_counts(
                        pooled.retained + m.retained,
                        pooled.gained + m.gained,
                        pooled.lost + m.lost,
                        pooled.stayed_incorrect + m.stayed_incorrect,
                    );
                }
            }
            ConceptTrend {
                concept,
                test: mcnemar(&pooled),
                net_gain_pp: pooled.net_gain_pp(),
                pooled,
            }
        })
        .collect()
}

/// Render the future-work analysis.
pub fn render_analysis(trends: &[ConceptTrend], alpha: f64) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{:<20}{:>7}{:>9}{:>9}{:>12}{:>12}{:>14}\n",
        "concept", "n", "gained", "lost", "net gain", "McNemar p", "significant?"
    );
    for t in trends {
        let (p, sig) = match t.test {
            Some(r) => (
                format!("{:.4}", r.p_value),
                if r.significant(alpha) { "YES" } else { "no" },
            ),
            None => ("—".to_owned(), "no"),
        };
        let _ = writeln!(
            out,
            "{:<20}{:>7}{:>9}{:>9}{:>11.1}pp{:>12}{:>14}",
            t.concept.name(),
            t.pooled.total(),
            t.pooled.gained,
            t.pooled.lost,
            t.net_gain_pp,
            p,
            sig,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_offering_matches_fig8_pools() {
        let trends = pooled_analysis(1, 7);
        assert_eq!(trends.len(), 5);
        // Pool size = 13 + 172 + 6 per concept.
        for t in &trends {
            assert_eq!(t.pooled.total(), 191, "{:?}", t.concept);
        }
    }

    #[test]
    fn contention_gain_is_significant_even_in_one_offering() {
        // Fig. 8's contention row: 49 gained vs 16 lost across the three
        // institutions — McNemar clears 0.05 easily.
        let trends = pooled_analysis(1, 7);
        let contention = trends
            .iter()
            .find(|t| t.concept == Concept::Contention)
            .unwrap();
        assert!(contention.test.unwrap().significant(0.05));
        assert!(contention.net_gain_pp > 10.0);
    }

    #[test]
    fn task_decomposition_shows_no_significant_gain() {
        // The paper: "Minimal improvement in learning" — gained 8 vs lost
        // 14; no significant *gain* (if anything, slight loss).
        let trends = pooled_analysis(1, 7);
        let td = trends
            .iter()
            .find(|t| t.concept == Concept::TaskDecomposition)
            .unwrap();
        assert!(td.net_gain_pp < 5.0);
        // A negative-direction result must not read as a learning gain.
        if let Some(r) = td.test {
            assert!(!r.significant(0.001) || td.net_gain_pp < 0.0);
        }
    }

    #[test]
    fn pooling_more_offerings_shrinks_p_values() {
        let one = pooled_analysis(1, 7);
        let five = pooled_analysis(5, 7);
        let p = |trends: &[ConceptTrend], c: Concept| {
            trends
                .iter()
                .find(|t| t.concept == c)
                .unwrap()
                .test
                .map(|r| r.p_value)
                .unwrap_or(1.0)
        };
        // Pipelining gains: real but modest; pooling makes them decisive.
        assert!(p(&five, Concept::Pipelining) <= p(&one, Concept::Pipelining));
        assert!(p(&five, Concept::Pipelining) < 0.001);
    }

    #[test]
    fn render_mentions_every_concept() {
        let text = render_analysis(&pooled_analysis(2, 1), 0.05);
        for c in Concept::ALL {
            assert!(text.contains(c.name()));
        }
        assert!(text.contains("McNemar"));
    }
}
