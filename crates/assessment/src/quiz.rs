//! The Fig. 7 pre/post quiz and the Fig. 8 transition targets.
//!
//! Five concepts, one question each. Fig. 8 reports transition
//! percentages for USI (n = 13), TNTech (n = 172) and HPU (n = 6) — every
//! published percentage is an integer count over those totals, which is
//! how the cohort sizes were inferred. Cells the paper leaves unstated are
//! filled with the unique (or most conservative) consistent residual and
//! marked as such.

use crate::institution::Institution;
use flagsim_metrics::TransitionMatrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The five PDC concepts the quiz probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Concept {
    /// Q1: breaking a large task into smaller concurrent tasks.
    TaskDecomposition,
    /// Q2: T₁ / Tₚ (true/false).
    Speedup,
    /// Q3: competition between processors for shared resources.
    Contention,
    /// Q4: performance growing with added processors (true/false).
    Scalability,
    /// Q5: overlapping instruction execution.
    Pipelining,
}

impl Concept {
    /// All five, in quiz order.
    pub const ALL: [Concept; 5] = [
        Concept::TaskDecomposition,
        Concept::Speedup,
        Concept::Contention,
        Concept::Scalability,
        Concept::Pipelining,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Concept::TaskDecomposition => "Task Decomposition",
            Concept::Speedup => "Speedup",
            Concept::Contention => "Contention",
            Concept::Scalability => "Scalability",
            Concept::Pipelining => "Pipelining",
        }
    }

    /// The question text (abridged from Fig. 7).
    pub fn question(self) -> &'static str {
        match self {
            Concept::TaskDecomposition => {
                "Which of the following best describes task decomposition?"
            }
            Concept::Speedup => {
                "Speedup is defined as the ratio of the time taken to solve a problem on a \
                 single processor to the time taken on a parallel system. (T/F)"
            }
            Concept::Contention => "What is contention in parallel computing?",
            Concept::Scalability => {
                "Scalability refers to the ability of a parallel system to increase its \
                 performance proportionally with the addition of more processors. (T/F)"
            }
            Concept::Pipelining => "What is pipelining in the context of parallel computing?",
        }
    }

    /// The answer choices, in presentation order (true/false questions
    /// have two).
    pub fn choices(self) -> &'static [&'static str] {
        match self {
            Concept::TaskDecomposition => &[
                "The process of breaking down a large task into smaller, independent \
                 tasks that can be executed concurrently.",
                "The method of organizing tasks in a sequential manner.",
                "The technique of reducing the number of tasks to improve performance.",
                "The strategy of assigning tasks to a single processor.",
            ],
            Concept::Speedup => &["True", "False"],
            Concept::Contention => &[
                "The process of dividing a task into smaller subtasks.",
                "The competition between multiple processors for shared resources.",
                "The increase in computational speed by adding more processors.",
                "The ability of a system to handle a growing amount of work.",
            ],
            Concept::Scalability => &["True", "False"],
            Concept::Pipelining => &[
                "The process of executing multiple tasks simultaneously.",
                "The technique of overlapping the execution of multiple instructions \
                 to improve performance.",
                "The method of dividing a task into smaller subtasks.",
                "The strategy of reducing contention among processors.",
            ],
        }
    }

    /// Index of the correct choice in [`Concept::choices`].
    pub fn correct_index(self) -> usize {
        match self {
            Concept::TaskDecomposition => 0,
            Concept::Speedup => 0,
            Concept::Contention => 1,
            Concept::Scalability => 0,
            Concept::Pipelining => 1,
        }
    }

    /// The correct answer, as the quiz keys it.
    pub fn correct_answer(self) -> &'static str {
        match self {
            Concept::TaskDecomposition => {
                "(a) breaking a large task into smaller, independent tasks that can be \
                 executed concurrently"
            }
            Concept::Speedup => "(a) True",
            Concept::Contention => {
                "(b) the competition between multiple processors for shared resources"
            }
            Concept::Scalability => "(a) True",
            Concept::Pipelining => {
                "(b) overlapping the execution of multiple instructions to improve performance"
            }
        }
    }
}

/// Render the Fig. 7 quiz as a printable form (same questions pre and
/// post). Pass `with_key` to mark the correct answers for the grader's
/// copy.
pub fn render_quiz_form(with_key: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("Pre-/Post-Test (Fig. 7)\n\n");
    for (qi, c) in Concept::ALL.iter().enumerate() {
        let _ = writeln!(out, "{}. {}: {}", qi + 1, c.name(), c.question());
        for (ci, choice) in c.choices().iter().enumerate() {
            let mark = if with_key && ci == c.correct_index() {
                "*"
            } else {
                " "
            };
            let letter = (b'a' + ci as u8) as char;
            let _ = writeln!(out, "  {mark}{letter}) {choice}");
        }
        out.push('\n');
    }
    out
}

/// The Fig. 8 transition targets: exact counts per institution per
/// concept. Counts not directly published are consistent residuals
/// (flagged by `residual`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuizTarget {
    /// The institution.
    pub institution: Institution,
    /// The concept.
    pub concept: Concept,
    /// The target transition counts.
    pub matrix: TransitionMatrix,
    /// Whether some cells were inferred as residuals rather than read
    /// directly off Fig. 8.
    pub residual: bool,
}

/// All published (and residual-completed) Fig. 8 targets.
pub fn fig8_targets() -> Vec<QuizTarget> {
    use Concept::*;
    use Institution::*;
    let t = |institution, concept, retained, gained, lost, stayed, residual| QuizTarget {
        institution,
        concept,
        matrix: TransitionMatrix::from_counts(retained, gained, lost, stayed),
        residual,
    };
    vec![
        // Task decomposition: retention 76.9/87.2/83.3; growth 0/4.1/16.7;
        // loss 23.1 (USI) / 6.4 (TNTech).
        t(USI, TaskDecomposition, 10, 0, 3, 0, false),
        t(TNTech, TaskDecomposition, 150, 7, 11, 4, true),
        t(HPU, TaskDecomposition, 5, 1, 0, 0, false),
        // Speedup: retention 69.2/66.3/100; gains 15.4/18.0; reduction 7%
        // at TNTech.
        t(USI, Speedup, 9, 2, 0, 2, true),
        t(TNTech, Speedup, 114, 31, 12, 15, true),
        t(HPU, Speedup, 6, 0, 0, 0, false),
        // Contention: pre-correct 46.2/37.2/33.3; growth 38.5/25/16.7;
        // incorrect retention 28.5 (TNTech) and 50 (HPU).
        t(USI, Contention, 6, 5, 0, 2, true),
        t(TNTech, Contention, 48, 43, 16, 65, true),
        t(HPU, Contention, 2, 1, 0, 3, false),
        // Scalability: strongest retention 92.3/82.6/100, minimal movement.
        t(USI, Scalability, 12, 0, 0, 1, true),
        t(TNTech, Scalability, 142, 10, 10, 10, true),
        t(HPU, Scalability, 6, 0, 0, 0, false),
        // Pipelining: pre-correct 23.1/4.1/50; loss 23.1 (USI) and 50
        // (HPU); 74.4% of TNTech stayed incorrect.
        t(USI, Pipelining, 0, 2, 3, 8, true),
        t(TNTech, Pipelining, 4, 37, 3, 128, true),
        t(HPU, Pipelining, 0, 1, 3, 2, false),
    ]
}

/// The target for one (institution, concept) pair.
pub fn fig8_target(inst: Institution, concept: Concept) -> Option<QuizTarget> {
    fig8_targets()
        .into_iter()
        .find(|t| t.institution == inst && t.concept == concept)
}

/// One student's paired quiz outcome for every concept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuizRecord {
    /// Correctness per concept on the pre-quiz, indexed like
    /// [`Concept::ALL`].
    pub pre: [bool; 5],
    /// Correctness per concept on the post-quiz.
    pub post: [bool; 5],
}

/// Generate a synthetic cohort of paired quiz records whose per-concept
/// transition counts equal the Fig. 8 targets exactly. Student identities
/// are shuffled (seeded) so per-concept outcomes aren't correlated in an
/// artificial way.
pub fn generate_quiz_cohort(inst: Institution, seed: u64) -> Vec<QuizRecord> {
    let n = inst
        .quiz_cohort_size()
        .unwrap_or_else(|| panic!("{inst} did not run the pre/post quiz"));
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (inst as u64).wrapping_mul(0xC0FFEE));
    let mut records = vec![
        QuizRecord {
            pre: [false; 5],
            post: [false; 5],
        };
        n
    ];
    for (ci, concept) in Concept::ALL.iter().enumerate() {
        let target = fig8_target(inst, *concept).expect("target exists");
        let m = target.matrix;
        assert_eq!(m.total(), n, "target counts must sum to cohort size");
        // Outcome pool in a fixed order, then shuffled over students.
        let mut outcomes: Vec<(bool, bool)> = Vec::with_capacity(n);
        outcomes.extend(std::iter::repeat_n((true, true), m.retained));
        outcomes.extend(std::iter::repeat_n((false, true), m.gained));
        outcomes.extend(std::iter::repeat_n((true, false), m.lost));
        outcomes.extend(std::iter::repeat_n((false, false), m.stayed_incorrect));
        outcomes.shuffle(&mut rng);
        for (student, (pre, post)) in records.iter_mut().zip(outcomes) {
            student.pre[ci] = pre;
            student.post[ci] = post;
        }
    }
    records
}

/// Recompute the transition matrix for one concept from a cohort.
pub fn measure_transitions(records: &[QuizRecord], concept: Concept) -> TransitionMatrix {
    let ci = Concept::ALL
        .iter()
        .position(|&c| c == concept)
        .expect("known concept");
    TransitionMatrix::from_pairs(
        &records
            .iter()
            .map(|r| (r.pre[ci], r.post[ci]))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_concepts_with_answers() {
        assert_eq!(Concept::ALL.len(), 5);
        for c in Concept::ALL {
            assert!(!c.question().is_empty());
            assert!(!c.correct_answer().is_empty());
        }
    }

    #[test]
    fn quiz_form_renders_all_questions_and_key() {
        let blank = render_quiz_form(false);
        assert!(blank.contains("1. Task Decomposition"));
        assert!(blank.contains("5. Pipelining"));
        assert!(!blank.contains('*'));
        let keyed = render_quiz_form(true);
        assert_eq!(keyed.matches('*').count(), 5);
        // The keyed answer for contention is choice (b).
        assert!(keyed.contains("*b) The competition"));
    }

    #[test]
    fn correct_index_is_in_range_and_matches_answer_text() {
        for c in Concept::ALL {
            let idx = c.correct_index();
            assert!(idx < c.choices().len());
            // The prose answer references the same choice content.
            let choice = c.choices()[idx].to_ascii_lowercase();
            let answer = c.correct_answer().to_ascii_lowercase();
            let overlap = choice
                .split_whitespace()
                .filter(|w| w.len() > 4 && answer.contains(*w))
                .count();
            assert!(
                overlap >= 1 || choice == "true",
                "{c:?}: choice and keyed answer disagree"
            );
        }
    }

    #[test]
    fn targets_cover_all_15_cells_and_sum_to_cohorts() {
        let targets = fig8_targets();
        assert_eq!(targets.len(), 15);
        for t in &targets {
            let n = t.institution.quiz_cohort_size().unwrap();
            assert_eq!(
                t.matrix.total(),
                n,
                "{} {:?}",
                t.institution,
                t.concept
            );
        }
    }

    #[test]
    fn published_percentages_reproduced() {
        // Spot-check the figures quoted in Fig. 8's text.
        let td_usi = fig8_target(Institution::USI, Concept::TaskDecomposition).unwrap();
        assert!((td_usi.matrix.retained_pct() - 76.9).abs() < 0.05);
        assert!((td_usi.matrix.lost_pct() - 23.1).abs() < 0.05);

        let td_tn = fig8_target(Institution::TNTech, Concept::TaskDecomposition).unwrap();
        assert!((td_tn.matrix.retained_pct() - 87.2).abs() < 0.05);
        assert!((td_tn.matrix.gained_pct() - 4.1).abs() < 0.05);
        assert!((td_tn.matrix.lost_pct() - 6.4).abs() < 0.05);

        let sp_hpu = fig8_target(Institution::HPU, Concept::Speedup).unwrap();
        assert_eq!(sp_hpu.matrix.retained_pct(), 100.0);

        let ct_usi = fig8_target(Institution::USI, Concept::Contention).unwrap();
        assert!((ct_usi.matrix.pre_correct_pct() - 46.2).abs() < 0.05);
        assert!((ct_usi.matrix.gained_pct() - 38.5).abs() < 0.05);

        let ct_tn = fig8_target(Institution::TNTech, Concept::Contention).unwrap();
        assert!((ct_tn.matrix.pre_correct_pct() - 37.2).abs() < 0.05);
        assert!((ct_tn.matrix.gained_pct() - 25.0).abs() < 0.05);
        // Fig. 8 also quotes 28.5% incorrect retention for this cell, but
        // 37.2% pre-correct + 25% gained + 28.5% stayed-incorrect cannot
        // sum to 100% minus any non-negative loss; the paper's summary is
        // internally inconsistent here. We satisfy pre-correct and gained
        // exactly, which forces stayed-incorrect to the residual 37.8%.
        assert!((ct_tn.matrix.stayed_incorrect_pct() - 37.8).abs() < 0.1);
        assert!(ct_tn.residual);

        let ct_hpu = fig8_target(Institution::HPU, Concept::Contention).unwrap();
        assert!((ct_hpu.matrix.stayed_incorrect_pct() - 50.0).abs() < 0.05);

        let sc_usi = fig8_target(Institution::USI, Concept::Scalability).unwrap();
        assert!((sc_usi.matrix.retained_pct() - 92.3).abs() < 0.05);
        let sc_tn = fig8_target(Institution::TNTech, Concept::Scalability).unwrap();
        assert!((sc_tn.matrix.retained_pct() - 82.6).abs() < 0.05);

        let pl_tn = fig8_target(Institution::TNTech, Concept::Pipelining).unwrap();
        assert!((pl_tn.matrix.pre_correct_pct() - 4.1).abs() < 0.05);
        assert!((pl_tn.matrix.stayed_incorrect_pct() - 74.4).abs() < 0.05);
        let pl_usi = fig8_target(Institution::USI, Concept::Pipelining).unwrap();
        assert!((pl_usi.matrix.pre_correct_pct() - 23.1).abs() < 0.05);
        assert!((pl_usi.matrix.lost_pct() - 23.1).abs() < 0.05);
        let pl_hpu = fig8_target(Institution::HPU, Concept::Pipelining).unwrap();
        assert!((pl_hpu.matrix.pre_correct_pct() - 50.0).abs() < 0.05);
        assert!((pl_hpu.matrix.lost_pct() - 50.0).abs() < 0.05);
    }

    #[test]
    fn generated_cohorts_reproduce_targets_exactly() {
        for inst in [Institution::USI, Institution::TNTech, Institution::HPU] {
            let records = generate_quiz_cohort(inst, 42);
            assert_eq!(records.len(), inst.quiz_cohort_size().unwrap());
            for concept in Concept::ALL {
                let measured = measure_transitions(&records, concept);
                let target = fig8_target(inst, concept).unwrap().matrix;
                assert_eq!(measured, target, "{inst} {concept:?}");
            }
        }
    }

    #[test]
    fn cohort_deterministic_in_seed() {
        let a = generate_quiz_cohort(Institution::USI, 1);
        let b = generate_quiz_cohort(Institution::USI, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "did not run")]
    fn knox_has_no_quiz() {
        let _ = generate_quiz_cohort(Institution::Knox, 1);
    }

    #[test]
    fn contention_and_pipelining_were_hardest() {
        // The paper's summary: scalability & speedup strong retention;
        // contention & pipelining low initial comprehension.
        for inst in [Institution::USI, Institution::TNTech, Institution::HPU] {
            let pre = |c| fig8_target(inst, c).unwrap().matrix.pre_correct_pct();
            assert!(pre(Concept::Scalability) > pre(Concept::Contention));
            assert!(pre(Concept::Speedup) > pre(Concept::Pipelining));
        }
    }
}
