//! Open-ended survey feedback (§V-A.1 and §V-A.2).
//!
//! The survey's two open questions asked for the most interesting thing
//! learned and for improvement suggestions; the paper summarizes the
//! recurring themes. This module encodes both taxonomies, provides a
//! keyword classifier for free-text comments, and a synthetic comment
//! generator so the classification pipeline can be exercised end to end.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Themes from "the most interesting thing they learned" (§V-A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LearnedTheme {
    /// "better understood how parallel computing operates".
    HowParallelismWorks,
    /// "adding more processors does not always result in increased
    /// efficiency … diminishing returns … even slowdowns".
    DiminishingReturns,
    /// "the hands-on nature … helped them visualize".
    HandsOnVisualization,
    /// "workload distribution, task synchronization, and coordination
    /// challenges".
    CoordinationChallenges,
    /// "effective parallelism requires careful planning and appropriate
    /// task allocation".
    PlanningMatters,
    /// "already familiar with parallel computing concepts".
    AlreadyKnew,
    /// "interest in applying their new knowledge to programming".
    ApplyToProgramming,
    /// "drawing parallels between teamwork and multiprocessor computing".
    TeamworkAnalogy,
}

/// Themes from the improvement suggestions (§V-A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ImprovementTheme {
    /// "better quality crayons or alternative coloring tools".
    BetterImplements,
    /// "making the tasks more engaging … more problem-solving".
    MoreProblemSolving,
    /// "integrating coding exercises".
    IntegrateCoding,
    /// "making the activity shorter to avoid redundancy".
    MakeItShorter,
    /// "clearer instructions and explanations".
    ClearerInstructions,
    /// "key vocabulary be introduced during the activity".
    IntroduceVocabulary,
    /// "larger paper sizes".
    LargerPaper,
    /// "improved classroom setup … organization of group work".
    ClassroomSetup,
    /// "a competitive element such as leaderboards or timed challenges".
    Competition,
    /// "worked well and did not require significant changes".
    NoChanges,
}

impl LearnedTheme {
    /// Every learned-theme, in the paper's narration order.
    pub const ALL: [LearnedTheme; 8] = [
        LearnedTheme::HowParallelismWorks,
        LearnedTheme::DiminishingReturns,
        LearnedTheme::HandsOnVisualization,
        LearnedTheme::CoordinationChallenges,
        LearnedTheme::PlanningMatters,
        LearnedTheme::AlreadyKnew,
        LearnedTheme::ApplyToProgramming,
        LearnedTheme::TeamworkAnalogy,
    ];

    /// Keywords whose presence assigns a comment to this theme.
    fn keywords(self) -> &'static [&'static str] {
        match self {
            LearnedTheme::HowParallelismWorks => &["how parallel", "operates", "cores work"],
            LearnedTheme::DiminishingReturns => {
                &["diminishing", "not always", "slowdown", "more processors"]
            }
            LearnedTheme::HandsOnVisualization => &["hands-on", "visualize", "fun and engaging"],
            LearnedTheme::CoordinationChallenges => {
                &["workload distribution", "synchronization", "coordination"]
            }
            LearnedTheme::PlanningMatters => &["planning", "task allocation"],
            LearnedTheme::AlreadyKnew => &["already familiar", "already knew"],
            LearnedTheme::ApplyToProgramming => &["apply", "to programming", "in my code"],
            LearnedTheme::TeamworkAnalogy => &["teamwork", "like a team"],
        }
    }

    /// A representative synthetic comment.
    pub fn sample_comment(self) -> &'static str {
        match self {
            LearnedTheme::HowParallelismWorks => {
                "I finally understood how parallel computing operates with multiple cores"
            }
            LearnedTheme::DiminishingReturns => {
                "adding more processors does not always make it faster - diminishing returns!"
            }
            LearnedTheme::HandsOnVisualization => {
                "the hands-on coloring helped me visualize the concepts, fun and engaging"
            }
            LearnedTheme::CoordinationChallenges => {
                "workload distribution and synchronization between people is hard"
            }
            LearnedTheme::PlanningMatters => {
                "parallelism needs careful planning and good task allocation"
            }
            LearnedTheme::AlreadyKnew => "I was already familiar with these concepts",
            LearnedTheme::ApplyToProgramming => {
                "I want to apply this to programming assignments"
            }
            LearnedTheme::TeamworkAnalogy => {
                "working together was like a team of processors - teamwork!"
            }
        }
    }
}

impl ImprovementTheme {
    /// Every improvement theme.
    pub const ALL: [ImprovementTheme; 10] = [
        ImprovementTheme::BetterImplements,
        ImprovementTheme::MoreProblemSolving,
        ImprovementTheme::IntegrateCoding,
        ImprovementTheme::MakeItShorter,
        ImprovementTheme::ClearerInstructions,
        ImprovementTheme::IntroduceVocabulary,
        ImprovementTheme::LargerPaper,
        ImprovementTheme::ClassroomSetup,
        ImprovementTheme::Competition,
        ImprovementTheme::NoChanges,
    ];

    fn keywords(self) -> &'static [&'static str] {
        match self {
            ImprovementTheme::BetterImplements => &["crayon", "marker", "breakage", "better tools"],
            ImprovementTheme::MoreProblemSolving => &["problem-solving", "more engaging"],
            ImprovementTheme::IntegrateCoding => &["coding", "code exercise"],
            ImprovementTheme::MakeItShorter => &["shorter", "redundant", "too long"],
            ImprovementTheme::ClearerInstructions => &["clearer", "instructions", "explain"],
            ImprovementTheme::IntroduceVocabulary => &["vocabulary", "terms"],
            ImprovementTheme::LargerPaper => &["larger paper", "bigger grid"],
            ImprovementTheme::ClassroomSetup => &["classroom", "setup", "organization"],
            ImprovementTheme::Competition => &["leaderboard", "competitive", "timed challenge"],
            ImprovementTheme::NoChanges => &["worked well", "no changes", "keep it"],
        }
    }

    /// A representative synthetic comment.
    pub fn sample_comment(self) -> &'static str {
        match self {
            ImprovementTheme::BetterImplements => {
                "please get better quality crayons, mine kept breaking - breakage everywhere"
            }
            ImprovementTheme::MoreProblemSolving => {
                "make it more engaging with real problem-solving elements"
            }
            ImprovementTheme::IntegrateCoding => "add a coding exercise that matches the activity",
            ImprovementTheme::MakeItShorter => "it felt redundant by the end, make it shorter",
            ImprovementTheme::ClearerInstructions => {
                "clearer instructions on how this relates to pipelining please"
            }
            ImprovementTheme::IntroduceVocabulary => {
                "introduce the vocabulary during the activity, not after"
            }
            ImprovementTheme::LargerPaper => "larger paper would make group work easier",
            ImprovementTheme::ClassroomSetup => {
                "the classroom setup made collaboration awkward, fix the organization"
            }
            ImprovementTheme::Competition => "add a leaderboard, we got competitive anyway",
            ImprovementTheme::NoChanges => "honestly it worked well, no changes needed",
        }
    }
}

/// Classify a free-text comment into learned themes (possibly several,
/// possibly none).
pub fn classify_learned(comment: &str) -> Vec<LearnedTheme> {
    let lower = comment.to_ascii_lowercase();
    LearnedTheme::ALL
        .into_iter()
        .filter(|t| t.keywords().iter().any(|k| lower.contains(k)))
        .collect()
}

/// Classify a free-text comment into improvement themes.
pub fn classify_improvement(comment: &str) -> Vec<ImprovementTheme> {
    let lower = comment.to_ascii_lowercase();
    ImprovementTheme::ALL
        .into_iter()
        .filter(|t| t.keywords().iter().any(|k| lower.contains(k)))
        .collect()
}

/// Theme frequencies over a batch of comments.
pub fn learned_frequencies(comments: &[String]) -> BTreeMap<LearnedTheme, usize> {
    let mut out = BTreeMap::new();
    for c in comments {
        for t in classify_learned(c) {
            *out.entry(t).or_default() += 1;
        }
    }
    out
}

/// Generate a synthetic comment batch with roughly the emphasis the paper
/// reports ("many students" on understanding/diminishing returns, "a few"
/// on already-knew).
pub fn generate_learned_comments(n: usize, seed: u64) -> Vec<String> {
    let weighted: Vec<(LearnedTheme, usize)> = vec![
        (LearnedTheme::HowParallelismWorks, 5),
        (LearnedTheme::DiminishingReturns, 4),
        (LearnedTheme::HandsOnVisualization, 4),
        (LearnedTheme::CoordinationChallenges, 3),
        (LearnedTheme::PlanningMatters, 2),
        (LearnedTheme::AlreadyKnew, 1),
        (LearnedTheme::ApplyToProgramming, 1),
        (LearnedTheme::TeamworkAnalogy, 2),
    ];
    let mut pool: Vec<LearnedTheme> = weighted
        .iter()
        .flat_map(|&(t, w)| std::iter::repeat_n(t, w))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            pool.shuffle(&mut rng);
            pool[0].sample_comment().to_owned()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sample_comment_classifies_to_its_theme() {
        for t in LearnedTheme::ALL {
            let themes = classify_learned(t.sample_comment());
            assert!(themes.contains(&t), "{t:?} missed: {themes:?}");
        }
        for t in ImprovementTheme::ALL {
            let themes = classify_improvement(t.sample_comment());
            assert!(themes.contains(&t), "{t:?} missed: {themes:?}");
        }
    }

    #[test]
    fn unrelated_text_classifies_to_nothing() {
        assert!(classify_learned("the weather was nice").is_empty());
        assert!(classify_improvement("the weather was nice").is_empty());
    }

    #[test]
    fn classification_is_case_insensitive() {
        assert!(classify_improvement("BETTER QUALITY CRAYONS PLEASE")
            .contains(&ImprovementTheme::BetterImplements));
    }

    #[test]
    fn crayon_complaints_route_to_implements() {
        // "the institution that used crayons got many complaints".
        let themes = classify_improvement("these crayons are terrible");
        assert_eq!(themes, vec![ImprovementTheme::BetterImplements]);
    }

    #[test]
    fn generated_batch_emphasizes_understanding() {
        let comments = generate_learned_comments(200, 7);
        let freq = learned_frequencies(&comments);
        let top = freq.iter().max_by_key(|(_, &c)| c).map(|(t, _)| *t).unwrap();
        assert!(
            matches!(
                top,
                LearnedTheme::HowParallelismWorks
                    | LearnedTheme::DiminishingReturns
                    | LearnedTheme::HandsOnVisualization
            ),
            "top theme {top:?}"
        );
        // "A few students reported that they were already familiar".
        let already = freq.get(&LearnedTheme::AlreadyKnew).copied().unwrap_or(0);
        assert!(already < comments.len() / 5, "already-knew too common");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            generate_learned_comments(20, 1),
            generate_learned_comments(20, 1)
        );
    }
}
