//! # flagsim-assessment
//!
//! The paper's evaluation instruments, executable.
//!
//! The activity was assessed with human subjects at six institutions; we
//! cannot re-run humans, so this crate models each instrument and pairs it
//! with a **calibrated synthetic cohort generator** whose outputs provably
//! reproduce the paper's published statistics (the substitution is
//! documented in `DESIGN.md`):
//!
//! * [`institution`] — the six sites (HPU, Knox, Montclair, TNTech, USI,
//!   Webster) and cohort sizes consistent with the paper's percentages.
//! * [`survey`] — the Fig. 5 ASPECT-style engagement survey: 18 questions
//!   in three constructs, with the published Tables I–III medians as
//!   calibration targets (including Webster's NA cells).
//! * [`cohort`] — Likert cohort synthesis: plausible response
//!   distributions whose medians are *exact* by construction.
//! * [`quiz`] — the Fig. 7 five-concept pre/post quiz and the Fig. 8
//!   transition targets (counts chosen to reproduce every published
//!   percentage; unreported cells are consistent residuals).
//! * [`jordan`] — the §V-C dependency-graph study: a generator for the
//!   observed submission archetypes and a grading pipeline built on
//!   `flagsim_taskgraph::grade`.
//! * [`report`] — regenerates Tables I/II/III, the Fig. 6 series, the
//!   Fig. 8 summary and the §V-C distribution as printable tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod feedback;
pub mod institution;
pub mod jordan;
pub mod longitudinal;
pub mod quiz;
pub mod report;
pub mod survey;

pub use institution::Institution;
pub use quiz::Concept;
pub use survey::{Construct, SurveyQuestion};
