//! Calibrated Likert cohort synthesis.
//!
//! We cannot resurvey the paper's students; what the paper publishes is
//! the *median* per question per institution. The generator here samples a
//! plausible response distribution around the target and then constrains
//! the sorted middle so the sample median equals the target **exactly** —
//! the published statistic is reproduced by construction while the rest of
//! the distribution stays varied. This keeps the whole analysis pipeline
//! honest: the medians in our regenerated tables are *computed* from
//! responses by `flagsim_metrics::likert`, not copied.

use crate::institution::Institution;
use crate::survey::SurveyQuestion;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// One institution's synthetic responses to the whole survey.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyCohort {
    /// The institution.
    pub institution: Institution,
    /// Responses per question (one `u8` in 1..=5 per student). Questions
    /// with no published median for this institution are absent — those
    /// students weren't asked (Webster's NA rows) or the cell wasn't
    /// reported.
    pub responses: BTreeMap<SurveyQuestion, Vec<u8>>,
}

impl SurveyCohort {
    /// The responses for one question, if collected.
    pub fn question(&self, q: SurveyQuestion) -> Option<&[u8]> {
        self.responses.get(&q).map(Vec::as_slice)
    }

    /// The measured median for one question.
    pub fn median(&self, q: SurveyQuestion) -> Option<f64> {
        self.question(q).and_then(flagsim_metrics::median)
    }
}

/// Generate `n` Likert responses whose median is exactly `target` (which
/// must be a half-point in `[1, 5]`; half-point targets require even `n`).
pub fn responses_with_median(target: f64, n: usize, rng: &mut ChaCha8Rng) -> Vec<u8> {
    assert!(n > 0, "empty cohort");
    assert!(
        (1.0..=5.0).contains(&target) && (target * 2.0).fract() == 0.0,
        "target must be a half-point Likert value, got {target}"
    );
    let is_half = target.fract() != 0.0;
    assert!(
        !is_half || n.is_multiple_of(2),
        "a half-point median needs an even sample"
    );
    // The two middle order statistics we must hit.
    let (m_lo, m_hi) = if is_half {
        (target.floor() as u8, target.ceil() as u8)
    } else {
        (target as u8, target as u8)
    };

    // Sample around the target: target ± {0,1,2} with decaying weights.
    let mut out: Vec<u8> = (0..n)
        .map(|_| {
            let noise: i8 = match rng.gen_range(0..100) {
                0..=54 => 0,
                55..=84 => 1,
                _ => 2,
            };
            let sign: i8 = if rng.gen::<bool>() { 1 } else { -1 };
            (target.round() as i8 + sign * noise).clamp(1, 5) as u8
        })
        .collect();

    // Constrain: sort, clamp halves, pin the middle.
    out.sort_unstable();
    let mid = n / 2;
    if n % 2 == 1 {
        for v in &mut out[..mid] {
            *v = (*v).min(m_lo);
        }
        out[mid] = m_lo;
        for v in &mut out[mid + 1..] {
            *v = (*v).max(m_hi);
        }
    } else {
        for v in &mut out[..mid.saturating_sub(1)] {
            *v = (*v).min(m_lo);
        }
        out[mid - 1] = m_lo;
        out[mid] = m_hi;
        for v in &mut out[mid + 1..] {
            *v = (*v).max(m_hi);
        }
    }
    // Shuffle back so the constrained values aren't positionally obvious.
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Generate the survey cohort for one institution. Deterministic in
/// `seed`.
pub fn generate_survey_cohort(institution: Institution, seed: u64) -> SurveyCohort {
    let n = institution.survey_cohort_size();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (institution as u64).wrapping_mul(0x9E37));
    let mut responses = BTreeMap::new();
    for q in SurveyQuestion::ALL {
        if let Some(target) = q.published_median(institution) {
            responses.insert(q, responses_with_median(target, n, &mut rng));
        }
    }
    SurveyCohort {
        institution,
        responses,
    }
}

/// Generate all six cohorts.
pub fn generate_all_cohorts(seed: u64) -> Vec<SurveyCohort> {
    Institution::ALL
        .iter()
        .map(|&i| generate_survey_cohort(i, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_medians_for_all_half_points() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for &target in &[1.0, 2.0, 3.0, 3.5, 4.0, 4.5, 5.0] {
            for &n in &[2usize, 6, 14, 30, 40] {
                let r = responses_with_median(target, n, &mut rng);
                assert_eq!(r.len(), n);
                assert_eq!(
                    flagsim_metrics::median(&r),
                    Some(target),
                    "target {target} n {n}"
                );
                assert!(r.iter().all(|&v| (1..=5).contains(&v)));
            }
        }
    }

    #[test]
    fn odd_samples_work_for_integer_targets() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let r = responses_with_median(4.0, 29, &mut rng);
        assert_eq!(flagsim_metrics::median(&r), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "even sample")]
    fn half_point_with_odd_n_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = responses_with_median(4.5, 7, &mut rng);
    }

    #[test]
    fn responses_are_varied_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = responses_with_median(4.0, 40, &mut rng);
        let distinct: std::collections::BTreeSet<u8> = r.iter().copied().collect();
        assert!(distinct.len() >= 2, "suspiciously uniform cohort: {r:?}");
    }

    #[test]
    fn cohorts_hit_every_published_median() {
        for cohort in generate_all_cohorts(0xA55E55) {
            for q in SurveyQuestion::ALL {
                match q.published_median(cohort.institution) {
                    Some(target) => {
                        assert_eq!(
                            cohort.median(q),
                            Some(target),
                            "{} {:?}",
                            cohort.institution,
                            q
                        );
                    }
                    None => assert!(cohort.question(q).is_none()),
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_survey_cohort(Institution::USI, 5);
        let b = generate_survey_cohort(Institution::USI, 5);
        let c = generate_survey_cohort(Institution::USI, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
