//! The §V-C dependency-graph study: the flag of Jordan.
//!
//! 29 submissions were collected from a class of 65 (45% response rate).
//! Classified: 10 perfect (34%), 7 mostly correct (24% — five split the
//! triangle, one merged all stripes into a single task, one conveyed the
//! layers spatially without arrows), the most common error was a linear
//! chain, a couple were incomplete, and 4 (14%) showed no learning (drew
//! the flag or wrote code). 59% of respondents were at least mostly
//! correct. This module generates submissions in those archetypes and
//! grades them with the rubric in `flagsim_taskgraph::grade`.

use flagsim_taskgraph::grade::MostlyVariant;
use flagsim_taskgraph::{classify, GradeOptions, SubmissionGrade, SubmittedGraph, TaskGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// The reference dependency graph for coloring the flag of Jordan
/// (Fig. 9): three stripes → red triangle → white dot. Weights are
/// nominal cell counts (they don't affect grading).
pub fn reference_graph() -> TaskGraph {
    let mut g = TaskGraph::new();
    let black = g.add_task("black stripe", 48);
    let white = g.add_task("white stripe", 48);
    let green = g.add_task("green stripe", 48);
    let tri = g.add_task("red triangle", 30);
    let dot = g.add_task("white dot", 2);
    for s in [black, white, green] {
        g.add_dep(s, tri).expect("forward edge");
    }
    g.add_dep(tri, dot).expect("forward edge");
    g
}

/// The grading allowances §V-C describes for this flag.
pub fn grade_options() -> GradeOptions {
    GradeOptions {
        // "we counted the graph as correct if it omitted the box for
        // drawing the white stripe".
        optional_tasks: vec!["white stripe".into()],
        // "splitting the red triangle into two parts … consistent with how
        // they were creating this kind of triangle in the programming
        // assignment".
        splits: vec![(
            "red triangle".into(),
            vec!["top triangle".into(), "bottom triangle".into()],
        )],
        // "one who used one task for all the stripes".
        merges: vec![(
            "stripes".into(),
            vec![
                "black stripe".into(),
                "white stripe".into(),
                "green stripe".into(),
            ],
        )],
    }
}

/// The submission archetypes observed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Archetype {
    /// Correct graph (possibly omitting the white stripe).
    Perfect,
    /// Triangle split into two right triangles.
    SplitTriangle,
    /// One task for all three stripes.
    MergedStripes,
    /// Correct layers conveyed spatially, arrows omitted.
    SpatialNoArrows,
    /// A single sequential chain of all tasks.
    LinearChain,
    /// Ran out of time mid-drawing.
    Incomplete,
    /// Drew the flag / wrote code instead.
    NoLearning,
}

impl Archetype {
    /// The §V-C counts (total 29).
    pub fn observed_mix() -> Vec<(Archetype, usize)> {
        vec![
            (Archetype::Perfect, 10),
            (Archetype::SplitTriangle, 5),
            (Archetype::MergedStripes, 1),
            (Archetype::SpatialNoArrows, 1),
            (Archetype::LinearChain, 6),
            (Archetype::Incomplete, 2),
            (Archetype::NoLearning, 4),
        ]
    }

    /// Build a submission of this archetype. `variant` selects small
    /// deterministic variations (chain order, white-stripe omission) so a
    /// cohort isn't 29 identical drawings.
    pub fn submission(self, variant: u64) -> SubmittedGraph {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        match self {
            Archetype::Perfect => {
                if variant.is_multiple_of(2) {
                    // Full five-task version.
                    SubmittedGraph::new(
                        s(&[
                            "black stripe",
                            "white stripe",
                            "green stripe",
                            "red triangle",
                            "white dot",
                        ]),
                        vec![(0, 3), (1, 3), (2, 3), (3, 4)],
                    )
                } else {
                    // White stripe omitted (counted correct).
                    SubmittedGraph::new(
                        s(&["black stripe", "green stripe", "red triangle", "white dot"]),
                        vec![(0, 2), (1, 2), (2, 3)],
                    )
                }
            }
            Archetype::SplitTriangle => SubmittedGraph::new(
                s(&[
                    "black stripe",
                    "white stripe",
                    "green stripe",
                    "top triangle",
                    "bottom triangle",
                    "white dot",
                ]),
                vec![
                    (0, 3),
                    (1, 3),
                    (2, 3),
                    (0, 4),
                    (1, 4),
                    (2, 4),
                    (3, 5),
                    (4, 5),
                ],
            ),
            Archetype::MergedStripes => SubmittedGraph::new(
                s(&["stripes", "red triangle", "white dot"]),
                vec![(0, 1), (1, 2)],
            ),
            Archetype::SpatialNoArrows => {
                let mut sub = SubmittedGraph::new(
                    s(&[
                        "black stripe",
                        "white stripe",
                        "green stripe",
                        "red triangle",
                        "white dot",
                    ]),
                    vec![],
                );
                sub.spatial_only = true;
                sub
            }
            Archetype::LinearChain => {
                // Different students chain in different orders; all wrong
                // the same way ("thought about the graph in terms of
                // sequential code").
                let orders: [[usize; 5]; 3] = [
                    [0, 1, 2, 3, 4],
                    [2, 1, 0, 3, 4],
                    [0, 2, 1, 3, 4],
                ];
                let order = orders[(variant % 3) as usize];
                let tasks = s(&[
                    "black stripe",
                    "white stripe",
                    "green stripe",
                    "red triangle",
                    "white dot",
                ]);
                let edges = order.windows(2).map(|w| (w[0], w[1])).collect();
                SubmittedGraph::new(tasks, edges)
            }
            Archetype::Incomplete => {
                let mut sub = SubmittedGraph::new(
                    s(&["black stripe", "white stripe", "green stripe"]),
                    vec![(0, 1), (1, 2)],
                );
                sub.complete = false;
                sub
            }
            Archetype::NoLearning => {
                if variant.is_multiple_of(2) {
                    // "drew the flag".
                    SubmittedGraph::new(s(&["(a drawing of the flag)"]), vec![])
                } else {
                    // "started giving code to draw it".
                    SubmittedGraph::new(s(&["for y in range(h):", "setPixel(x, y)"]), vec![(0, 1)])
                }
            }
        }
    }

    /// The grade the rubric should assign this archetype.
    pub fn expected_grade(self) -> SubmissionGrade {
        match self {
            Archetype::Perfect => SubmissionGrade::Perfect,
            Archetype::SplitTriangle => SubmissionGrade::MostlyCorrect(MostlyVariant::SplitTask),
            Archetype::MergedStripes => {
                SubmissionGrade::MostlyCorrect(MostlyVariant::MergedTasks)
            }
            Archetype::SpatialNoArrows => {
                SubmissionGrade::MostlyCorrect(MostlyVariant::SpatialNoArrows)
            }
            Archetype::LinearChain => SubmissionGrade::LinearChain,
            Archetype::Incomplete => SubmissionGrade::Incomplete,
            Archetype::NoLearning => SubmissionGrade::NoLearning,
        }
    }
}

/// The grading results for a batch of submissions.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResults {
    /// Count per grade.
    pub counts: BTreeMap<&'static str, usize>,
    /// Total submissions.
    pub total: usize,
    /// Percent perfectly correct.
    pub perfect_pct: f64,
    /// Percent mostly correct (all variants).
    pub mostly_pct: f64,
    /// Percent at least mostly correct (the paper's 59%).
    pub at_least_mostly_pct: f64,
}

fn grade_name(g: SubmissionGrade) -> &'static str {
    match g {
        SubmissionGrade::Perfect => "perfect",
        SubmissionGrade::MostlyCorrect(_) => "mostly correct",
        SubmissionGrade::LinearChain => "linear chain",
        SubmissionGrade::Incomplete => "incomplete",
        SubmissionGrade::IncorrectStructure => "incorrect structure",
        SubmissionGrade::NoLearning => "no learning",
    }
}

/// Grade a batch of submissions against the Jordan reference.
pub fn grade_batch(submissions: &[SubmittedGraph]) -> StudyResults {
    let reference = reference_graph();
    let options = grade_options();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut perfect = 0usize;
    let mut mostly = 0usize;
    for sub in submissions {
        let grade = classify(sub, &reference, &options);
        *counts.entry(grade_name(grade)).or_default() += 1;
        match grade {
            SubmissionGrade::Perfect => perfect += 1,
            SubmissionGrade::MostlyCorrect(_) => mostly += 1,
            _ => {}
        }
    }
    let total = submissions.len();
    let pct = |c: usize| {
        if total == 0 {
            0.0
        } else {
            100.0 * c as f64 / total as f64
        }
    };
    StudyResults {
        counts,
        total,
        perfect_pct: pct(perfect),
        mostly_pct: pct(mostly),
        at_least_mostly_pct: pct(perfect + mostly),
    }
}

/// Generate the 29-submission synthetic class in the observed archetype
/// mix, shuffled by `seed`.
pub fn generate_submissions(seed: u64) -> Vec<SubmittedGraph> {
    let mut subs = Vec::new();
    let mut variant = 0u64;
    for (arch, count) in Archetype::observed_mix() {
        for _ in 0..count {
            subs.push(arch.submission(variant));
            variant += 1;
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    subs.shuffle(&mut rng);
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_fig9_shape() {
        let g = reference_graph();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots().len(), 3);
        assert_eq!(g.leaves().len(), 1);
    }

    #[test]
    fn every_archetype_grades_as_expected() {
        let reference = reference_graph();
        let options = grade_options();
        for (arch, _) in Archetype::observed_mix() {
            for variant in 0..4 {
                let sub = arch.submission(variant);
                let grade = classify(&sub, &reference, &options);
                assert_eq!(grade, arch.expected_grade(), "{arch:?} v{variant}");
            }
        }
    }

    #[test]
    fn observed_mix_totals_29() {
        let total: usize = Archetype::observed_mix().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 29);
    }

    #[test]
    fn study_reproduces_section_vc_percentages() {
        let subs = generate_submissions(2025);
        assert_eq!(subs.len(), 29);
        let results = grade_batch(&subs);
        // "10 (34%) were perfectly correct. Seven (24%) more were mostly
        // correct … made up 59% of the respondents."
        assert_eq!(results.counts["perfect"], 10);
        assert_eq!(results.counts["mostly correct"], 7);
        assert!((results.perfect_pct - 34.5).abs() < 0.5);
        assert!((results.mostly_pct - 24.1).abs() < 0.5);
        assert!((results.at_least_mostly_pct - 58.6).abs() < 0.5);
        assert_eq!(results.counts["linear chain"], 6);
        assert_eq!(results.counts["incomplete"], 2);
        assert_eq!(results.counts["no learning"], 4);
        // Nothing fell into the catch-all bucket.
        assert!(!results.counts.contains_key("incorrect structure"));
    }

    #[test]
    fn shuffling_changes_order_not_results() {
        let a = grade_batch(&generate_submissions(1));
        let b = grade_batch(&generate_submissions(99));
        assert_eq!(a, b);
        assert_ne!(generate_submissions(1), generate_submissions(99));
    }

    #[test]
    fn response_rate_context() {
        // 29 of 65 ≈ 45%.
        assert!((29.0_f64 / 65.0 * 100.0 - 44.6).abs() < 0.5);
    }
}
