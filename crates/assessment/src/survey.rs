//! The Fig. 5 student engagement survey and the Tables I–III targets.

use crate::institution::Institution;

/// The three constructs the survey measures (§V: "the student experience
/// …, their understanding …, and instructor effectiveness").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Construct {
    /// Engagement: enjoyment, participation, focus (Table I).
    Engagement,
    /// Understanding: comprehension of material and concepts (Table II).
    Understanding,
    /// Instructor: preparedness, enthusiasm, availability (Table III).
    Instructor,
    /// Fig. 5 questions not broken out in any table.
    Other,
}

/// One survey question (5-point Likert, 1 = Strongly Disagree … 5 =
/// Strongly Agree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SurveyQuestion {
    // Table I — engagement.
    /// "I had fun during the activity".
    HadFun,
    /// "I made a valuable contribution to my group during the activity".
    MadeContribution,
    /// "I was focused during the activity".
    WasFocused,
    /// "I worked hard during the activity".
    WorkedHard,
    /// "The activity stimulated my interest in parallel computing".
    StimulatedInterest,
    // Table II — understanding.
    /// "Explaining the material to my group improved my understanding of it".
    ExplainingImproved,
    /// "Having the material explained to me by my group members improved
    /// my understanding of it".
    ExplainedToMe,
    /// "Group discussion during the activity contributed to my
    /// understanding of parallel computing".
    GroupDiscussion,
    /// "I am confident in my understanding of the material presented
    /// during the activity".
    ConfidentUnderstanding,
    /// "The activity increased my understanding of parallel computing".
    IncreasedUnderstandingPdc,
    /// "The activity increased my understanding of loops".
    IncreasedUnderstandingLoops,
    // Table III — instructor.
    /// "The instructor seemed prepared for the activity".
    InstructorPrepared,
    /// "The instructor put a good deal of effort into my learning from the
    /// activity".
    InstructorEffort,
    /// "The instructor's enthusiasm made me more interested in the
    /// activity".
    InstructorEnthusiasm,
    /// "The instructor and/or TAs were available to answer questions
    /// during the activity".
    InstructorAvailable,
    // Fig. 5 questions without published medians.
    /// "Overall, the other members of my group made valuable contributions
    /// during the activity".
    GroupContributions,
    /// "I would prefer to take a class that includes this group activity
    /// over one that does not".
    PreferClassWithActivity,
    /// "I like that the activity tied into the class's current programming
    /// assignment" (asked only where the programming assignment ran).
    TiedToAssignment,
}

impl SurveyQuestion {
    /// All 18 questions, in Fig. 5 table order (Table I, II, III, then the
    /// unpublished three).
    pub const ALL: [SurveyQuestion; 18] = [
        SurveyQuestion::HadFun,
        SurveyQuestion::MadeContribution,
        SurveyQuestion::WasFocused,
        SurveyQuestion::WorkedHard,
        SurveyQuestion::StimulatedInterest,
        SurveyQuestion::ExplainingImproved,
        SurveyQuestion::ExplainedToMe,
        SurveyQuestion::GroupDiscussion,
        SurveyQuestion::ConfidentUnderstanding,
        SurveyQuestion::IncreasedUnderstandingPdc,
        SurveyQuestion::IncreasedUnderstandingLoops,
        SurveyQuestion::InstructorPrepared,
        SurveyQuestion::InstructorEffort,
        SurveyQuestion::InstructorEnthusiasm,
        SurveyQuestion::InstructorAvailable,
        SurveyQuestion::GroupContributions,
        SurveyQuestion::PreferClassWithActivity,
        SurveyQuestion::TiedToAssignment,
    ];

    /// The question's construct (which table it appears in).
    pub fn construct(self) -> Construct {
        use SurveyQuestion::*;
        match self {
            HadFun | MadeContribution | WasFocused | WorkedHard | StimulatedInterest => {
                Construct::Engagement
            }
            ExplainingImproved | ExplainedToMe | GroupDiscussion | ConfidentUnderstanding
            | IncreasedUnderstandingPdc | IncreasedUnderstandingLoops => Construct::Understanding,
            InstructorPrepared | InstructorEffort | InstructorEnthusiasm
            | InstructorAvailable => Construct::Instructor,
            GroupContributions | PreferClassWithActivity | TiedToAssignment => Construct::Other,
        }
    }

    /// The question's row label as printed in the tables.
    pub fn label(self) -> &'static str {
        use SurveyQuestion::*;
        match self {
            HadFun => "I had fun during the activity",
            MadeContribution => "I made a valuable contribution to my group",
            WasFocused => "I was focused during the activity",
            WorkedHard => "I worked hard during the activity",
            StimulatedInterest => "The activity stimulated my interest in parallel computing",
            ExplainingImproved => "Explaining material to my group improved my understanding",
            ExplainedToMe => {
                "Having material explained to me by my group improved my understanding"
            }
            GroupDiscussion => {
                "Group discussion contributed to my understanding of parallel computing"
            }
            ConfidentUnderstanding => "I am confident in my understanding of the material presented",
            IncreasedUnderstandingPdc => {
                "The activity increased my understanding of parallel computing"
            }
            IncreasedUnderstandingLoops => "The activity increased my understanding of loops",
            InstructorPrepared => "The instructor seemed prepared for the activity",
            InstructorEffort => "The instructor put effort into my learning",
            InstructorEnthusiasm => {
                "The instructor's enthusiasm made me more interested in the activity"
            }
            InstructorAvailable => "The instructor and/or TAs were available to answer questions",
            GroupContributions => {
                "Overall, the other members of my group made valuable contributions"
            }
            PreferClassWithActivity => {
                "I would prefer to take a class that includes this group activity"
            }
            TiedToAssignment => {
                "I like that the activity tied into the class's current programming assignment"
            }
        }
    }

    /// The published median for this question at this institution
    /// (Tables I–III). `None` means the paper reports NA or does not
    /// report the cell (the three unpublished Fig. 5 questions, Webster's
    /// omitted instructor rows, TNTech's missing interest row).
    pub fn published_median(self, inst: Institution) -> Option<f64> {
        use Institution::*;
        use SurveyQuestion::*;
        let row: [Option<f64>; 6] = match self {
            // Table I, columns HPU, Knox, Montclair, TNTech, USI, Webster.
            HadFun => [
                Some(4.0),
                Some(4.0),
                Some(4.5),
                Some(4.0),
                Some(5.0),
                Some(5.0),
            ],
            MadeContribution => [
                Some(5.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(4.0),
                Some(5.0),
            ],
            WasFocused => [
                Some(4.5),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
            ],
            WorkedHard => [
                Some(4.5),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
            ],
            StimulatedInterest => [
                Some(4.5),
                Some(4.0),
                Some(3.5),
                None,
                Some(4.0),
                Some(5.0),
            ],
            // Table II.
            ExplainingImproved => [
                Some(5.0),
                Some(4.0),
                Some(4.0),
                Some(4.0),
                Some(4.5),
                Some(4.0),
            ],
            ExplainedToMe => [
                Some(4.5),
                Some(4.0),
                Some(4.5),
                Some(4.0),
                Some(4.0),
                Some(4.5),
            ],
            GroupDiscussion => [
                Some(4.5),
                Some(4.0),
                Some(4.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
            ],
            ConfidentUnderstanding => [
                Some(4.5),
                Some(4.0),
                Some(4.0),
                Some(4.0),
                Some(4.0),
                Some(5.0),
            ],
            IncreasedUnderstandingPdc => [
                Some(5.0),
                Some(4.0),
                Some(4.5),
                Some(4.0),
                Some(5.0),
                Some(5.0),
            ],
            IncreasedUnderstandingLoops => [
                Some(3.0),
                Some(4.0),
                Some(5.0),
                Some(3.0),
                Some(4.0),
                Some(4.0),
            ],
            // Table III.
            InstructorPrepared => [
                Some(5.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
            ],
            InstructorEffort => [
                Some(5.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                None,
            ],
            InstructorEnthusiasm => [
                Some(5.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                None,
            ],
            InstructorAvailable => [
                Some(5.0),
                Some(4.0),
                Some(5.0),
                Some(5.0),
                Some(5.0),
                None,
            ],
            // Unpublished questions.
            GroupContributions | PreferClassWithActivity | TiedToAssignment => {
                [None, None, None, None, None, None]
            }
        };
        let idx = match inst {
            HPU => 0,
            Knox => 1,
            Montclair => 2,
            TNTech => 3,
            USI => 4,
            Webster => 5,
        };
        row[idx]
    }

    /// Questions of one construct, in table row order.
    pub fn of_construct(c: Construct) -> Vec<SurveyQuestion> {
        SurveyQuestion::ALL
            .iter()
            .copied()
            .filter(|q| q.construct() == c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_questions_as_in_fig5() {
        assert_eq!(SurveyQuestion::ALL.len(), 18);
    }

    #[test]
    fn construct_row_counts_match_tables() {
        assert_eq!(SurveyQuestion::of_construct(Construct::Engagement).len(), 5);
        assert_eq!(
            SurveyQuestion::of_construct(Construct::Understanding).len(),
            6
        );
        assert_eq!(SurveyQuestion::of_construct(Construct::Instructor).len(), 4);
        assert_eq!(SurveyQuestion::of_construct(Construct::Other).len(), 3);
    }

    #[test]
    fn spot_check_published_medians() {
        use Institution::*;
        use SurveyQuestion::*;
        // Table I first row.
        assert_eq!(HadFun.published_median(HPU), Some(4.0));
        assert_eq!(HadFun.published_median(USI), Some(5.0));
        // NA cells.
        assert_eq!(StimulatedInterest.published_median(TNTech), None);
        assert_eq!(InstructorEffort.published_median(Webster), None);
        // Table II loops row (the weak spot the paper calls out).
        assert_eq!(IncreasedUnderstandingLoops.published_median(HPU), Some(3.0));
        assert_eq!(
            IncreasedUnderstandingLoops.published_median(TNTech),
            Some(3.0)
        );
        // Knox is uniformly 4.0.
        for q in SurveyQuestion::ALL {
            if let Some(m) = q.published_median(Knox) {
                assert_eq!(m, 4.0, "{q:?}");
            }
        }
    }

    #[test]
    fn published_medians_are_valid_likert_values() {
        for q in SurveyQuestion::ALL {
            for i in Institution::ALL {
                if let Some(m) = q.published_median(i) {
                    assert!((1.0..=5.0).contains(&m));
                    assert_eq!((m * 2.0).fract(), 0.0, "median {m} not a half-point");
                }
            }
        }
    }
}
