//! The six participating institutions.

use std::fmt;

/// The six universities that piloted the activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Institution {
    /// Hawaii Pacific University.
    HPU,
    /// Knox College.
    Knox,
    /// Montclair State University.
    Montclair,
    /// Tennessee Tech University.
    TNTech,
    /// University of Southern Indiana.
    USI,
    /// Webster University.
    Webster,
}

impl Institution {
    /// All six, in the tables' column order.
    pub const ALL: [Institution; 6] = [
        Institution::HPU,
        Institution::Knox,
        Institution::Montclair,
        Institution::TNTech,
        Institution::USI,
        Institution::Webster,
    ];

    /// Column header used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Institution::HPU => "HPU",
            Institution::Knox => "Knox",
            Institution::Montclair => "Montclair",
            Institution::TNTech => "TNTech",
            Institution::USI => "USI",
            Institution::Webster => "Webster",
        }
    }

    /// Survey cohort size used by the synthetic generator. Even numbers,
    /// because several published medians are half-points (4.5), which only
    /// even-sized samples produce.
    pub fn survey_cohort_size(self) -> usize {
        match self {
            Institution::HPU => 6,
            Institution::Knox => 30,
            Institution::Montclair => 24,
            Institution::TNTech => 40,
            Institution::USI => 14,
            Institution::Webster => 22,
        }
    }

    /// Pre/post quiz cohort size, for the three institutions in Fig. 8.
    /// Sizes are inferred from the published percentages: every Fig. 8
    /// percentage is an integer count over these totals (e.g. USI's 76.9%
    /// = 10/13, TNTech's 87.2% = 150/172, HPU's 83.3% = 5/6).
    pub fn quiz_cohort_size(self) -> Option<usize> {
        match self {
            Institution::USI => Some(13),
            Institution::TNTech => Some(172),
            Institution::HPU => Some(6),
            _ => None,
        }
    }
}

impl fmt::Display for Institution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_institutions_in_order() {
        assert_eq!(Institution::ALL.len(), 6);
        assert_eq!(Institution::ALL[0].name(), "HPU");
        assert_eq!(Institution::ALL[5].name(), "Webster");
    }

    #[test]
    fn survey_cohorts_are_even() {
        for i in Institution::ALL {
            assert_eq!(i.survey_cohort_size() % 2, 0, "{i} must be even");
        }
    }

    #[test]
    fn quiz_cohorts_match_fig8_denominators() {
        assert_eq!(Institution::USI.quiz_cohort_size(), Some(13));
        assert_eq!(Institution::TNTech.quiz_cohort_size(), Some(172));
        assert_eq!(Institution::HPU.quiz_cohort_size(), Some(6));
        assert_eq!(Institution::Knox.quiz_cohort_size(), None);
        // The published percentages really are integer counts over these.
        assert!((10.0_f64 / 13.0 * 100.0 - 76.9).abs() < 0.05);
        assert!((150.0_f64 / 172.0 * 100.0 - 87.2).abs() < 0.05);
        assert!((5.0_f64 / 6.0 * 100.0 - 83.3).abs() < 0.05);
    }
}
