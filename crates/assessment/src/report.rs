//! Regenerating the paper's tables and figures.
//!
//! Each function computes its numbers from synthetic cohorts via the same
//! statistics a real analysis would use (`flagsim_metrics`), then prints
//! them side by side with the published values.

use crate::cohort::{generate_all_cohorts, SurveyCohort};
use crate::institution::Institution;
use crate::jordan;
use crate::quiz::{self, Concept};
use crate::survey::{Construct, SurveyQuestion};
use std::fmt::Write as _;

/// One table cell: published vs measured median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The paper's value (None = NA).
    pub published: Option<f64>,
    /// Our regenerated value (None = not collected).
    pub measured: Option<f64>,
}

impl Cell {
    /// Whether measured matches published (both NA counts as a match).
    pub fn matches(&self) -> bool {
        match (self.published, self.measured) {
            (None, None) => true,
            (Some(a), Some(b)) => (a - b).abs() < 1e-9,
            _ => false,
        }
    }
}

/// One row of a regenerated table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// The question.
    pub question: SurveyQuestion,
    /// Cells in [`Institution::ALL`] order.
    pub cells: Vec<Cell>,
}

/// Regenerate one of Tables I–III from synthetic cohorts.
pub fn regenerate_table(construct: Construct, seed: u64) -> Vec<TableRow> {
    let cohorts = generate_all_cohorts(seed);
    SurveyQuestion::of_construct(construct)
        .into_iter()
        .map(|q| TableRow {
            question: q,
            cells: cohorts
                .iter()
                .map(|c: &SurveyCohort| Cell {
                    published: q.published_median(c.institution),
                    measured: c.median(q),
                })
                .collect(),
        })
        .collect()
}

fn fmt_median(v: Option<f64>) -> String {
    match v {
        Some(m) => format!("{m:.1}"),
        None => "NA".to_owned(),
    }
}

/// Render a regenerated table, flagging any mismatch with `!`.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<72}", "Question");
    for inst in Institution::ALL {
        let _ = write!(out, "{:>11}", inst.name());
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "{:<72}", truncate(row.question.label(), 71));
        for cell in &row.cells {
            let mark = if cell.matches() { "" } else { "!" };
            let _ = write!(out, "{:>11}", format!("{}{}", fmt_median(cell.measured), mark));
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

/// Whether every cell of every row matches its published value.
pub fn table_matches(rows: &[TableRow]) -> bool {
    rows.iter().all(|r| r.cells.iter().all(Cell::matches))
}

/// The Fig. 6 bar-chart series: per question, the measured median per
/// institution (the chart plots exactly these numbers).
pub fn fig6_series(seed: u64) -> Vec<(SurveyQuestion, Vec<Option<f64>>)> {
    let cohorts = generate_all_cohorts(seed);
    SurveyQuestion::ALL
        .iter()
        .filter(|q| {
            Institution::ALL
                .iter()
                .any(|&i| q.published_median(i).is_some())
        })
        .map(|&q| {
            (
                q,
                cohorts.iter().map(|c| c.median(q)).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Regenerate the Fig. 8 pre/post analysis: per concept and institution,
/// the measured transition percentages from a synthetic cohort, next to
/// the published values.
pub fn fig8_report(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20}{:>9}{:>11}{:>10}{:>9}{:>9}{:>9}",
        "Concept", "Inst", "n", "retain%", "gain%", "loss%", "stay%"
    );
    for concept in Concept::ALL {
        for inst in [Institution::USI, Institution::TNTech, Institution::HPU] {
            let records = quiz::generate_quiz_cohort(inst, seed);
            let m = quiz::measure_transitions(&records, concept);
            let _ = writeln!(
                out,
                "{:<20}{:>9}{:>11}{:>10.1}{:>9.1}{:>9.1}{:>9.1}",
                concept.name(),
                inst.name(),
                m.total(),
                m.retained_pct(),
                m.gained_pct(),
                m.lost_pct(),
                m.stayed_incorrect_pct()
            );
        }
    }
    out
}

/// Response histograms and agreement rates per question, pooled across
/// institutions — the distribution view behind the medians (useful when
/// arguing that a 4.0 median hides a long tail).
pub fn histogram_report(seed: u64) -> String {
    let cohorts = generate_all_cohorts(seed);
    let mut out = format!(
        "{:<72}{:>6}{:>22}{:>10}\n",
        "Question", "n", "histogram 1..5", "agree%"
    );
    for q in SurveyQuestion::ALL {
        let mut pooled: Vec<u8> = Vec::new();
        for c in &cohorts {
            if let Some(rs) = c.question(q) {
                pooled.extend_from_slice(rs);
            }
        }
        if pooled.is_empty() {
            continue;
        }
        let summary = flagsim_metrics::LikertSummary::from_responses(&pooled);
        let _ = writeln!(
            out,
            "{:<72}{:>6}{:>22}{:>9.0}%",
            truncate(q.label(), 71),
            summary.n,
            format!("{:?}", summary.histogram),
            summary.agreement.unwrap_or(0.0) * 100.0,
        );
    }
    out
}

/// Regenerate the §V-C study summary.
pub fn jordan_report(seed: u64) -> String {
    let subs = jordan::generate_submissions(seed);
    let results = jordan::grade_batch(&subs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Jordan dependency-graph study: {} submissions",
        results.total
    );
    for (grade, count) in &results.counts {
        let _ = writeln!(
            out,
            "  {:<20} {:>2} ({:.0}%)",
            grade,
            count,
            100.0 * *count as f64 / results.total as f64
        );
    }
    let _ = writeln!(
        out,
        "  at least mostly correct: {:.0}% (paper: 59%)",
        results.at_least_mostly_pct
    );
    out
}

/// The paper's complete §V, regenerated as one document: Tables I–III,
/// the Fig. 6 series, response histograms, the Fig. 8 transitions, the
/// §V-C study, and the §VI statistical analysis.
pub fn full_report(seed: u64) -> String {
    let mut out = String::new();
    for (title, construct) in [
        ("Table I — engagement medians", Construct::Engagement),
        ("Table II — understanding medians", Construct::Understanding),
        ("Table III — instructor medians", Construct::Instructor),
    ] {
        let rows = regenerate_table(construct, seed);
        out.push_str(&render_table(title, &rows));
        out.push('\n');
    }
    out.push_str("Fig. 6 series (medians per question per institution):\n");
    for (q, medians) in fig6_series(seed) {
        let cells: Vec<String> = medians
            .iter()
            .map(|m| m.map_or("NA".into(), |v| format!("{v:.1}")))
            .collect();
        let _ = writeln!(out, "  {:<72} {}", truncate(q.label(), 71), cells.join("  "));
    }
    out.push('\n');
    out.push_str("Response histograms (pooled):\n");
    out.push_str(&histogram_report(seed));
    out.push('\n');
    out.push_str("Fig. 8 — pre/post transitions:\n");
    out.push_str(&fig8_report(seed));
    out.push('\n');
    out.push_str(&jordan_report(seed));
    out.push('\n');
    out.push_str("§VI statistical analysis (McNemar per concept, pooled):\n");
    out.push_str(&crate::longitudinal::render_analysis(
        &crate::longitudinal::pooled_analysis(1, seed),
        0.05,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x5EED;

    #[test]
    fn tables_match_published_values_exactly() {
        for construct in [
            Construct::Engagement,
            Construct::Understanding,
            Construct::Instructor,
        ] {
            let rows = regenerate_table(construct, SEED);
            assert!(table_matches(&rows), "{construct:?} table mismatch");
        }
    }

    #[test]
    fn table_i_renders_with_na() {
        let rows = regenerate_table(Construct::Engagement, SEED);
        let s = render_table("Table I", &rows);
        assert!(s.contains("I had fun"));
        assert!(s.contains("NA")); // TNTech's missing interest cell
        assert!(!s.contains('!'), "no mismatches expected:\n{s}");
    }

    #[test]
    fn table_iii_has_websters_nas() {
        let rows = regenerate_table(Construct::Instructor, SEED);
        // Last column (Webster) of the last three rows is NA.
        for row in &rows[1..] {
            assert_eq!(row.cells[5].published, None);
            assert_eq!(row.cells[5].measured, None);
        }
        assert!(table_matches(&rows));
    }

    #[test]
    fn fig6_covers_15_published_questions() {
        let series = fig6_series(SEED);
        assert_eq!(series.len(), 15);
        for (q, medians) in &series {
            assert_eq!(medians.len(), 6, "{q:?}");
        }
    }

    #[test]
    fn fig8_report_contains_key_rows() {
        let s = fig8_report(SEED);
        assert!(s.contains("Task Decomposition"));
        assert!(s.contains("Pipelining"));
        // TNTech cohort size shows up.
        assert!(s.contains("172"));
    }

    #[test]
    fn histogram_report_covers_published_questions() {
        let s = histogram_report(SEED);
        // 15 published questions (3 unpublished ones have no responses).
        assert_eq!(s.lines().count(), 16);
        assert!(s.contains("I had fun"));
        assert!(s.contains('%'));
    }

    #[test]
    fn jordan_report_shows_59_percent() {
        let s = jordan_report(SEED);
        assert!(s.contains("29 submissions"));
        assert!(s.contains("59%"), "{s}");
    }

    #[test]
    fn full_report_contains_every_section() {
        let r = full_report(SEED);
        for needle in [
            "Table I",
            "Table II",
            "Table III",
            "Fig. 6",
            "histograms",
            "Fig. 8",
            "Jordan dependency-graph study",
            "McNemar",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn cell_matching_rules() {
        assert!(Cell {
            published: None,
            measured: None
        }
        .matches());
        assert!(Cell {
            published: Some(4.5),
            measured: Some(4.5)
        }
        .matches());
        assert!(!Cell {
            published: Some(4.5),
            measured: Some(4.0)
        }
        .matches());
        assert!(!Cell {
            published: Some(4.0),
            measured: None
        }
        .matches());
    }
}
