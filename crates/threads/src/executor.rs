//! Real-thread flag coloring.
//!
//! Workers run inside `catch_unwind`, so one panicking thread downs only
//! itself: its strokes are discarded, its panic message lands in
//! [`Outcome::worker_faults`], and the survivors keep coloring. The
//! per-color marker mutexes recover from poisoning, so a worker that dies
//! while holding a marker does not wedge the rest of the team — the
//! threaded analogue of the classroom's "pick up the dropped marker and
//! keep going".

use crate::workload::CellWorkload;
use flagsim_core::work::{PreparedFlag, WorkItem};
use flagsim_grid::{Color, Grid};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-worker result: painted strokes, busy time, work checksum.
type WorkerResult = (Vec<(u32, Color)>, Duration, u64);

/// A worker thread that died mid-run (panicked), with the panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker index (position in the assignment list / spawn order).
    pub worker: usize,
    /// The panic payload, stringified.
    pub message: String,
}

/// Deterministic fault injection: down one worker after it colors a set
/// number of cells. `(worker, after_cells)`; `after_cells == 0` downs the
/// worker before it touches any work.
type Injection = Option<(usize, usize)>;

fn trip_injected(inject: Injection, worker: usize, done: usize) {
    if let Some((fw, after)) = inject {
        if fw == worker && done >= after {
            // lint-gate: allow — the panic IS the injected fault; it is
            // caught by catch_unwind and surfaced as a WorkerFault.
            panic!("injected fault: worker {worker} downed after {done} cells"); // lint-gate: allow
        }
    }
}

/// Telemetry name for a mode (static so the disabled path is free).
fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Sequential => "sequential",
        ExecMode::Static => "static",
        ExecMode::SharedImplements => "shared-implements",
        ExecMode::DynamicChunks { .. } => "dynamic-chunks",
    }
}

/// Open the per-worker telemetry scope: label the thread's trace track
/// and start a `"runtime"` span linked to the executor's run span.
fn worker_telemetry(
    w: usize,
    run_id: Option<flagsim_telemetry::SpanId>,
) -> flagsim_telemetry::SpanGuard {
    if flagsim_telemetry::enabled() {
        flagsim_telemetry::set_thread_track(&format!("threads-worker-{w}"));
    }
    flagsim_telemetry::span_linked("runtime", "threads.worker", run_id).arg("worker", w)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_owned()
    }
}

/// How the work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread does everything (the baseline `T₁`).
    Sequential,
    /// One thread per partition, no shared implements — scenario 2/3 on
    /// silicon.
    Static,
    /// One thread per partition, but one mutex per *color* that a thread
    /// must hold while coloring a cell of that color — scenario 4's
    /// single-marker rule, with the OS lock queue playing the waiting
    /// students.
    SharedImplements,
    /// All threads pull fixed-size chunks from a shared queue — dynamic
    /// load balancing (what the classroom can't easily do, but a runtime
    /// can).
    DynamicChunks {
        /// Cells per grab.
        chunk: usize,
    },
}

/// The result of a parallel coloring.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Mode used.
    pub mode: ExecMode,
    /// Threads used.
    pub threads: usize,
    /// Wall-clock time.
    pub wall: Duration,
    /// Per-thread busy time (sum of their own cell work; zero for a
    /// worker that died).
    pub per_thread_busy: Vec<Duration>,
    /// The colored grid.
    pub grid: Grid,
    /// Checksum of all cell computations (proves the work happened).
    pub checksum: u64,
    /// Cells colored.
    pub cells: usize,
    /// Workers that panicked mid-run; their strokes were discarded, the
    /// rest of the team finished.
    pub worker_faults: Vec<WorkerFault>,
}

impl Outcome {
    /// Whether the colored grid matches the reference exactly on the
    /// colored cells.
    pub fn verify(&self, flag: &PreparedFlag) -> bool {
        self.grid
            .iter()
            .all(|(id, c)| !c.is_painted() || c == flag.reference.get(id))
    }

    /// Wall seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// True when every worker survived.
    pub fn all_workers_survived(&self) -> bool {
        self.worker_faults.is_empty()
    }
}

/// The parallel colorer: a prepared flag plus a per-cell workload.
pub struct ParallelColorer<'a> {
    flag: &'a PreparedFlag,
    workload: CellWorkload,
    inject: Injection,
}

impl<'a> ParallelColorer<'a> {
    /// Build for a flag with a workload.
    pub fn new(flag: &'a PreparedFlag, workload: CellWorkload) -> Self {
        ParallelColorer {
            flag,
            workload,
            inject: None,
        }
    }

    /// Down worker `worker` with a deliberate panic after it colors
    /// `after_cells` cells (0 = before any work) — for resilience tests
    /// and demos.
    pub fn with_injected_panic(mut self, worker: usize, after_cells: usize) -> Self {
        self.inject = Some((worker, after_cells));
        self
    }

    /// Execute `assignments` under `mode`. For `Sequential`, assignments
    /// are concatenated onto one thread; for `DynamicChunks` they are
    /// concatenated into a shared queue served by `assignments.len()`
    /// threads.
    pub fn run(&self, assignments: &[Vec<WorkItem>], mode: ExecMode) -> Outcome {
        let _run_span = flagsim_telemetry::span("sim", "threads.run")
            .arg("mode", mode_name(mode))
            .arg("parts", assignments.len());
        match mode {
            ExecMode::Sequential => {
                let all: Vec<WorkItem> =
                    assignments.iter().flatten().copied().collect();
                self.run_static(std::slice::from_ref(&all), mode)
            }
            ExecMode::Static => self.run_static(assignments, mode),
            ExecMode::SharedImplements => self.run_shared(assignments),
            ExecMode::DynamicChunks { chunk } => self.run_dynamic(assignments, chunk),
        }
    }

    /// Per-thread buffers, merged after the join — no shared mutable grid,
    /// no locks, no unsafe.
    fn run_static(&self, assignments: &[Vec<WorkItem>], mode: ExecMode) -> Outcome {
        let workload = self.workload;
        let inject = self.inject;
        let run_id = flagsim_telemetry::current_span();
        let start = Instant::now();
        let results: Vec<Result<WorkerResult, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .enumerate()
                .map(|(w, items)| {
                    scope.spawn(move || {
                        let _worker_span = worker_telemetry(w, run_id);
                        catch_unwind(AssertUnwindSafe(|| {
                            trip_injected(inject, w, 0);
                            let t0 = Instant::now();
                            let mut buf = Vec::with_capacity(items.len());
                            let mut sum = 0u64;
                            for (done, item) in items.iter().enumerate() {
                                sum ^= workload
                                    .color_one_cell(item.kind, u64::from(item.cell.0));
                                buf.push((item.cell.0, item.color));
                                trip_injected(inject, w, done + 1);
                            }
                            (buf, t0.elapsed(), sum)
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(Self::collect_worker).collect()
        });
        let wall = start.elapsed();
        self.merge(results, mode, assignments.iter().map(Vec::len).sum(), wall)
    }

    /// One mutex per color: a thread must hold the color's "marker" while
    /// coloring a cell of that color (it re-locks only on color change,
    /// like the classroom's keep-until-color-change policy).
    fn run_shared(&self, assignments: &[Vec<WorkItem>]) -> Outcome {
        let workload = self.workload;
        let inject = self.inject;
        // Build the marker set.
        let mut colors: Vec<Color> = Vec::new();
        for part in assignments {
            for item in part {
                if !colors.contains(&item.color) {
                    colors.push(item.color);
                }
            }
        }
        let markers: BTreeMap<Color, Mutex<()>> =
            colors.iter().map(|&c| (c, Mutex::new(()))).collect();
        let markers = &markers;

        let run_id = flagsim_telemetry::current_span();
        let start = Instant::now();
        let results: Vec<Result<WorkerResult, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .enumerate()
                .map(|(w, items)| {
                    scope.spawn(move || {
                        let _worker_span = worker_telemetry(w, run_id);
                        catch_unwind(AssertUnwindSafe(|| {
                            trip_injected(inject, w, 0);
                            let t0 = Instant::now();
                            let mut buf = Vec::with_capacity(items.len());
                            let mut sum = 0u64;
                            let mut i = 0;
                            while i < items.len() {
                                let color = items[i].color;
                                // The lock recovers from poisoning, so a
                                // marker dropped by a dead worker is
                                // picked up, not mourned.
                                let _marker = markers[&color].lock();
                                // Color the whole same-color run under one hold.
                                while i < items.len() && items[i].color == color {
                                    let item = items[i];
                                    sum ^= workload
                                        .color_one_cell(item.kind, u64::from(item.cell.0));
                                    buf.push((item.cell.0, item.color));
                                    i += 1;
                                    trip_injected(inject, w, i);
                                }
                            }
                            (buf, t0.elapsed(), sum)
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(Self::collect_worker).collect()
        });
        let wall = start.elapsed();
        self.merge(
            results,
            ExecMode::SharedImplements,
            assignments.iter().map(Vec::len).sum(),
            wall,
        )
    }

    /// A shared atomic cursor over the concatenated work list; threads
    /// grab `chunk` cells at a time.
    fn run_dynamic(&self, assignments: &[Vec<WorkItem>], chunk: usize) -> Outcome {
        assert!(chunk > 0, "chunk must be nonzero");
        let workload = self.workload;
        let inject = self.inject;
        let all: Vec<WorkItem> = assignments.iter().flatten().copied().collect();
        let threads = assignments.len().max(1);
        let cursor = AtomicUsize::new(0);
        let (all_ref, cursor_ref) = (&all, &cursor);

        let run_id = flagsim_telemetry::current_span();
        let start = Instant::now();
        let results: Vec<Result<WorkerResult, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let _worker_span = worker_telemetry(w, run_id);
                        catch_unwind(AssertUnwindSafe(|| {
                            trip_injected(inject, w, 0);
                            let t0 = Instant::now();
                            let mut buf = Vec::new();
                            let mut sum = 0u64;
                            let mut done = 0;
                            loop {
                                let at = cursor_ref.fetch_add(chunk, Ordering::Relaxed);
                                if at >= all_ref.len() {
                                    break;
                                }
                                let end = (at + chunk).min(all_ref.len());
                                for item in &all_ref[at..end] {
                                    sum ^= workload
                                        .color_one_cell(item.kind, u64::from(item.cell.0));
                                    buf.push((item.cell.0, item.color));
                                    done += 1;
                                    trip_injected(inject, w, done);
                                }
                            }
                            (buf, t0.elapsed(), sum)
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(Self::collect_worker).collect()
        });
        let wall = start.elapsed();
        self.merge(results, ExecMode::DynamicChunks { chunk }, all.len(), wall)
    }

    /// Join one worker, folding both a caught panic and a panic that
    /// somehow escaped the catch (e.g. in the timing code) into the same
    /// error shape.
    fn collect_worker(
        h: std::thread::ScopedJoinHandle<'_, std::thread::Result<WorkerResult>>,
    ) -> Result<WorkerResult, String> {
        match h.join() {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(payload)) | Err(payload) => Err(panic_message(payload)),
        }
    }

    fn merge(
        &self,
        results: Vec<Result<WorkerResult, String>>,
        mode: ExecMode,
        cells: usize,
        wall: Duration,
    ) -> Outcome {
        let mut grid = Grid::new(self.flag.width, self.flag.height);
        let mut checksum = 0u64;
        let mut per_thread_busy = Vec::with_capacity(results.len());
        let mut worker_faults = Vec::new();
        let threads = results.len();
        for (worker, result) in results.into_iter().enumerate() {
            match result {
                Ok((buf, busy, sum)) => {
                    for (cell, color) in buf {
                        grid.paint(flagsim_grid::CellId(cell), color);
                    }
                    per_thread_busy.push(busy);
                    checksum ^= sum;
                }
                Err(message) => {
                    per_thread_busy.push(Duration::ZERO);
                    worker_faults.push(WorkerFault { worker, message });
                }
            }
        }
        if flagsim_telemetry::enabled() {
            flagsim_telemetry::count("threads.runs", 1);
            flagsim_telemetry::count("threads.cells_colored", cells as u64);
            flagsim_telemetry::count("threads.worker_faults", worker_faults.len() as u64);
            flagsim_telemetry::observe("threads.wall_ms", wall.as_secs_f64() * 1e3);
        }
        Outcome {
            mode,
            threads,
            wall,
            per_thread_busy,
            grid,
            checksum,
            cells,
            worker_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    use flagsim_core::work::PreparedFlag;
    use flagsim_flags::library;

    fn setup() -> (PreparedFlag, Vec<Vec<WorkItem>>) {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        (pf, assignments)
    }

    #[test]
    fn every_mode_produces_the_same_flag() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let modes = [
            ExecMode::Sequential,
            ExecMode::Static,
            ExecMode::SharedImplements,
            ExecMode::DynamicChunks { chunk: 8 },
        ];
        let mut checksums = Vec::new();
        for mode in modes {
            let out = colorer.run(&assignments, mode);
            assert!(out.verify(&pf), "{mode:?} colored the wrong flag");
            assert_eq!(out.cells, 96, "{mode:?}");
            assert!(out.grid.is_complete(), "{mode:?}");
            assert!(out.all_workers_survived(), "{mode:?}");
            checksums.push(out.checksum);
        }
        // All modes did the identical computation.
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn static_uses_one_thread_per_part() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::Static);
        assert_eq!(out.threads, 4);
        assert_eq!(out.per_thread_busy.len(), 4);
        let seq = colorer.run(&assignments, ExecMode::Sequential);
        assert_eq!(seq.threads, 1);
    }

    #[test]
    fn dynamic_covers_everything_with_tiny_chunks() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::DynamicChunks { chunk: 1 });
        assert!(out.verify(&pf));
        assert!(out.grid.is_complete());
    }

    #[test]
    fn skipped_colors_leave_blanks_and_still_verify() {
        let pf = PreparedFlag::new(&library::jordan());
        let skip = [Color::White];
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &skip);
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::Sequential);
        assert!(out.verify(&pf));
        assert!(!out.grid.is_complete()); // white cells left blank
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_panics() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let _ = colorer.run(&assignments, ExecMode::DynamicChunks { chunk: 0 });
    }

    #[test]
    fn panicking_worker_downs_only_itself_in_static_mode() {
        let (pf, assignments) = setup();
        let colorer =
            ParallelColorer::new(&pf, CellWorkload::default()).with_injected_panic(1, 3);
        let out = colorer.run(&assignments, ExecMode::Static);
        assert_eq!(out.worker_faults.len(), 1);
        assert_eq!(out.worker_faults[0].worker, 1);
        assert!(out.worker_faults[0].message.contains("injected fault"));
        // The dead worker's strokes are discarded wholesale; the other
        // three slices (24 cells each) are painted and correct.
        assert!(out.verify(&pf));
        assert!(!out.grid.is_complete());
        let painted = out.grid.iter().filter(|(_, c)| c.is_painted()).count();
        assert_eq!(painted, 72);
        assert_eq!(out.per_thread_busy[1], Duration::ZERO);
        assert!(out.per_thread_busy[0] > Duration::ZERO);
    }

    #[test]
    fn marker_dropped_by_dead_worker_is_recovered() {
        // Worker 1 dies *while holding a color mutex* (mid same-color
        // run). The poisoned lock must be recovered so the other three
        // workers still finish their slices — no hang, no cascade.
        let (pf, assignments) = setup();
        let colorer =
            ParallelColorer::new(&pf, CellWorkload::default()).with_injected_panic(1, 2);
        let out = colorer.run(&assignments, ExecMode::SharedImplements);
        assert_eq!(out.worker_faults.len(), 1);
        assert_eq!(out.worker_faults[0].worker, 1);
        assert!(out.verify(&pf));
        let painted = out.grid.iter().filter(|(_, c)| c.is_painted()).count();
        assert_eq!(painted, 72, "three survivors paint their 24-cell slices");
        // Exactly one worker idle (the dead one).
        let dead = out
            .per_thread_busy
            .iter()
            .filter(|b| **b == Duration::ZERO)
            .count();
        assert_eq!(dead, 1);
    }

    #[test]
    fn dynamic_survivors_drain_the_whole_queue() {
        // Worker 0 dies before touching any work; the other three drain
        // the shared queue, so the flag still completes.
        let (pf, assignments) = setup();
        let colorer =
            ParallelColorer::new(&pf, CellWorkload::default()).with_injected_panic(0, 0);
        let out = colorer.run(&assignments, ExecMode::DynamicChunks { chunk: 8 });
        assert_eq!(out.worker_faults.len(), 1);
        assert_eq!(out.worker_faults[0].worker, 0);
        assert!(out.verify(&pf));
        assert!(out.grid.is_complete(), "survivors cover the dead worker's share");
        assert_eq!(out.per_thread_busy[0], Duration::ZERO);
    }
}
