//! Real-thread flag coloring.

use crate::workload::CellWorkload;
use flagsim_core::work::{PreparedFlag, WorkItem};
use flagsim_grid::{Color, Grid};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-worker result: painted strokes, busy time, work checksum.
type WorkerResult = (Vec<(u32, Color)>, Duration, u64);

/// How the work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread does everything (the baseline `T₁`).
    Sequential,
    /// One thread per partition, no shared implements — scenario 2/3 on
    /// silicon.
    Static,
    /// One thread per partition, but one mutex per *color* that a thread
    /// must hold while coloring a cell of that color — scenario 4's
    /// single-marker rule, with the OS lock queue playing the waiting
    /// students.
    SharedImplements,
    /// All threads pull fixed-size chunks from a shared queue — dynamic
    /// load balancing (what the classroom can't easily do, but a runtime
    /// can).
    DynamicChunks {
        /// Cells per grab.
        chunk: usize,
    },
}

/// The result of a parallel coloring.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Mode used.
    pub mode: ExecMode,
    /// Threads used.
    pub threads: usize,
    /// Wall-clock time.
    pub wall: Duration,
    /// Per-thread busy time (sum of their own cell work).
    pub per_thread_busy: Vec<Duration>,
    /// The colored grid.
    pub grid: Grid,
    /// Checksum of all cell computations (proves the work happened).
    pub checksum: u64,
    /// Cells colored.
    pub cells: usize,
}

impl Outcome {
    /// Whether the colored grid matches the reference exactly on the
    /// colored cells.
    pub fn verify(&self, flag: &PreparedFlag) -> bool {
        self.grid
            .iter()
            .all(|(id, c)| !c.is_painted() || c == flag.reference.get(id))
    }

    /// Wall seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }
}

/// The parallel colorer: a prepared flag plus a per-cell workload.
pub struct ParallelColorer<'a> {
    flag: &'a PreparedFlag,
    workload: CellWorkload,
}

impl<'a> ParallelColorer<'a> {
    /// Build for a flag with a workload.
    pub fn new(flag: &'a PreparedFlag, workload: CellWorkload) -> Self {
        ParallelColorer { flag, workload }
    }

    /// Execute `assignments` under `mode`. For `Sequential`, assignments
    /// are concatenated onto one thread; for `DynamicChunks` they are
    /// concatenated into a shared queue served by `assignments.len()`
    /// threads.
    pub fn run(&self, assignments: &[Vec<WorkItem>], mode: ExecMode) -> Outcome {
        match mode {
            ExecMode::Sequential => {
                let all: Vec<WorkItem> =
                    assignments.iter().flatten().copied().collect();
                self.run_static(std::slice::from_ref(&all), mode)
            }
            ExecMode::Static => self.run_static(assignments, mode),
            ExecMode::SharedImplements => self.run_shared(assignments),
            ExecMode::DynamicChunks { chunk } => self.run_dynamic(assignments, chunk),
        }
    }

    /// Per-thread buffers, merged after the join — no shared mutable grid,
    /// no locks, no unsafe.
    fn run_static(&self, assignments: &[Vec<WorkItem>], mode: ExecMode) -> Outcome {
        let workload = self.workload;
        let start = Instant::now();
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|items| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut buf = Vec::with_capacity(items.len());
                        let mut sum = 0u64;
                        for item in items {
                            sum ^= workload.color_one_cell(item.kind, u64::from(item.cell.0));
                            buf.push((item.cell.0, item.color));
                        }
                        (buf, t0.elapsed(), sum)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let wall = start.elapsed();
        self.merge(results, mode, assignments.iter().map(Vec::len).sum(), wall)
    }

    /// One mutex per color: a thread must hold the color's "marker" while
    /// coloring a cell of that color (it re-locks only on color change,
    /// like the classroom's keep-until-color-change policy).
    fn run_shared(&self, assignments: &[Vec<WorkItem>]) -> Outcome {
        let workload = self.workload;
        // Build the marker set.
        let mut colors: Vec<Color> = Vec::new();
        for part in assignments {
            for item in part {
                if !colors.contains(&item.color) {
                    colors.push(item.color);
                }
            }
        }
        let markers: BTreeMap<Color, Mutex<()>> =
            colors.iter().map(|&c| (c, Mutex::new(()))).collect();
        let markers = &markers;

        let start = Instant::now();
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|items| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut buf = Vec::with_capacity(items.len());
                        let mut sum = 0u64;
                        let mut i = 0;
                        while i < items.len() {
                            let color = items[i].color;
                            let _marker = markers[&color].lock();
                            // Color the whole same-color run under one hold.
                            while i < items.len() && items[i].color == color {
                                let item = items[i];
                                sum ^= workload
                                    .color_one_cell(item.kind, u64::from(item.cell.0));
                                buf.push((item.cell.0, item.color));
                                i += 1;
                            }
                        }
                        (buf, t0.elapsed(), sum)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let wall = start.elapsed();
        self.merge(
            results,
            ExecMode::SharedImplements,
            assignments.iter().map(Vec::len).sum(),
            wall,
        )
    }

    /// A shared atomic cursor over the concatenated work list; threads
    /// grab `chunk` cells at a time.
    fn run_dynamic(&self, assignments: &[Vec<WorkItem>], chunk: usize) -> Outcome {
        assert!(chunk > 0, "chunk must be nonzero");
        let workload = self.workload;
        let all: Vec<WorkItem> = assignments.iter().flatten().copied().collect();
        let threads = assignments.len().max(1);
        let cursor = AtomicUsize::new(0);
        let (all_ref, cursor_ref) = (&all, &cursor);

        let start = Instant::now();
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let mut buf = Vec::new();
                        let mut sum = 0u64;
                        loop {
                            let at = cursor_ref.fetch_add(chunk, Ordering::Relaxed);
                            if at >= all_ref.len() {
                                break;
                            }
                            let end = (at + chunk).min(all_ref.len());
                            for item in &all_ref[at..end] {
                                sum ^= workload
                                    .color_one_cell(item.kind, u64::from(item.cell.0));
                                buf.push((item.cell.0, item.color));
                            }
                        }
                        (buf, t0.elapsed(), sum)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let wall = start.elapsed();
        self.merge(results, ExecMode::DynamicChunks { chunk }, all.len(), wall)
    }

    fn merge(
        &self,
        results: Vec<WorkerResult>,
        mode: ExecMode,
        cells: usize,
        wall: Duration,
    ) -> Outcome {
        let mut grid = Grid::new(self.flag.width, self.flag.height);
        let mut checksum = 0u64;
        let mut per_thread_busy = Vec::with_capacity(results.len());
        let threads = results.len();
        for (buf, busy, sum) in results {
            for (cell, color) in buf {
                grid.paint(flagsim_grid::CellId(cell), color);
            }
            per_thread_busy.push(busy);
            checksum ^= sum;
        }
        Outcome {
            mode,
            threads,
            wall,
            per_thread_busy,
            grid,
            checksum,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    use flagsim_core::work::PreparedFlag;
    use flagsim_flags::library;

    fn setup() -> (PreparedFlag, Vec<Vec<WorkItem>>) {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        (pf, assignments)
    }

    #[test]
    fn every_mode_produces_the_same_flag() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let modes = [
            ExecMode::Sequential,
            ExecMode::Static,
            ExecMode::SharedImplements,
            ExecMode::DynamicChunks { chunk: 8 },
        ];
        let mut checksums = Vec::new();
        for mode in modes {
            let out = colorer.run(&assignments, mode);
            assert!(out.verify(&pf), "{mode:?} colored the wrong flag");
            assert_eq!(out.cells, 96, "{mode:?}");
            assert!(out.grid.is_complete(), "{mode:?}");
            checksums.push(out.checksum);
        }
        // All modes did the identical computation.
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn static_uses_one_thread_per_part() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::Static);
        assert_eq!(out.threads, 4);
        assert_eq!(out.per_thread_busy.len(), 4);
        let seq = colorer.run(&assignments, ExecMode::Sequential);
        assert_eq!(seq.threads, 1);
    }

    #[test]
    fn dynamic_covers_everything_with_tiny_chunks() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::DynamicChunks { chunk: 1 });
        assert!(out.verify(&pf));
        assert!(out.grid.is_complete());
    }

    #[test]
    fn skipped_colors_leave_blanks_and_still_verify() {
        let pf = PreparedFlag::new(&library::jordan());
        let skip = [Color::White];
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &skip);
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::Sequential);
        assert!(out.verify(&pf));
        assert!(!out.grid.is_complete()); // white cells left blank
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_panics() {
        let (pf, assignments) = setup();
        let colorer = ParallelColorer::new(&pf, CellWorkload::default());
        let _ = colorer.run(&assignments, ExecMode::DynamicChunks { chunk: 0 });
    }
}
