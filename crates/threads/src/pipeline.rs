//! A real staged pipeline.
//!
//! §III-C: the coordinated marker-passing of scenario 4 "mimick\[s\] the
//! movement of data through an arithmetic pipeline where the data is
//! being passed between stages as it is needed", and "the pipeline takes
//! time to fill (the processors are idle until they get the first
//! implement)". This module builds that pipeline out of actual threads:
//! one stage per stripe color, connected by channels; the work units are
//! flag columns flowing through the stages. Stage `k` colors a column's
//! cells of stripe `k`, then passes the column on.

use crate::workload::CellWorkload;
use flagsim_core::work::PreparedFlag;
use flagsim_grid::{CellId, Color, Coord, Grid};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One work unit: a column index plus the strokes already applied.
struct Unit {
    column: u32,
    strokes: Vec<(CellId, Color)>,
    checksum: u64,
}

/// The result of a pipeline execution.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Stages (one per color band).
    pub stages: usize,
    /// Columns pushed through.
    pub columns: u32,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// Wall-clock until the *first* column left the last stage — the
    /// pipeline fill time the paper talks about.
    pub fill: Duration,
    /// The colored grid.
    pub grid: Grid,
    /// Work checksum (all stages really computed).
    pub checksum: u64,
}

impl PipelineOutcome {
    /// Whether the grid matches the reference on painted cells.
    pub fn verify(&self, flag: &PreparedFlag) -> bool {
        self.grid
            .iter()
            .all(|(id, c)| !c.is_painted() || c == flag.reference.get(id))
    }
}

/// Run the flag through a `bands`-stage pipeline: stage `k` owns the
/// `k`-th horizontal band and colors each passing column's cells inside
/// it. Works for any flag (stages just paint whatever the reference says
/// their band's cells are).
pub fn run_pipeline(flag: &PreparedFlag, bands: u32, workload: CellWorkload) -> PipelineOutcome {
    assert!(bands > 0 && bands <= flag.height, "bad band count");
    let width = flag.width;
    let height = flag.height;
    let band_rows: Vec<(u32, u32)> = (0..bands)
        .map(|k| {
            let top = height * k / bands;
            let bottom = height * (k + 1) / bands;
            (top, bottom)
        })
        .collect();

    let start = Instant::now();
    let (outcome_tx, outcome_rx) = mpsc::channel::<Unit>();
    let (first_tx, first_rx) = mpsc::channel::<Duration>();

    std::thread::scope(|scope| {
        // Build the chain back-to-front: last stage sends to outcome_tx.
        let mut next_tx = outcome_tx.clone();
        for k in (0..bands as usize).rev() {
            let (tx, rx) = mpsc::channel::<Unit>();
            let (top, bottom) = band_rows[k];
            let stage_out = next_tx.clone();
            let reference = &flag.reference;
            let first_tx = first_tx.clone();
            let is_last = k == bands as usize - 1;
            scope.spawn(move || {
                let mut first_sent = false;
                for mut unit in rx {
                    for y in top..bottom {
                        let id = Coord::new(unit.column, y).to_id(width);
                        let color = reference.get(id);
                        if color.is_painted() {
                            unit.checksum ^= workload
                                .color_one_cell(flagsim_agents::CellKind::Interior, u64::from(id.0));
                            unit.strokes.push((id, color));
                        }
                    }
                    if is_last && !first_sent {
                        first_sent = true;
                        let _ = first_tx.send(start.elapsed());
                    }
                    if stage_out.send(unit).is_err() {
                        break;
                    }
                }
            });
            next_tx = tx;
        }
        drop(outcome_tx);
        drop(first_tx);

        // Feed the columns in order.
        for column in 0..width {
            next_tx
                .send(Unit {
                    column,
                    strokes: Vec::with_capacity(height as usize),
                    checksum: 0,
                })
                .expect("pipeline alive");
        }
        drop(next_tx);
    });

    // Collect.
    let mut grid = Grid::new(width, height);
    let mut checksum = 0u64;
    let mut columns = 0u32;
    for unit in outcome_rx {
        for (id, color) in unit.strokes {
            grid.paint(id, color);
        }
        checksum ^= unit.checksum;
        columns += 1;
    }
    let wall = start.elapsed();
    let fill = first_rx.recv().unwrap_or(wall);
    PipelineOutcome {
        stages: bands as usize,
        columns,
        wall,
        fill,
        grid,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    #[test]
    fn pipeline_colors_mauritius_correctly() {
        let flag = PreparedFlag::new(&library::mauritius());
        let out = run_pipeline(&flag, 4, CellWorkload::default());
        assert_eq!(out.stages, 4);
        assert_eq!(out.columns, 12);
        assert!(out.verify(&flag));
        assert!(out.grid.is_complete());
        assert!(out.fill <= out.wall);
    }

    #[test]
    fn single_stage_degenerates_to_sequential() {
        let flag = PreparedFlag::new(&library::mauritius());
        let out = run_pipeline(&flag, 1, CellWorkload::default());
        assert!(out.verify(&flag));
        assert!(out.grid.is_complete());
    }

    #[test]
    fn works_on_layered_flags_too() {
        let flag = PreparedFlag::new(&library::great_britain());
        let out = run_pipeline(&flag, 3, CellWorkload::default());
        assert!(out.verify(&flag));
        assert!(out.grid.is_complete());
    }

    #[test]
    fn checksum_matches_band_count_independence() {
        // Same cells, different staging: the total computation (xor over
        // per-cell spins keyed by cell id) must be identical.
        let flag = PreparedFlag::new(&library::mauritius());
        let a = run_pipeline(&flag, 1, CellWorkload::default());
        let b = run_pipeline(&flag, 4, CellWorkload::default());
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    #[should_panic(expected = "bad band count")]
    fn too_many_bands_panics() {
        let flag = PreparedFlag::new(&library::mauritius());
        let _ = run_pipeline(&flag, 999, CellWorkload::default());
    }
}
