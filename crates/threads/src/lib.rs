//! # flagsim-threads
//!
//! The activity on real cores: the same flag partitions the classroom
//! uses, executed by actual OS threads over simulated per-cell work.
//!
//! This is the bridge from the unplugged metaphor back to hardware —
//! the Webster instructor's NVIDIA video moment ("one barrel per pixel"),
//! runnable:
//!
//! * [`executor`] — sequential baseline, one-thread-per-partition static
//!   execution, dynamic chunk-stealing execution, and a shared-implement
//!   mode where one [`parking_lot::Mutex`] per color plays the role of the
//!   team's single marker (scenario 4's contention, now with real lock
//!   queues).
//! * [`workload`] — a calibrated spin that stands in for "coloring one
//!   cell" (deterministic CPU work, no sleeps, so contention effects are
//!   real).
//! * [`gpu`] — the data-parallel "one shot" contrast: how many sequential
//!   trigger pulls a CPU barrel needs versus a GPU's single volley.
//!
//! Every mode produces the same flag, verified cell-for-cell against the
//! reference raster. Wall-clock speedups obviously depend on the machine's
//! core count (a single-core host will show none — which is itself the
//! activity's "technology differences matter" lesson).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod gpu;
pub mod pipeline;
pub mod scaling;
pub mod workload;

pub use executor::{ExecMode, Outcome, ParallelColorer, WorkerFault};
pub use pipeline::{run_pipeline, PipelineOutcome};
pub use scaling::{implied_serial_fraction, speedup_curve, ScalePoint};
pub use workload::CellWorkload;
