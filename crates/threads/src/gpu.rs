//! The CPU-barrel vs GPU-volley contrast.
//!
//! The Webster classroom showed NVIDIA's paintball demo: a CPU is "a
//! single barrel … repeatedly aimed and fired to produce one dot at a
//! time", a GPU "uses one barrel per pixel so that the entire image … is
//! drawn in a single shot". This module makes the contrast quantitative:
//! a device is characterized by how many cells it colors per trigger pull
//! and how long a pull takes; the whole image costs
//! `ceil(cells / barrels) × pull_time`.

use flagsim_core::work::PreparedFlag;

/// A paintball device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaintballDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Barrels firing simultaneously.
    pub barrels: usize,
    /// Seconds per trigger pull (aim + fire + re-aim). One barrel re-aims
    /// fast; a wall of barrels takes longer to set up per volley — but
    /// only fires once.
    pub secs_per_shot: f64,
}

impl PaintballDevice {
    /// The single-barrel CPU gun from the video.
    pub fn cpu() -> Self {
        PaintballDevice {
            name: "CPU (one barrel)",
            barrels: 1,
            secs_per_shot: 0.5,
        }
    }

    /// The one-barrel-per-pixel GPU wall, sized to an image.
    pub fn gpu(pixels: usize) -> Self {
        PaintballDevice {
            name: "GPU (one barrel per pixel)",
            barrels: pixels.max(1),
            secs_per_shot: 5.0,
        }
    }

    /// Trigger pulls needed for `cells` pixels.
    pub fn shots_for(&self, cells: usize) -> usize {
        cells.div_ceil(self.barrels)
    }

    /// Seconds to paint `cells` pixels.
    pub fn secs_for(&self, cells: usize) -> f64 {
        self.shots_for(cells) as f64 * self.secs_per_shot
    }
}

/// The comparison for one flag: shots and seconds for CPU vs GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotComparison {
    /// Colorable cells in the flag.
    pub cells: usize,
    /// CPU shots (== cells).
    pub cpu_shots: usize,
    /// CPU seconds.
    pub cpu_secs: f64,
    /// GPU shots (== 1).
    pub gpu_shots: usize,
    /// GPU seconds.
    pub gpu_secs: f64,
}

/// Compare the devices on a prepared flag.
pub fn compare(flag: &PreparedFlag) -> ShotComparison {
    let cells = flag.total_items(&[]);
    let cpu = PaintballDevice::cpu();
    let gpu = PaintballDevice::gpu(cells);
    ShotComparison {
        cells,
        cpu_shots: cpu.shots_for(cells),
        cpu_secs: cpu.secs_for(cells),
        gpu_shots: gpu.shots_for(cells),
        gpu_secs: gpu.secs_for(cells),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    #[test]
    fn cpu_needs_one_shot_per_cell_gpu_one_total() {
        let pf = PreparedFlag::new(&library::mauritius());
        let c = compare(&pf);
        assert_eq!(c.cells, 96);
        assert_eq!(c.cpu_shots, 96);
        assert_eq!(c.gpu_shots, 1);
        assert!(c.cpu_secs > c.gpu_secs);
    }

    #[test]
    fn partial_volley_rounds_up() {
        let half_wall = PaintballDevice {
            name: "half",
            barrels: 50,
            secs_per_shot: 1.0,
        };
        assert_eq!(half_wall.shots_for(96), 2);
        assert_eq!(half_wall.shots_for(100), 2);
        assert_eq!(half_wall.shots_for(101), 3);
        assert_eq!(half_wall.shots_for(0), 0);
    }

    #[test]
    fn mona_lisa_scale() {
        // The video's image is far larger than our grids; the contrast
        // only grows with size.
        let small = compare(&PreparedFlag::new(&library::mauritius()));
        let big = compare(&PreparedFlag::at_size(&library::mauritius(), 120, 80));
        assert!(big.cpu_secs / big.gpu_secs > small.cpu_secs / small.gpu_secs);
    }
}
