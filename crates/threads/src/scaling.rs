//! Thread-count scaling sweeps.
//!
//! The multicore counterpart of the classroom's team-size sweep: run the
//! same flag at several thread counts, collect wall times, and fit the
//! implied serial fraction. On a single-core host every point ties — the
//! "technology differences matter" lesson — but the API is what a
//! multicore user runs to see the real curve.

use crate::executor::{ExecMode, ParallelColorer};
use crate::workload::CellWorkload;
use flagsim_core::partition::{CellOrder, PartitionStrategy};
use flagsim_core::work::PreparedFlag;
use std::time::Duration;

/// One point of a thread-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Threads used.
    pub threads: u32,
    /// Wall-clock time.
    pub wall: Duration,
    /// Wall-clock speedup vs the 1-thread point.
    pub speedup: f64,
    /// Whether the flag came out correct.
    pub verified: bool,
}

/// Run the vertical-slice partition at each thread count (repeating
/// `reps` times and keeping the fastest — standard practice for
/// wall-clock microbenchmarks) and return the curve.
pub fn speedup_curve(
    flag: &PreparedFlag,
    thread_counts: &[u32],
    workload: CellWorkload,
    reps: usize,
) -> Vec<ScalePoint> {
    assert!(reps > 0, "need at least one repetition");
    let colorer = ParallelColorer::new(flag, workload);
    let mut points = Vec::with_capacity(thread_counts.len());
    let mut t1: Option<Duration> = None;
    for &threads in thread_counts {
        assert!(threads > 0, "zero threads");
        let assignments = PartitionStrategy::VerticalSlices(threads)
            .assignments(flag, CellOrder::RowMajor, &[]);
        let mode = if threads == 1 {
            ExecMode::Sequential
        } else {
            ExecMode::Static
        };
        let mut best: Option<(Duration, bool)> = None;
        for _ in 0..reps {
            let out = colorer.run(&assignments, mode);
            let verified = out.verify(flag);
            let candidate = (out.wall, verified);
            best = Some(match best {
                Some(b) if b.0 <= candidate.0 => b,
                _ => candidate,
            });
        }
        let (wall, verified) = best.expect("reps > 0");
        let base = *t1.get_or_insert(wall);
        points.push(ScalePoint {
            threads,
            wall,
            speedup: base.as_secs_f64() / wall.as_secs_f64().max(1e-12),
            verified,
        });
    }
    points
}

/// The serial fraction implied by a measured curve (Karp–Flatt average),
/// if the curve has usable multi-thread points.
pub fn implied_serial_fraction(points: &[ScalePoint]) -> Option<f64> {
    let pts: Vec<(usize, f64)> = points
        .iter()
        .map(|p| (p.threads as usize, p.speedup))
        .collect();
    flagsim_metrics::fit_amdahl_serial_fraction(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    #[test]
    fn curve_covers_requested_counts_and_verifies() {
        let flag = PreparedFlag::at_size(&library::mauritius(), 48, 32);
        let points = speedup_curve(&flag, &[1, 2, 4], CellWorkload::default(), 2);
        assert_eq!(points.len(), 3);
        assert_eq!(
            points.iter().map(|p| p.threads).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(points.iter().all(|p| p.verified));
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        // Speedups are positive whatever the host's core count.
        assert!(points.iter().all(|p| p.speedup > 0.0));
    }

    #[test]
    fn implied_serial_fraction_exists_for_multithread_curves() {
        let flag = PreparedFlag::at_size(&library::mauritius(), 24, 16);
        let points = speedup_curve(&flag, &[1, 2], CellWorkload::default(), 1);
        // May be large on a 1-core host, but it must be a sane fraction.
        let f = implied_serial_fraction(&points).unwrap();
        assert!((0.0..=1.0).contains(&f), "{f}");
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        let flag = PreparedFlag::new(&library::mauritius());
        let _ = speedup_curve(&flag, &[0], CellWorkload::default(), 1);
    }
}
