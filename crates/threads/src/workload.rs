//! Simulated per-cell CPU work.
//!
//! Coloring a cell becomes a deterministic spin of arithmetic the
//! optimizer cannot remove. Work units (not wall-time sleeps) keep the
//! executor honest: threads genuinely compute, so lock contention and
//! scheduling effects are real, and the "boundary cells are fiddlier"
//! cost shows up as more iterations.

use flagsim_agents::CellKind;
use std::hint::black_box;

/// How much CPU work one cell costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellWorkload {
    /// Spin iterations for an interior cell.
    pub interior_iters: u32,
    /// Spin iterations for a boundary cell (careful edging).
    pub boundary_iters: u32,
}

impl Default for CellWorkload {
    fn default() -> Self {
        // ~a few microseconds per cell on contemporary hardware: large
        // enough to dominate thread-coordination noise on a realistic
        // grid, small enough for fast tests.
        CellWorkload {
            interior_iters: 2_000,
            boundary_iters: 3_200,
        }
    }
}

impl CellWorkload {
    /// A workload scaled by `factor` (for benches that sweep work size).
    pub fn scaled(factor: u32) -> Self {
        let base = CellWorkload::default();
        CellWorkload {
            interior_iters: base.interior_iters * factor,
            boundary_iters: base.boundary_iters * factor,
        }
    }

    /// Iterations for a cell kind.
    pub fn iters(&self, kind: CellKind) -> u32 {
        match kind {
            CellKind::Interior => self.interior_iters,
            CellKind::Boundary => self.boundary_iters,
        }
    }

    /// Perform the work for one cell and return a value derived from it
    /// (so the computation is observably used).
    pub fn color_one_cell(&self, kind: CellKind, seed: u64) -> u64 {
        spin(self.iters(kind), seed)
    }
}

/// The spin kernel: `iters` rounds of a splitmix-style mix, kept alive
/// with `black_box`.
pub fn spin(iters: u32, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x = black_box(x);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_costs_more() {
        let w = CellWorkload::default();
        assert!(w.iters(CellKind::Boundary) > w.iters(CellKind::Interior));
    }

    #[test]
    fn spin_is_deterministic_and_seed_sensitive() {
        assert_eq!(spin(1000, 7), spin(1000, 7));
        assert_ne!(spin(1000, 7), spin(1000, 8));
        assert_ne!(spin(1000, 7), spin(1001, 7));
    }

    #[test]
    fn scaled_multiplies() {
        let w = CellWorkload::scaled(3);
        let base = CellWorkload::default();
        assert_eq!(w.interior_iters, base.interior_iters * 3);
        assert_eq!(w.boundary_iters, base.boundary_iters * 3);
    }
}
