//! Criterion benches, one group per paper artifact (E1–E13): they time
//! the workload that regenerates each table/figure, so `cargo bench`
//! doubles as a performance regression harness for the whole pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_assessment::report as arep;
use flagsim_assessment::survey::Construct;
use flagsim_assessment::{jordan, quiz};
use flagsim_core::config::ActivityConfig;
use flagsim_core::layered;
use flagsim_core::partition::{CellOrder, PartitionStrategy};
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_core::TeamKit;
use flagsim_flags::library;
use flagsim_grid::Color;
use flagsim_threads::{CellWorkload, ExecMode, ParallelColorer};
use std::hint::black_box;

fn team(n: usize) -> Vec<StudentProfile> {
    (1..=n)
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect()
}

/// E1 — the four Fig. 1 scenario simulations.
fn bench_e1_scenarios(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default();
    let mut g = c.benchmark_group("E1_fig1_scenarios");
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let size = sc.team_size(&flag, &cfg);
        g.bench_function(format!("scenario_{n}"), |b| {
            b.iter_batched(
                || team(size),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E2 — warm-up: back-to-back scenario 1 runs with persistent experience.
fn bench_e2_warmup(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default();
    let sc = Scenario::fig1(1);
    c.bench_function("E2_warmup_two_runs", |b| {
        b.iter_batched(
            || vec![StudentProfile::new("P1")],
            |mut t| {
                let r1 = sc.run(&flag, &mut t, &kit, &cfg).unwrap();
                let r2 = sc.run(&flag, &mut t, &kit, &cfg).unwrap();
                black_box((r1.completion, r2.completion))
            },
            BatchSize::SmallInput,
        )
    });
}

/// E3 — implement sweep.
fn bench_e3_implements(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default();
    let sc = Scenario::fig1(1);
    let mut g = c.benchmark_group("E3_implements");
    for kind in ImplementKind::ALL {
        let kit = TeamKit::uniform(kind, &Color::MAURITIUS);
        g.bench_function(kind.name().replace(' ', "_"), |b| {
            b.iter_batched(
                || team(1),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E4 — the Webster comparison (France vs Canada, 3 students).
fn bench_e4_webster(c: &mut Criterion) {
    let cfg = ActivityConfig::default();
    let mut g = c.benchmark_group("E4_webster");
    for spec in [library::france(), library::canada()] {
        let flag = PreparedFlag::new(&spec);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let sc = Scenario::webster(3);
        g.bench_function(spec.name.clone(), |b| {
            b.iter_batched(
                || team(3),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E5 — layered dependency scheduling across the library.
fn bench_e5_dependencies(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_layered_schedules");
    for spec in [library::mauritius(), library::jordan(), library::great_britain()] {
        g.bench_function(spec.name.clone(), |b| {
            b.iter(|| black_box(layered::layered_speedup_curve(&spec, &[1, 2, 4, 8], 2000)))
        });
    }
    g.finish();
}

/// E6/E7/E8 — regenerating Tables I–III from calibrated cohorts.
fn bench_e678_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("E678_tables");
    for (name, construct) in [
        ("table_I", Construct::Engagement),
        ("table_II", Construct::Understanding),
        ("table_III", Construct::Instructor),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(arep::regenerate_table(construct, 7)))
        });
    }
    g.finish();
}

/// E9 — quiz cohort generation + transition measurement (Fig. 8).
fn bench_e9_quiz(c: &mut Criterion) {
    c.bench_function("E9_fig8_transitions", |b| {
        b.iter(|| {
            let records = quiz::generate_quiz_cohort(flagsim_assessment::Institution::TNTech, 7);
            black_box(quiz::measure_transitions(
                &records,
                flagsim_assessment::Concept::Contention,
            ))
        })
    });
}

/// E10 — Jordan submission generation + grading (§V-C).
fn bench_e10_jordan(c: &mut Criterion) {
    c.bench_function("E10_jordan_grading", |b| {
        b.iter(|| black_box(jordan::grade_batch(&jordan::generate_submissions(7))))
    });
}

/// E12 — real-thread executors on a 96×64 grid.
fn bench_e12_threads(c: &mut Criterion) {
    let flag = PreparedFlag::at_size(&library::mauritius(), 96, 64);
    let assignments =
        PartitionStrategy::VerticalSlices(4).assignments(&flag, CellOrder::RowMajor, &[]);
    let colorer = ParallelColorer::new(&flag, CellWorkload::default());
    let mut g = c.benchmark_group("E12_threads");
    g.sample_size(10);
    for (name, mode) in [
        ("sequential", ExecMode::Sequential),
        ("static_4", ExecMode::Static),
        ("shared_implements_4", ExecMode::SharedImplements),
        ("dynamic_chunks_64", ExecMode::DynamicChunks { chunk: 64 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(colorer.run(&assignments, mode)))
        });
    }
    g.bench_function("pipeline_4_stages", |b| {
        b.iter(|| {
            black_box(flagsim_threads::run_pipeline(
                &flag,
                4,
                CellWorkload::default(),
            ))
        })
    });
    g.finish();
}

/// E13 — pipelining strategies for scenario 4.
fn bench_e13_pipeline(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default();
    let scenarios = [
        ("convoy", Scenario::fig1(4)),
        ("alternating", Scenario::alternating_slices()),
        ("pipelined", Scenario::pipelined_slices(&flag, 4, 4)),
    ];
    let mut g = c.benchmark_group("E13_pipeline");
    for (name, sc) in scenarios {
        g.bench_function(name, |b| {
            b.iter_batched(
                || team(4),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    paper,
    bench_e1_scenarios,
    bench_e2_warmup,
    bench_e3_implements,
    bench_e4_webster,
    bench_e5_dependencies,
    bench_e678_tables,
    bench_e9_quiz,
    bench_e10_jordan,
    bench_e12_threads,
    bench_e13_pipeline,
);
criterion_main!(paper);
