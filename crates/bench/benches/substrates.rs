//! Substrate microbenches: rasterization, the DES engine under a
//! contention ladder, task-graph algorithms, and the cost model. These
//! guard the performance of the pieces every experiment stands on.

use criterion::{criterion_group, criterion_main, Criterion};
use flagsim_agents::{CostModel, Implement, ImplementKind, StudentProfile};
use flagsim_desim::{Action, Engine, Process, SimDuration, SimTime};
use flagsim_flags::library;
use flagsim_grid::FillStyle;
use flagsim_taskgraph::{analysis, list_schedule, Priority, TaskGraph};
use std::hint::black_box;

fn bench_rasterize(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_rasterize");
    for flag in library::all() {
        g.bench_function(flag.name.clone(), |b| b.iter(|| black_box(flag.rasterize())));
    }
    g.finish();
}

/// N processes hammering one resource: the engine's worst case.
struct Hammer {
    rounds: usize,
    done: usize,
    rid: flagsim_desim::ResourceId,
    holding: bool,
}

impl Process for Hammer {
    fn next(&mut self, _now: SimTime) -> Action {
        if self.holding {
            self.holding = false;
            self.done += 1;
            return Action::Release(self.rid);
        }
        if self.done >= self.rounds {
            return Action::Done;
        }
        self.holding = true;
        Action::Acquire(self.rid)
    }
}

fn bench_desim_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_desim_contention");
    for procs in [2usize, 8, 32] {
        g.bench_function(format!("{procs}_procs_x_100_rounds"), |b| {
            b.iter(|| {
                let mut eng = Engine::new();
                let rid = eng.add_resource("hot", SimDuration::from_millis(1));
                for _ in 0..procs {
                    eng.add_process(Box::new(Hammer {
                        rounds: 100,
                        done: 0,
                        rid,
                        holding: false,
                    }));
                }
                black_box(eng.run().end_time)
            })
        });
    }
    g.finish();
}

fn wide_graph(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let src = g.add_task("src", 5);
    let sink_weights: Vec<_> = (0..n).map(|i| g.add_task(format!("t{i}"), 10)).collect();
    let sink = g.add_task("sink", 5);
    for t in sink_weights {
        g.add_dep(src, t).unwrap();
        g.add_dep(t, sink).unwrap();
    }
    g
}

fn bench_taskgraph(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_taskgraph");
    for n in [32usize, 256] {
        let graph = wide_graph(n);
        g.bench_function(format!("critical_path_{n}"), |b| {
            b.iter(|| black_box(analysis::critical_path(&graph)))
        });
        g.bench_function(format!("list_schedule_{n}_p4"), |b| {
            b.iter(|| black_box(list_schedule(&graph, 4, Priority::CriticalPath)))
        });
        g.bench_function(format!("transitive_reduction_{n}"), |b| {
            b.iter(|| black_box(graph.transitive_reduction()))
        });
    }
    g.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("substrate_cost_model_1k_cells", |b| {
        b.iter(|| {
            let mut m = CostModel::new(7);
            let mut s = StudentProfile::new("p");
            let imp = Implement::good(ImplementKind::ThickMarker);
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += m.sample_cell_secs(
                    &mut s,
                    imp,
                    FillStyle::Scribble,
                    flagsim_agents::CellKind::Interior,
                );
            }
            black_box(acc)
        })
    });
}

fn bench_canvas_and_parse(c: &mut Criterion) {
    use flagsim_grid::canvas::FlagCanvas;
    use flagsim_grid::Color;
    c.bench_function("substrate_canvas_mauritius_96x64", |b| {
        b.iter(|| {
            let mut canvas = FlagCanvas::new(96, 64);
            let stripes = [Color::Red, Color::Blue, Color::Yellow, Color::Green];
            for y in 0..canvas.height() {
                for x in 0..canvas.width() {
                    canvas.set_pixel(x, y, stripes[(y / 16) as usize]);
                }
            }
            black_box(canvas.into_grid())
        })
    });
    let texts: Vec<String> = library::all().iter().map(flagsim_flags::to_text).collect();
    c.bench_function("substrate_parse_flag_dsl_library", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(flagsim_flags::parse(t).expect("library text parses"));
            }
        })
    });
}

fn bench_jordan_grading_rubric(c: &mut Criterion) {
    use flagsim_assessment::jordan;
    let subs = jordan::generate_submissions(7);
    c.bench_function("substrate_grade_29_submissions", |b| {
        b.iter(|| black_box(jordan::grade_batch(&subs)))
    });
}

/// Causal analysis over real scenario traces: the full pipeline
/// (timelines, critical-path walk, blame, what-if) must stay cheap
/// enough to run after every `flagsim run` without anyone noticing.
fn bench_causal_analysis(c: &mut Criterion) {
    use flagsim_core::config::{ActivityConfig, TeamKit};
    use flagsim_core::scenario::Scenario;
    use flagsim_core::work::PreparedFlag;

    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default().with_seed(7);
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let mut g = c.benchmark_group("substrate_causal_analysis");
    for n in [3u8, 4] {
        let scenario = Scenario::fig1(n);
        let mut team: Vec<StudentProfile> = (1..=scenario.team_size(&flag, &cfg))
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let report = scenario
            .run(&flag, &mut team, &kit, &cfg)
            .expect("scenario runs");
        g.bench_function(format!("analyze_scenario_{n}"), |b| {
            b.iter(|| black_box(flagsim_desim::analyze(&report.trace)))
        });
    }
    g.finish();
}

criterion_group!(
    substrates,
    bench_rasterize,
    bench_desim_contention,
    bench_taskgraph,
    bench_cost_model,
    bench_canvas_and_parse,
    bench_jordan_grading_rubric,
    bench_causal_analysis,
);
criterion_main!(substrates);
