//! Ablation benches for the design choices DESIGN.md calls out: marker
//! stocking (E14), team-size sweeps (E15), grid scaling (E16), release
//! policies, and list-scheduler priorities.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::config::{ActivityConfig, ReleasePolicy};
use flagsim_core::partition::{CellOrder, PartitionStrategy};
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_core::TeamKit;
use flagsim_flags::library;
use flagsim_grid::Color;
use flagsim_taskgraph::{list_schedule, Priority, TaskGraph};
use std::hint::black_box;

fn team(n: usize) -> Vec<StudentProfile> {
    (1..=n)
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect()
}

/// E14 — marker stocking sweep on scenario 4.
fn bench_marker_stocking(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default();
    let sc = Scenario::fig1(4);
    let mut g = c.benchmark_group("E14_marker_stocking");
    for count in [1usize, 2, 4] {
        let kit =
            TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS).with_count_all(count);
        g.bench_function(format!("markers_{count}"), |b| {
            b.iter_batched(
                || team(4),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E15 — team-size sweep on vertical slices.
fn bench_team_size(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default();
    let mut g = c.benchmark_group("E15_team_size");
    for p in [1u32, 4, 12] {
        let sc = Scenario::new(
            format!("slices x{p}"),
            PartitionStrategy::VerticalSlices(p),
            CellOrder::RowMajor,
        );
        g.bench_function(format!("students_{p}"), |b| {
            b.iter_batched(
                || team(p as usize),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E16 — grid-size sweep on scenario 3.
fn bench_grid_scaling(c: &mut Criterion) {
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default();
    let sc = Scenario::fig1(3);
    let mut g = c.benchmark_group("E16_grid_scaling");
    for (w, h) in [(12u32, 8u32), (24, 16), (48, 32)] {
        let flag = PreparedFlag::at_size(&library::mauritius(), w, h);
        g.bench_function(format!("{w}x{h}"), |b| {
            b.iter_batched(
                || team(4),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Release-policy ablation on scenario 4.
fn bench_release_policy(c: &mut Criterion) {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let sc = Scenario::fig1(4);
    let mut g = c.benchmark_group("ablation_release_policy");
    for (name, policy) in [
        ("keep_until_change", ReleasePolicy::KeepUntilColorChange),
        ("release_each_cell", ReleasePolicy::ReleaseEachCell),
    ] {
        let cfg = ActivityConfig::default().with_policy(policy);
        g.bench_function(name, |b| {
            b.iter_batched(
                || team(4),
                |mut t| black_box(sc.run(&flag, &mut t, &kit, &cfg).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Scheduler-priority ablation on a layered-flag-shaped graph forest.
fn bench_scheduler_priority(c: &mut Criterion) {
    // A forest of layer chains with skewed weights — the worst case for
    // naive priorities.
    let mut graph = TaskGraph::new();
    for chain in 0..8 {
        let mut prev = None;
        for depth in 0..6 {
            let id = graph.add_task(
                format!("c{chain}d{depth}"),
                10 + (chain * 37 + depth * 13) % 90,
            );
            if let Some(p) = prev {
                graph.add_dep(p, id).unwrap();
            }
            prev = Some(id);
        }
    }
    let mut g = c.benchmark_group("ablation_scheduler_priority");
    for (name, pr) in [
        ("critical_path", Priority::CriticalPath),
        ("fifo", Priority::Fifo),
        ("longest_task", Priority::LongestTask),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(list_schedule(&graph, 4, pr)))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_marker_stocking,
    bench_team_size,
    bench_grid_scaling,
    bench_release_policy,
    bench_scheduler_priority,
);
criterion_main!(ablations);
