//! Engine hot-path benchmark (the ISSUE-7 rewrite's scoreboard).
//!
//! Two measurements, one hard gate:
//!
//! - **Engine reps/sec**: replay a fourslice-scale scripted workload
//!   (4 processes, 4 contended hand-off resources, ~150 events — the
//!   same event count as one real scenario-4 repetition) through the
//!   rewritten event loop, with the trace sink off. This isolates the
//!   DES loop from cost-model sampling and is the number compared
//!   against the pre-rewrite full-rep baseline of ~31k reps/sec
//!   (`BENCH_sweep.json`, 1-core container).
//! - **End-to-end reps/sec**: real stats-only scenario-4 sweep reps
//!   through [`flagsim_core::sweep::SweepRunner`] — sampling, engine,
//!   grid verification and all.
//!
//! The hard gate is determinism: repeat engine runs must produce
//! byte-identical traces, trace-off runs must produce accounting
//! bit-identical to trace-on runs, and a streaming (trace-off) sweep
//! must land exactly the statistics of a retained (trace-on) sweep.
//! The `engine_bench` binary writes the result as `BENCH_engine.json`.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::scenario::Scenario;
use flagsim_core::sweep::SweepRunner;
use flagsim_core::work::PreparedFlag;
use flagsim_desim::{Action, Engine, Process, ResourceId, SimDuration, SimTime, Trace};
use flagsim_flags::library;
use std::fmt::Write as _;
use std::time::Instant;

/// The pre-rewrite full-rep serial throughput (`BENCH_sweep.json`).
pub const BASELINE_REPS_PER_SEC: f64 = 31_228.127;

const PROCS: usize = 4;
const RESOURCES: usize = 4;
const CELLS_PER_PROC: u32 = 24;
const HOLD_RUN: u32 = 6; // cells colored before moving to the next resource

static PROC_NAMES: [&str; PROCS] = ["P1", "P2", "P3", "P4"];

/// A synthetic student: round-robins over the resource pool starting at
/// its own offset (pipelined, like §III-C), holding each resource for a
/// run of cells with LCG-derived integer durations. No RNG crate, no
/// allocation per poll — this is a pure measurement of the event loop.
struct BenchProc {
    name: &'static str,
    rids: [ResourceId; RESOURCES],
    cur: usize,
    cells_left: u32,
    run_left: u32,
    holding: bool,
    lcg: u64,
}

impl BenchProc {
    fn new(idx: usize, rids: [ResourceId; RESOURCES], seed: u64) -> Self {
        BenchProc {
            name: PROC_NAMES[idx],
            rids,
            cur: idx % RESOURCES,
            cells_left: CELLS_PER_PROC,
            run_left: HOLD_RUN,
            holding: false,
            lcg: seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_dur(&mut self) -> SimDuration {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        SimDuration::from_millis(1 + (self.lcg >> 33) % 40)
    }
}

impl Process for BenchProc {
    fn next(&mut self, _now: SimTime) -> Action {
        if self.cells_left == 0 {
            if self.holding {
                self.holding = false;
                return Action::Release(self.rids[self.cur]);
            }
            return Action::Done;
        }
        if !self.holding {
            self.holding = true;
            return Action::Acquire(self.rids[self.cur]);
        }
        if self.run_left == 0 {
            self.holding = false;
            self.run_left = HOLD_RUN;
            let rid = self.rids[self.cur];
            self.cur = (self.cur + 1) % RESOURCES;
            return Action::Release(rid);
        }
        self.cells_left -= 1;
        self.run_left -= 1;
        Action::Work(self.next_dur())
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// One engine repetition of the scripted workload.
fn engine_rep(record: bool, seed: u64) -> Trace {
    let mut eng = Engine::with_capacity(
        PROCS,
        RESOURCES,
        if record {
            PROCS * CELLS_PER_PROC as usize * 4
        } else {
            0
        },
    );
    eng.set_trace_events(record);
    const LABELS: [&str; RESOURCES] = ["r0", "r1", "r2", "r3"];
    let rids: [ResourceId; RESOURCES] =
        std::array::from_fn(|i| eng.add_resource(LABELS[i], SimDuration::from_millis(2)));
    for idx in 0..PROCS {
        eng.add_process(Box::new(BenchProc::new(idx, rids, seed)));
    }
    eng.run()
}

/// One engine-bench measurement.
#[derive(Debug, Clone)]
pub struct EngineBench {
    /// Processes per engine rep.
    pub procs: usize,
    /// Resources per engine rep.
    pub resources: usize,
    /// Cells each process colors per engine rep.
    pub cells_per_proc: u32,
    /// Trace events one recorded rep emits.
    pub events_per_rep: u64,
    /// Engine repetitions timed per mode.
    pub engine_reps: u64,
    /// Wall-clock seconds for the trace-recording run.
    pub trace_on_secs: f64,
    /// Wall-clock seconds for the stats-only run.
    pub trace_off_secs: f64,
    /// Events processed per second with the trace sink on.
    pub events_per_sec_trace_on: f64,
    /// Events processed per second with the trace sink off.
    pub events_per_sec_trace_off: f64,
    /// Engine repetitions per second (trace off) — the headline number.
    pub engine_reps_per_sec: f64,
    /// The pre-rewrite full-rep baseline this is compared against.
    pub baseline_reps_per_sec: f64,
    /// `engine_reps_per_sec / baseline_reps_per_sec`.
    pub speedup_vs_baseline: f64,
    /// Real stats-only sweep repetitions timed.
    pub end_to_end_reps: u64,
    /// Wall-clock seconds for the end-to-end sweep.
    pub end_to_end_secs: f64,
    /// Full scenario-4 repetitions per second, streaming mode.
    pub end_to_end_reps_per_sec: f64,
    /// The hard gate: repeat-run byte identity, trace-on/off accounting
    /// identity, and streaming-vs-retained sweep statistics identity.
    pub deterministic: bool,
}

/// Run the benchmark: `engine_reps` scripted engine repetitions per
/// trace mode plus `e2e_reps` real stats-only sweep repetitions, with
/// the determinism cross-checks. Panics if a sweep fails outright (this
/// measures the healthy path).
pub fn run_engine_bench(engine_reps: u64, e2e_reps: u64) -> EngineBench {
    // Determinism gate 1: repeat engine runs are byte-identical.
    let a = engine_rep(true, 0xF1A6);
    let b = engine_rep(true, 0xF1A6);
    let repeat_ok = a.events == b.events
        && a.procs == b.procs
        && a.resources == b.resources
        && a.end_time == b.end_time;
    // Determinism gate 2: the trace sink changes no accounting.
    let off = engine_rep(false, 0xF1A6);
    let sink_ok = off.events.is_empty()
        && off.procs == a.procs
        && off.resources == a.resources
        && off.end_time == a.end_time;
    let events_per_rep = a.events.len() as u64;

    // Time three batches per mode and keep the fastest: wall-clock on a
    // shared 1-core container is noisy upward only (preemption, thermal
    // throttling), so the minimum is the least-biased estimate of the
    // engine's true cost — the same reasoning Criterion applies.
    const BATCHES: u64 = 3;
    let time_batch = |record: bool, batch: u64| {
        let t = Instant::now();
        for i in 0..engine_reps {
            std::hint::black_box(engine_rep(record, 0xF1A6 ^ (batch * engine_reps + i)));
        }
        t.elapsed().as_secs_f64().max(f64::MIN_POSITIVE)
    };
    let trace_on_secs = (0..BATCHES)
        .map(|b| time_batch(true, b))
        .fold(f64::INFINITY, f64::min);
    let trace_off_secs = (0..BATCHES)
        .map(|b| time_batch(false, b))
        .fold(f64::INFINITY, f64::min);

    // End to end: real scenario-4 reps, streaming (trace sink off).
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(0x5EED);
    let scenario = Scenario::fig1(4);
    let t2 = Instant::now();
    let streaming = SweepRunner::new(&scenario, &flag, &kit, &cfg)
        .reps(e2e_reps)
        .retain_reports(false)
        .run()
        .expect("streaming sweep failed");
    let end_to_end_secs = t2.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    // Determinism gate 3: streaming (trace-off) statistics must land on
    // the retained (trace-on) sweep's. Per-rep measurements must be
    // bit-identical, so n/mean/min/max agree exactly; stddev is Welford
    // in streaming mode vs two-pass in retained mode, and median is
    // exact only with retained samples, so those aren't part of the
    // bit-identity contract (mirrors the sweep crate's own cross-mode
    // test).
    let retained = SweepRunner::new(&scenario, &flag, &kit, &cfg)
        .reps(e2e_reps)
        .retain_reports(true)
        .run()
        .expect("retained sweep failed");
    let stats_eq = |a: &flagsim_metrics::RunStats, b: &flagsim_metrics::RunStats| {
        a.n == b.n
            && a.mean == b.mean
            && a.min == b.min
            && a.max == b.max
            && (a.stddev - b.stddev).abs() < 1e-9
    };
    let sweep_ok = stats_eq(&streaming.completion, &retained.completion)
        && stats_eq(&streaming.waiting, &retained.waiting);
    // Name the failing gate — a bare `deterministic: false` in CI is
    // undebuggable.
    if !repeat_ok {
        eprintln!("determinism: repeat engine runs diverged");
    }
    if !sink_ok {
        eprintln!("determinism: trace-off accounting diverged from trace-on");
    }
    if !sweep_ok {
        eprintln!(
            "determinism: streaming sweep stats diverged from retained \
             (completion eq: {}, waiting eq: {})",
            stats_eq(&streaming.completion, &retained.completion),
            stats_eq(&streaming.waiting, &retained.waiting)
        );
    }

    let engine_reps_per_sec = engine_reps as f64 / trace_off_secs;
    EngineBench {
        procs: PROCS,
        resources: RESOURCES,
        cells_per_proc: CELLS_PER_PROC,
        events_per_rep,
        engine_reps,
        trace_on_secs,
        trace_off_secs,
        events_per_sec_trace_on: engine_reps as f64 * events_per_rep as f64 / trace_on_secs,
        events_per_sec_trace_off: engine_reps as f64 * events_per_rep as f64 / trace_off_secs,
        engine_reps_per_sec,
        baseline_reps_per_sec: BASELINE_REPS_PER_SEC,
        speedup_vs_baseline: engine_reps_per_sec / BASELINE_REPS_PER_SEC,
        end_to_end_reps: e2e_reps,
        end_to_end_secs,
        end_to_end_reps_per_sec: e2e_reps as f64 / end_to_end_secs,
        deterministic: repeat_ok && sink_ok && sweep_ok,
    }
}

impl EngineBench {
    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"engine_hot_path\",");
        let _ = writeln!(out, "  \"workload\": \"scripted fourslice-scale rep\",");
        let _ = writeln!(out, "  \"procs\": {},", self.procs);
        let _ = writeln!(out, "  \"resources\": {},", self.resources);
        let _ = writeln!(out, "  \"cells_per_proc\": {},", self.cells_per_proc);
        let _ = writeln!(out, "  \"events_per_rep\": {},", self.events_per_rep);
        let _ = writeln!(out, "  \"engine_reps\": {},", self.engine_reps);
        let _ = writeln!(out, "  \"trace_on_secs\": {:.6},", self.trace_on_secs);
        let _ = writeln!(out, "  \"trace_off_secs\": {:.6},", self.trace_off_secs);
        let _ = writeln!(
            out,
            "  \"events_per_sec_trace_on\": {:.1},",
            self.events_per_sec_trace_on
        );
        let _ = writeln!(
            out,
            "  \"events_per_sec_trace_off\": {:.1},",
            self.events_per_sec_trace_off
        );
        let _ = writeln!(
            out,
            "  \"engine_reps_per_sec\": {:.1},",
            self.engine_reps_per_sec
        );
        let _ = writeln!(
            out,
            "  \"baseline_reps_per_sec\": {:.3},",
            self.baseline_reps_per_sec
        );
        let _ = writeln!(
            out,
            "  \"speedup_vs_baseline\": {:.2},",
            self.speedup_vs_baseline
        );
        let _ = writeln!(out, "  \"end_to_end_reps\": {},", self.end_to_end_reps);
        let _ = writeln!(out, "  \"end_to_end_secs\": {:.6},", self.end_to_end_secs);
        let _ = writeln!(
            out,
            "  \"end_to_end_reps_per_sec\": {:.1},",
            self.end_to_end_reps_per_sec
        );
        let _ = writeln!(out, "  \"deterministic\": {}", self.deterministic);
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "engine bench: {} engine reps ({} events each), {} end-to-end reps\n\
             trace on   {:.3}s  ({:.2e} events/s)\n\
             trace off  {:.3}s  ({:.2e} events/s, {:.0} engine reps/s)\n\
             vs {:.0} reps/s baseline: {:.1}x\n\
             end-to-end {:.3}s  ({:.0} reps/s)  deterministic: {}",
            self.engine_reps,
            self.events_per_rep,
            self.end_to_end_reps,
            self.trace_on_secs,
            self.events_per_sec_trace_on,
            self.trace_off_secs,
            self.events_per_sec_trace_off,
            self.engine_reps_per_sec,
            self.baseline_reps_per_sec,
            self.speedup_vs_baseline,
            self.end_to_end_secs,
            self.end_to_end_reps_per_sec,
            self.deterministic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_deterministic_and_serializes() {
        let b = run_engine_bench(50, 6);
        assert!(b.deterministic, "engine bench determinism gate failed");
        assert!(b.events_per_rep > 100, "rep too small: {}", b.events_per_rep);
        assert!(b.trace_on_secs > 0.0 && b.trace_off_secs > 0.0);
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"engine_reps\": 50",
            "\"end_to_end_reps\": 6",
            "\"engine_reps_per_sec\":",
            "\"speedup_vs_baseline\":",
            "\"deterministic\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn bench_workload_contends() {
        // The scripted rep must actually exercise the contended paths —
        // hand-offs, queue waits — or it measures the wrong loop.
        let t = engine_rep(true, 0xF1A6);
        let handoffs: u64 = t.resources.iter().map(|r| r.stats.handoffs).sum();
        assert!(handoffs > 0, "no hand-offs in the bench workload");
        assert!(t.total_waiting().millis() > 0, "no waiting in the bench workload");
    }
}
