//! Sharded-sweep correctness-and-throughput benchmark.
//!
//! Three measurements over the same Mauritius scenario-4 job, with two
//! **hard gates** (correctness, not performance):
//!
//! 1. serial in-process baseline (wall-clock reference);
//! 2. a multi-worker sharded run over real TCP worker sessions —
//!    gate: statistics bit-for-bit identical to serial;
//! 3. a kill-mid-sweep → resume cycle — gate: the resumed campaign's
//!    statistics AND its final checkpoint file are bit-identical to an
//!    uninterrupted run's.
//!
//! The `shard_bench` binary writes the result as `BENCH_shard.json` and
//! exits non-zero if either gate fails.

use flagsim_metrics::RunStats;
use flagsim_shard::{
    run_sweep, serve, Checkpoint, CoordinatorConfig, JobSpec, LeaseConfig, ShardOutcome,
    WorkerOptions,
};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::time::Instant;

/// One sharded-sweep benchmark run.
#[derive(Debug, Clone)]
pub struct ShardBench {
    /// Repetitions per campaign.
    pub reps: u64,
    /// TCP worker sessions in the sharded run.
    pub workers: usize,
    /// Reps per lease grant.
    pub chunk: u64,
    /// Kill points exercised by the kill/resume gate.
    pub kill_points: u64,
    /// Serial in-process wall-clock seconds.
    pub serial_secs: f64,
    /// Multi-worker sharded wall-clock seconds.
    pub sharded_secs: f64,
    /// `serial_secs / sharded_secs` (workers are processes-in-threads
    /// here, so this measures protocol overhead more than speedup).
    pub speedup: f64,
    /// Gate: sharded statistics bit-identical to serial.
    pub sharded_identical: bool,
    /// Gate: every kill → resume cycle reproduced the uninterrupted
    /// statistics bit-for-bit and the final checkpoint files matched
    /// byte-for-byte.
    pub kill_resume_identical: bool,
}

impl ShardBench {
    /// Whether both correctness gates passed.
    pub fn gates_pass(&self) -> bool {
        self.sharded_identical && self.kill_resume_identical
    }

    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"shard_multiworker_and_resume\",");
        let _ = writeln!(out, "  \"scenario\": \"scenario 4: vertical slices\",");
        let _ = writeln!(out, "  \"flag\": \"Mauritius\",");
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"chunk\": {},", self.chunk);
        let _ = writeln!(out, "  \"kill_points\": {},", self.kill_points);
        let _ = writeln!(out, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(out, "  \"sharded_secs\": {:.6},", self.sharded_secs);
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(out, "  \"sharded_identical\": {},", self.sharded_identical);
        let _ = writeln!(
            out,
            "  \"kill_resume_identical\": {}",
            self.kill_resume_identical
        );
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "shard bench: {} reps, {} worker(s), chunk {}, {} kill point(s)\n\
             serial  {:.3}s\n\
             sharded {:.3}s  (speedup {:.2}x)\n\
             gates: sharded bit-identical: {}  kill/resume bit-identical: {}",
            self.reps,
            self.workers,
            self.chunk,
            self.kill_points,
            self.serial_secs,
            self.sharded_secs,
            self.speedup,
            self.sharded_identical,
            self.kill_resume_identical,
        )
    }
}

fn bench_job(reps: u64) -> JobSpec {
    JobSpec {
        scenario: "4".into(),
        flag: "Mauritius".into(),
        kind: "dauber".into(),
        seed: 0x5EED,
        reps,
        team: 4,
        warmup: false,
    }
}

fn stats_bits_equal(a: &RunStats, b: &RunStats) -> bool {
    a.n == b.n
        && a.mean.to_bits() == b.mean.to_bits()
        && a.stddev.to_bits() == b.stddev.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
        && a.median.to_bits() == b.median.to_bits()
}

fn completed(outcome: ShardOutcome) -> (RunStats, RunStats) {
    match outcome {
        ShardOutcome::Completed(r) => (r.completion, r.waiting),
        other => panic!("shard bench expected completion, got {other:?}"),
    }
}

/// Spawn `n` in-process TCP workers (`--once` semantics) and return
/// their endpoints plus join handles.
fn spawn_workers(
    n: usize,
) -> (Vec<String>, Vec<std::thread::JoinHandle<()>>) {
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind bench worker");
        endpoints.push(listener.local_addr().expect("worker addr").to_string());
        handles.push(std::thread::spawn(move || {
            let opts = WorkerOptions {
                once: true,
                name: format!("bench-w{i}"),
                quiet: true,
                drop_telemetry_every: 0,
            };
            serve(&listener, &opts).ok();
        }));
    }
    (endpoints, handles)
}

/// Run the benchmark: serial baseline, `workers`-way sharded run, and
/// `kill_points` kill → resume cycles, all over a `reps`-repetition
/// Mauritius scenario-4 campaign. Panics only on infrastructure errors
/// (bind/spawn/IO); gate failures are reported in the result.
pub fn run_shard_bench(reps: u64, workers: usize, kill_points: u64, chunk: u64) -> ShardBench {
    let job = bench_job(reps);
    let dir = std::env::temp_dir().join(format!("flagsim-shard-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");

    // 1. Serial baseline — also writes the reference final checkpoint.
    let fresh_ckpt = dir.join("fresh.ckpt");
    let t0 = Instant::now();
    let (serial_c, serial_w) = completed(
        run_sweep(
            &job,
            &CoordinatorConfig {
                checkpoint_path: Some(fresh_ckpt.clone()),
                ..CoordinatorConfig::default()
            },
        )
        .expect("serial baseline sweep"),
    );
    let serial_secs = t0.elapsed().as_secs_f64();

    // 2. Multi-worker sharded run over real TCP sessions.
    let (endpoints, handles) = spawn_workers(workers);
    let t1 = Instant::now();
    let (shard_c, shard_w) = completed(
        run_sweep(
            &job,
            &CoordinatorConfig {
                endpoints,
                lease: LeaseConfig { chunk, ..LeaseConfig::default() },
                ..CoordinatorConfig::default()
            },
        )
        .expect("sharded sweep"),
    );
    let sharded_secs = t1.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("bench worker thread");
    }
    let sharded_identical =
        stats_bits_equal(&shard_c, &serial_c) && stats_bits_equal(&shard_w, &serial_w);

    // 3. Kill mid-sweep at several points, resume, demand bit-identity —
    //    of the statistics and of the final checkpoint file.
    let fresh_bytes = std::fs::read(&fresh_ckpt).expect("read fresh checkpoint");
    let mut kill_resume_identical = true;
    for k in 0..kill_points {
        // Spread kill points across the campaign, never at 0 or total.
        let kill_after = 1 + k * reps.saturating_sub(2) / kill_points.max(1);
        let ckpt = dir.join(format!("kill-{k}.ckpt"));
        let halted = run_sweep(
            &job,
            &CoordinatorConfig {
                checkpoint_path: Some(ckpt.clone()),
                checkpoint_every: 1,
                halt_after_reps: Some(kill_after),
                ..CoordinatorConfig::default()
            },
        )
        .expect("killable sweep");
        if !matches!(halted, ShardOutcome::Halted { .. }) {
            kill_resume_identical = false;
            continue;
        }
        let resume = Checkpoint::load(&ckpt).expect("load kill checkpoint");
        let (c, w) = completed(
            run_sweep(
                &job,
                &CoordinatorConfig {
                    resume: Some(resume),
                    checkpoint_path: Some(ckpt.clone()),
                    ..CoordinatorConfig::default()
                },
            )
            .expect("resumed sweep"),
        );
        let stats_ok = stats_bits_equal(&c, &serial_c) && stats_bits_equal(&w, &serial_w);
        let file_ok = std::fs::read(&ckpt).expect("read resumed checkpoint") == fresh_bytes;
        if !(stats_ok && file_ok) {
            kill_resume_identical = false;
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    ShardBench {
        reps,
        workers,
        chunk,
        kill_points,
        serial_secs,
        sharded_secs,
        speedup: serial_secs / sharded_secs.max(f64::MIN_POSITIVE),
        sharded_identical,
        kill_resume_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_passes_both_gates_and_serializes() {
        let b = run_shard_bench(8, 2, 3, 2);
        assert!(b.sharded_identical, "sharded stats diverged from serial");
        assert!(b.kill_resume_identical, "kill/resume cycle diverged");
        assert!(b.gates_pass());
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"reps\": 8",
            "\"workers\": 2",
            "\"kill_points\": 3",
            "\"sharded_identical\": true",
            "\"kill_resume_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
