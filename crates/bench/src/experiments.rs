//! One function per paper artifact. Each returns an [`Experiment`] with
//! measured numbers and the paper's qualitative expectation, so the
//! harness output reads as a paper-vs-measured ledger.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_assessment::report as arep;
use flagsim_assessment::survey::Construct;
use flagsim_core::config::ActivityConfig;
use flagsim_core::layered;
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_core::{RunReport, TeamKit};
use flagsim_flags::library;
use flagsim_grid::Color;
use flagsim_metrics::{load_imbalance, speedup};
use flagsim_threads::{CellWorkload, ExecMode, ParallelColorer};
use std::fmt::Write as _;

/// A regenerated experiment: id, what the paper reports, what we measured.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment id from DESIGN.md ("E1" …).
    pub id: &'static str,
    /// The paper artifact it regenerates.
    pub artifact: &'static str,
    /// The paper's qualitative claim.
    pub expectation: &'static str,
    /// The measured report (printable).
    pub report: String,
    /// Whether the measured shape matches the expectation.
    pub holds: bool,
}

const SEED: u64 = 0x0F1A_65ED;
/// Repetitions for simulation experiments (different seeds, averaged).
const REPS: u64 = 32;

fn fresh_team(n: usize, warmup: bool) -> Vec<StudentProfile> {
    (1..=n)
        .map(|i| {
            let s = StudentProfile::new(format!("P{i}"));
            if warmup {
                s
            } else {
                s.without_warmup()
            }
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Run a scenario `REPS` times with fresh teams and return the mean
/// completion seconds (plus the last report for structure inspection).
/// Thin wrapper over the public [`flagsim_core::sweep::sweep`] harness.
fn mean_completion(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    team_size: usize,
    warmup: bool,
    cfg: &ActivityConfig,
) -> (f64, RunReport) {
    let result = flagsim_core::sweep::sweep(scenario, flag, kit, cfg, team_size, warmup, REPS);
    let last = result.reports.last().cloned().expect("reps > 0");
    (result.mean_secs(), last)
}

/// E1 — Fig. 1 + §III-C: the four scenarios' completion times and
/// speedups. Times fall through scenario 3; scenario 4 pays contention.
pub fn e1_scenarios() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default().with_seed(SEED);
    let mut report = String::new();
    let mut results = Vec::new();
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let size = sc.team_size(&flag, &cfg);
        let (secs, last) = mean_completion(&sc, &flag, &kit, size, false, &cfg);
        results.push((sc.name.clone(), secs, last));
    }
    let t1 = results[0].1;
    let _ = writeln!(
        report,
        "{:<38}{:>8}{:>9}{:>12}{:>12}",
        "scenario", "procs", "mean s", "speedup", "wait s"
    );
    for (name, secs, last) in &results {
        let _ = writeln!(
            report,
            "{:<38}{:>8}{:>9.1}{:>11.2}x{:>12.1}",
            name,
            last.students.len(),
            secs,
            speedup(t1, *secs),
            last.total_wait_secs(),
        );
    }
    let holds = results[1].1 < results[0].1 // 2 < 1
        && results[2].1 < results[1].1 // 3 < 2
        && results[3].1 > results[2].1 // 4 > 3 (contention)
        && results[3].2.total_wait_secs() > 1.0;
    Experiment {
        id: "E1",
        artifact: "Fig. 1 scenarios (+ §III-C speedup discussion)",
        expectation: "times decrease as processors are added for scenarios 1-3; \
                      scenario 4 is slower than 3 because of marker contention",
        report,
        holds,
    }
}

/// E2 — §III-C warm-up: a repeat of scenario 1 is significantly faster.
pub fn e2_warmup() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let sc = Scenario::fig1(1);
    let mut firsts = Vec::new();
    let mut seconds = Vec::new();
    for rep in 0..REPS {
        let mut team = fresh_team(1, true); // warm-up active
        let cfg = ActivityConfig::default().with_seed(SEED.wrapping_add(rep));
        let r1 = sc.run(&flag, &mut team, &kit, &cfg).unwrap();
        let r2 = sc.run(&flag, &mut team, &kit, &cfg).unwrap();
        firsts.push(r1.completion_secs());
        seconds.push(r2.completion_secs());
    }
    let (f, s) = (mean(&firsts), mean(&seconds));
    let report = format!(
        "first run of scenario 1: {f:.1}s\nrepeat of scenario 1:    {s:.1}s\n\
         improvement: {:.0}% (the paper's system-warmup analogy: caching, \
         power-saving exit, JIT)\n",
        100.0 * (f - s) / f
    );
    Experiment {
        id: "E2",
        artifact: "§III-C repeated scenario 1",
        expectation: "the second run's completion times are significantly better",
        report,
        holds: s < f * 0.9,
    }
}

/// E3 — §IV implements: dauber < thick marker < thin marker < crayon.
pub fn e3_implements() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let sc = Scenario::fig1(1);
    let cfg = ActivityConfig::default().with_seed(SEED);
    let mut report = String::new();
    let mut times = Vec::new();
    for kind in ImplementKind::ALL {
        let kit = TeamKit::uniform(kind, &Color::MAURITIUS);
        let (secs, _) = mean_completion(&sc, &flag, &kit, 1, false, &cfg);
        let _ = writeln!(report, "{:<14} {secs:>7.1}s", kind.to_string());
        times.push(secs);
    }
    Experiment {
        id: "E3",
        artifact: "§IV implement heterogeneity",
        expectation: "daubers fastest, then thick markers, then thin markers; \
                      crayons worst (got complaints)",
        report,
        holds: times.windows(2).all(|w| w[0] < w[1]),
    }
}

/// E4 — §III-D Webster: France vs Canada, 1 vs 3 students; the simpler
/// flag gets the better speedup (load balancing).
pub fn e4_webster() -> Experiment {
    let cfg = ActivityConfig::default().with_seed(SEED);
    let mut report = String::new();
    let mut speedups = Vec::new();
    for spec in [library::france(), library::canada()] {
        let flag = PreparedFlag::new(&spec);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let (t1, _) = mean_completion(&Scenario::webster(1), &flag, &kit, 1, false, &cfg);
        let (t3, last3) = mean_completion(&Scenario::webster(3), &flag, &kit, 3, false, &cfg);
        let s = speedup(t1, t3);
        let li = load_imbalance(&last3.busy_secs_per_student());
        let _ = writeln!(
            report,
            "{:<8} 1 student {t1:>7.1}s | 3 students {t3:>7.1}s | speedup {s:.2}x | \
             load imbalance {li:.2} | waiting {:.1}s | boundary cells {}",
            spec.name,
            last3.total_wait_secs(),
            flag.boundary_cells(&[]),
        );
        speedups.push(s);
    }
    let _ = writeln!(
        report,
        "(the maple leaf mixes red into every slice's white and adds fiddly \
         boundary cells, so Canada's three students fight over the markers \
         while France's tricolor splits cleanly — efficiency lags exactly as \
         the paper observed)"
    );
    Experiment {
        id: "E4",
        artifact: "§III-D Webster variation (Fig. 2)",
        expectation: "the simpler French flag sees greater efficiency gains than \
                      the Canadian flag with its intricate maple leaf",
        report,
        holds: speedups[0] > speedups[1],
    }
}

/// E5 — §III-D Knox + Fig. 3: layered flags limit parallelism via
/// dependencies.
pub fn e5_dependencies() -> Experiment {
    let ps = [1usize, 2, 4, 8];
    let mut report = String::new();
    let mut rows = Vec::new();
    for spec in [library::mauritius(), library::jordan(), library::great_britain()] {
        let curve = layered::layered_speedup_curve(&spec, &ps, 2000);
        let par = layered::layered_parallelism(&spec, 2000);
        let speeds: Vec<String> = curve.iter().map(|p| format!("{:.2}x", p.speedup)).collect();
        let _ = writeln!(
            report,
            "{:<15} parallelism {par:>5.2} | speedup at p=1,2,4,8: {}",
            spec.name,
            speeds.join(", ")
        );
        rows.push(curve);
    }
    let g = layered::flag_taskgraph(&library::great_britain(), 2000);
    let _ = writeln!(
        report,
        "Great Britain layer chain: {} tasks, {} edges (blue field → white \
         diagonals → red cross)",
        g.len(),
        g.edge_count()
    );
    // Mauritius scales to 4; GB is stuck at 1; Jordan in between.
    let holds = (rows[0][2].speedup - 4.0).abs() < 1e-9
        && (rows[2][2].speedup - 1.0).abs() < 1e-9
        && rows[1][2].speedup > 1.0
        && rows[1][2].speedup < 4.0;
    Experiment {
        id: "E5",
        artifact: "§III-D Knox follow-up (Fig. 3, layered coloring)",
        expectation: "layering limits parallelism: the Union Jack's three-layer \
                      chain gets no speedup; flat Mauritius scales to 4",
        report,
        holds,
    }
}

/// E6/E7/E8 — Tables I, II, III: engagement / understanding / instructor
/// medians per institution.
pub fn e678_tables() -> Vec<Experiment> {
    let configs = [
        ("E6", "Table I", Construct::Engagement, "engagement medians"),
        ("E7", "Table II", Construct::Understanding, "understanding medians"),
        ("E8", "Table III", Construct::Instructor, "instructor medians"),
    ];
    configs
        .iter()
        .map(|&(id, artifact, construct, what)| {
            let rows = arep::regenerate_table(construct, SEED);
            let holds = arep::table_matches(&rows);
            Experiment {
                id,
                artifact,
                expectation: match id {
                    "E6" => "USI and Webster highest (mostly 5.0); Knox ~4.0 throughout",
                    "E7" => "Webster/USI highest; HPU and TNTech report 3.0 for loops",
                    _ => "instructor ratings 5.0 everywhere except Knox (4.0); Webster NAs",
                },
                report: arep::render_table(&format!("{artifact}: {what} (measured, ! = mismatch)"), &rows),
                holds,
            }
        })
        .collect()
}

/// E9 — Fig. 7/8: pre/post quiz transitions per concept per institution.
pub fn e9_quiz() -> Experiment {
    use flagsim_assessment::quiz::{fig8_target, generate_quiz_cohort, measure_transitions};
    use flagsim_assessment::{Concept, Institution};
    let report = arep::fig8_report(SEED);
    // Holds iff every regenerated matrix equals its target.
    let mut holds = true;
    for inst in [Institution::USI, Institution::TNTech, Institution::HPU] {
        let records = generate_quiz_cohort(inst, SEED);
        for concept in Concept::ALL {
            let m = measure_transitions(&records, concept);
            holds &= m == fig8_target(inst, concept).unwrap().matrix;
        }
    }
    Experiment {
        id: "E9",
        artifact: "Fig. 8 pre/post quiz transitions",
        expectation: "scalability & speedup show strong retention; contention & \
                      pipelining show low baselines and high incorrect retention",
        report,
        holds,
    }
}

/// E10 — Fig. 9 + §V-C: Jordan dependency-graph grading distribution.
pub fn e10_jordan() -> Experiment {
    use flagsim_assessment::jordan;
    let results = jordan::grade_batch(&jordan::generate_submissions(SEED));
    let report = arep::jordan_report(SEED);
    Experiment {
        id: "E10",
        artifact: "§V-C dependency-graph study (Fig. 9)",
        expectation: "10 perfect (34%), 7 mostly correct (24%), 59% at least \
                      mostly correct; linear chains the most common error",
        report,
        holds: results.counts["perfect"] == 10
            && results.counts["mostly correct"] == 7
            && (results.at_least_mostly_pct - 58.6).abs() < 1.0,
    }
}

/// E12 — real threads + the GPU-shot contrast.
pub fn e12_threads() -> Experiment {
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    let flag = PreparedFlag::at_size(&library::mauritius(), 96, 64);
    let assignments =
        PartitionStrategy::VerticalSlices(4).assignments(&flag, CellOrder::RowMajor, &[]);
    let colorer = ParallelColorer::new(&flag, CellWorkload::default());
    let mut report = String::new();
    let mut all_verified = true;
    let mut outcomes = Vec::new();
    for mode in [
        ExecMode::Sequential,
        ExecMode::Static,
        ExecMode::SharedImplements,
        ExecMode::DynamicChunks { chunk: 64 },
    ] {
        let out = colorer.run(&assignments, mode);
        all_verified &= out.verify(&flag);
        let _ = writeln!(
            report,
            "{:<32} {} threads  wall {:>9.3?}  (verified: {})",
            format!("{mode:?}"),
            out.threads,
            out.wall,
            out.verify(&flag)
        );
        outcomes.push(out);
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let _ = writeln!(
        report,
        "(host has {cores} core(s); wall-clock speedup requires >1 — the \
         'technology differences matter' lesson applies to hosts too)"
    );
    let gpu = flagsim_threads::gpu::compare(&flag);
    let _ = writeln!(
        report,
        "paintball model: CPU {} shots ({:.0}s) vs GPU {} shot ({:.0}s) — \
         the NVIDIA video's contrast",
        gpu.cpu_shots, gpu.cpu_secs, gpu.gpu_shots, gpu.gpu_secs
    );
    Experiment {
        id: "E12",
        artifact: "§III-D GPU video + real-hardware extension",
        expectation: "all execution modes color the identical flag; the GPU \
                      one-shot model dominates the one-barrel CPU",
        report,
        holds: all_verified && gpu.gpu_shots == 1 && gpu.cpu_shots == gpu.cells,
    }
}

/// E13 — §III-C pipelining: rotated stripe starts eliminate the scenario-4
/// convoy.
pub fn e13_pipeline() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default().with_seed(SEED);
    let scenarios = [
        Scenario::fig1(4),
        Scenario::alternating_slices(),
        Scenario::pipelined_slices(&flag, 4, 4),
    ];
    let mut report = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(
        report,
        "{:<52}{:>9}{:>10}{:>10}",
        "strategy", "mean s", "wait s", "fill s"
    );
    for sc in &scenarios {
        let (secs, last) = mean_completion(sc, &flag, &kit, 4, false, &cfg);
        let _ = writeln!(
            report,
            "{:<52}{:>9.1}{:>10.1}{:>10.1}",
            sc.name,
            secs,
            last.total_wait_secs(),
            last.pipeline_fill_secs()
        );
        rows.push((secs, last.total_wait_secs(), last.pipeline_fill_secs()));
    }
    // Pipelined beats the convoy and waits far less; the convoy's fill
    // time (idle until first work) is visible.
    let holds = rows[2].0 < rows[0].0 && rows[2].1 < rows[0].1 / 2.0 && rows[0].2 > 0.0;
    Experiment {
        id: "E13",
        artifact: "§III-C pipelining lesson",
        expectation: "passing implements in a rotation keeps every processor \
                      supplied; the naive scenario 4 convoys on red and pays a \
                      pipeline-fill delay",
        report,
        holds,
    }
}

/// E14 — §III-C extension: "having extra resources would reduce the
/// contention". Stock the kit with 1–4 markers per color and watch
/// scenario 4's waiting dissolve.
pub fn e14_extra_markers() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default().with_seed(SEED);
    let sc = Scenario::fig1(4);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<26}{:>10}{:>12}",
        "markers per color", "mean s", "wait s"
    );
    let mut rows = Vec::new();
    for count in 1..=4usize {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
            .with_count_all(count);
        let (secs, last) = mean_completion(&sc, &flag, &kit, 4, false, &cfg);
        let _ = writeln!(
            report,
            "{:<26}{:>10.1}{:>12.1}",
            count,
            secs,
            last.total_wait_secs()
        );
        rows.push((secs, last.total_wait_secs()));
    }
    let holds = rows.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9) // waits fall
        && rows[3].1 == 0.0 // 4 markers per color: nobody ever waits
        && rows[3].0 < rows[0].0;
    Experiment {
        id: "E14",
        artifact: "§III-C contention extension (ablation)",
        expectation: "extra drawing implements reduce contention; one marker \
                      per student per color eliminates waiting entirely",
        report,
        holds,
    }
}

/// E15 — the students' own observation (§V-A open responses): "adding
/// more processors does not always result in increased efficiency" /
/// "excessive parallelization can lead to resource contention and even
/// slowdowns". Sweep the team size on vertical slices with one marker per
/// color.
pub fn e15_diminishing_returns() -> Experiment {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default().with_seed(SEED);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<10}{:>10}{:>12}{:>14}",
        "students", "mean s", "speedup", "efficiency"
    );
    let mut rows = Vec::new();
    let mut t1 = 0.0;
    for p in [1u32, 2, 3, 4, 6, 12] {
        let sc = Scenario::new(
            format!("slices x{p}"),
            flagsim_core::PartitionStrategy::VerticalSlices(p),
            flagsim_core::CellOrder::RowMajor,
        );
        let (secs, _) = mean_completion(&sc, &flag, &kit, p as usize, false, &cfg);
        if p == 1 {
            t1 = secs;
        }
        let s = speedup(t1, secs);
        let e = s / p as f64;
        let _ = writeln!(report, "{:<10}{:>10.1}{:>11.2}x{:>14.2}", p, secs, s, e);
        rows.push((p, secs, s, e));
    }
    let _ = writeln!(
        report,
        "(four markers cap the useful parallelism: tripling the team from 4 \
         to 12 buys {:.0}% while efficiency collapses from {:.2} to {:.2} — \
         the slowdown case itself is E1's scenario 4 vs 3)",
        100.0 * (rows[3].1 - rows[5].1) / rows[3].1,
        rows[3].3,
        rows[5].3,
    );
    // Efficiency strictly decays once there is any sharing, and speedup
    // saturates far below the team size.
    let effs: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let holds = effs.windows(2).all(|w| w[1] < w[0]) && rows[5].2 < 4.0;
    Experiment {
        id: "E15",
        artifact: "§V-A student takeaway: diminishing returns",
        expectation: "adding processors does not always add efficiency: \
                      returns diminish sharply once the four markers saturate",
        report,
        holds,
    }
}

/// E16 — the "larger paper sizes" request from the student feedback,
/// read through Gustafson's lens: scale the grid with the team and the
/// 4-student speedup holds steady.
pub fn e16_grid_scaling() -> Experiment {
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default().with_seed(SEED);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<12}{:>10}{:>12}{:>12}",
        "grid", "solo s", "4 students", "speedup"
    );
    let mut speeds = Vec::new();
    for (w, h) in [(12u32, 8u32), (24, 16), (48, 32)] {
        let flag = PreparedFlag::at_size(&library::mauritius(), w, h);
        let (t1, _) = mean_completion(&Scenario::fig1(1), &flag, &kit, 1, false, &cfg);
        let (t4, _) = mean_completion(&Scenario::fig1(3), &flag, &kit, 4, false, &cfg);
        let s = speedup(t1, t4);
        let _ = writeln!(report, "{:<12}{:>10.1}{:>12.1}{:>11.2}x", format!("{w}x{h}"), t1, t4, s);
        speeds.push(s);
    }
    let _ = writeln!(
        report,
        "(stripe decomposition scales with the problem: near-4x at every size)"
    );
    Experiment {
        id: "E16",
        artifact: "student feedback: larger paper (Gustafson scaling)",
        expectation: "the stripe decomposition's speedup holds near 4x as the \
                      grid grows with the team",
        report,
        holds: speeds.iter().all(|&s| s > 3.0 && s < 4.4),
    }
}

/// E17 — measurement methodology: the "times on the board" are noisy
/// samples. Run scenarios 1 and 3 across 32 seeds and show that the
/// difference is statistically real (disjoint 95% CIs) while run-to-run
/// noise stays moderate.
pub fn e17_variance() -> Experiment {
    use flagsim_metrics::{clearly_different, RunStats};
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let sample = |n: u8| -> RunStats {
        let sc = Scenario::fig1(n);
        let mut times = Vec::new();
        for rep in 0..REPS {
            let mut team = fresh_team(4, false);
            let cfg = ActivityConfig::default().with_seed(SEED ^ rep.wrapping_mul(0x51ED));
            times.push(sc.run(&flag, &mut team, &kit, &cfg).unwrap().completion_secs());
        }
        RunStats::from_sample(&times)
    };
    let s1 = sample(1);
    let s3 = sample(3);
    let mut report = String::new();
    let _ = writeln!(report, "scenario 1: {} (CV {:.2})", s1.display_secs(), s1.cv());
    let _ = writeln!(report, "scenario 3: {} (CV {:.2})", s3.display_secs(), s3.cv());
    let _ = writeln!(
        report,
        "95% CIs disjoint: {} — the board's scenario ordering is signal, not noise",
        clearly_different(&s1, &s3)
    );
    Experiment {
        id: "E17",
        artifact: "measurement methodology (times on the board)",
        expectation: "per-scenario times vary across teams/seeds, but scenario \
                      differences dwarf the noise",
        report,
        holds: clearly_different(&s1, &s3) && s1.cv() < 0.2 && s3.cv() < 0.2,
    }
}

/// E18 — §IV fill styles: full coverage is slowest, the minimal dab is
/// fastest but erratic; the recommended scribble balances speed and
/// "uniformity of time per cell".
pub fn e18_fill_styles() -> Experiment {
    use flagsim_grid::FillStyle;
    use flagsim_metrics::RunStats;
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let sc = Scenario::fig1(1);
    let mut report = String::new();
    let _ = writeln!(report, "{:<12}{:>16}{:>10}", "fill", "mean ± ci", "CV");
    let mut rows = Vec::new();
    for fill in FillStyle::ALL {
        let mut times = Vec::new();
        for rep in 0..REPS {
            let mut team = fresh_team(1, false);
            let cfg = ActivityConfig::default()
                .with_seed(SEED ^ rep.wrapping_mul(0xF111))
                .with_fill(fill);
            times.push(sc.run(&flag, &mut team, &kit, &cfg).unwrap().completion_secs());
        }
        let stats = RunStats::from_sample(&times);
        let _ = writeln!(
            report,
            "{:<12}{:>16}{:>10.3}",
            format!("{fill:?}"),
            stats.display_secs(),
            stats.cv()
        );
        rows.push((fill, stats));
    }
    let _ = writeln!(
        report,
        "(the paper's advice: scribble — faster than full coverage while keeping \
         'uniformity of time per cell'; minimal dabs are faster still but erratic)"
    );
    let full = &rows[0].1;
    let scribble = &rows[1].1;
    let minimal = &rows[2].1;
    let holds = full.mean > scribble.mean
        && scribble.mean > minimal.mean
        && minimal.cv() > scribble.cv();
    Experiment {
        id: "E18",
        artifact: "§IV fill-style advice (ablation)",
        expectation: "full > scribble > minimal in time; minimal fills lose the \
                      per-cell timing uniformity the scribble gives",
        report,
        holds,
    }
}

/// E19 — §VI future work, executed: "a more in-depth statistical
/// analysis". Pool the pre/post transitions across institutions (and,
/// optionally, simulated repeat offerings) and run McNemar's paired test
/// per concept.
pub fn e19_statistics() -> Experiment {
    use flagsim_assessment::longitudinal::{pooled_analysis, render_analysis};
    use flagsim_assessment::Concept;
    let one = pooled_analysis(1, SEED);
    let mut report = String::from("pooled over USI + TNTech + HPU (one offering):\n");
    report.push_str(&render_analysis(&one, 0.05));
    let five = pooled_analysis(5, SEED);
    report.push_str("\npooled over five simulated offerings:\n");
    report.push_str(&render_analysis(&five, 0.05));
    let find = |ts: &[flagsim_assessment::longitudinal::ConceptTrend], c: Concept| {
        ts.iter().find(|t| t.concept == c).unwrap().test
    };
    let contention_sig = find(&one, Concept::Contention)
        .map(|r| r.significant(0.05))
        .unwrap_or(false);
    let pipelining_sig = find(&one, Concept::Pipelining)
        .map(|r| r.significant(0.05))
        .unwrap_or(false);
    let td_gain = one
        .iter()
        .find(|t| t.concept == Concept::TaskDecomposition)
        .unwrap()
        .net_gain_pp;
    Experiment {
        id: "E19",
        artifact: "§VI future work: statistical analysis",
        expectation: "the concepts the activity visibly teaches (contention, \
                      pipelining) show statistically significant paired gains; \
                      already-known concepts (task decomposition) do not",
        report,
        holds: contention_sig && pipelining_sig && td_gain < 5.0,
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialize experiments as pretty-printed JSON (hand-rolled — the build
/// environment has no serde).
pub fn experiments_to_json(experiments: &[Experiment]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in experiments.iter().enumerate() {
        out.push_str("  {\n");
        for (key, val) in [
            ("id", e.id),
            ("artifact", e.artifact),
            ("expectation", e.expectation),
            ("report", e.report.as_str()),
        ] {
            let _ = write!(out, "    \"{key}\": \"");
            json_escape(val, &mut out);
            out.push_str("\",\n");
        }
        let _ = write!(out, "    \"holds\": {}\n  }}", e.holds);
        out.push_str(if i + 1 < experiments.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Every experiment, in id order.
pub fn all_experiments() -> Vec<Experiment> {
    let mut v = vec![e1_scenarios(), e2_warmup(), e3_implements(), e4_webster(), e5_dependencies()];
    v.extend(e678_tables());
    v.push(e9_quiz());
    v.push(e10_jordan());
    v.push(e12_threads());
    v.push(e13_pipeline());
    v.push(e14_extra_markers());
    v.push(e15_diminishing_returns());
    v.push(e16_grid_scaling());
    v.push(e17_variance());
    v.push(e18_fill_styles());
    v.push(e19_statistics());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_holds() {
        for e in all_experiments() {
            assert!(e.holds, "{} ({}) failed:\n{}", e.id, e.artifact, e.report);
        }
    }
}
