//! Schedule-space explorer benchmark (the `flagsim verify` scoreboard).
//!
//! Two measurements, two hard gates:
//!
//! - **DPOR reduction factor**: N independent workers with pairwise
//!   disjoint resource footprints all wake at t=0 — naive enumeration
//!   visits every one of the N! wakeup orderings, while the sleep-set
//!   partial-order reduction proves them all commuting and runs exactly
//!   one schedule. The factor is schedule-count based (naive runs /
//!   DPOR runs), so it is exact and wall-clock-noise-free; the gate is
//!   **≥ 10×** and holds even in `--smoke` (4 workers → 24×).
//! - **Explored schedules/sec**: wall-clock throughput of the naive
//!   sweep over the independent-worker space, plus the same number for
//!   a real divergent workload (scenario 4's flow shop, 44 schedules).
//!
//! The second gate is soundness: the reduced exploration must discover
//! exactly the outcome classes the naive one does, and the scenario-4
//! run must find the known divergence. The `verify_bench` binary writes
//! the result as `BENCH_verify.json`.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_desim::{Action, Engine, FnProcess, SimDuration};
use flagsim_flags::library;
use flagsim_simcheck::{explore_activity, explore_engine, ExploreConfig, Exploration};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Build N workers, each acquiring its own private marker for a
/// distinct-duration stroke. Every wakeup tie is between commuting
/// processes, so the whole N!-schedule space is one equivalence class.
fn independent_workers(n: usize) -> Engine {
    let mut eng = Engine::new();
    for i in 0..n {
        let rid = eng.add_resource(format!("marker-{i}"), SimDuration::ZERO);
        let mut queue: std::collections::VecDeque<Action> = vec![
            Action::Acquire(rid),
            Action::Work(SimDuration::from_millis(10 + 3 * i as u64)),
            Action::Release(rid),
        ]
        .into();
        eng.add_process(Box::new(FnProcess::new(format!("w{i}"), move |_| {
            queue.pop_front().unwrap_or(Action::Done)
        })));
    }
    eng
}

/// Explore the independent-worker space once per mode, timed.
fn timed_explore(n: usize, naive: bool, bound: usize) -> (Exploration, f64) {
    let cfg = ExploreConfig {
        max_schedules: bound,
        naive,
    };
    let t = Instant::now();
    let ex = explore_engine(|| independent_workers(n), &cfg).expect("exploration runs");
    (ex, t.elapsed().as_secs_f64().max(f64::MIN_POSITIVE))
}

/// One verify-bench measurement.
#[derive(Debug, Clone)]
pub struct VerifyBench {
    /// Independent workers in the reduction workload.
    pub workers: usize,
    /// Schedules the naive full enumeration ran (= workers!).
    pub naive_schedules: usize,
    /// Schedules the DPOR-reduced exploration ran (1, ideally).
    pub dpor_schedules: usize,
    /// `naive_schedules / dpor_schedules` — the headline gate, ≥ 10×.
    pub reduction_factor: f64,
    /// Wall-clock seconds for the naive sweep.
    pub naive_secs: f64,
    /// Wall-clock seconds for the reduced sweep.
    pub dpor_secs: f64,
    /// Naive schedules explored per second (full engine runs).
    pub schedules_per_sec: f64,
    /// Choice states the scenario-4 exploration hashed and visited
    /// (naive mode skips the state-hash set, so the reduced run is the
    /// one with a meaningful state count).
    pub visited_states: usize,
    /// Choice states visited per second, scenario-4 exploration.
    pub states_per_sec: f64,
    /// Schedules the scenario-4 flow-shop exploration ran.
    pub scenario_schedules: usize,
    /// Distinct outcome classes scenario 4 produced (divergent: > 1).
    pub scenario_classes: usize,
    /// Wall-clock seconds for the scenario-4 exploration.
    pub scenario_secs: f64,
    /// Scenario-4 schedules explored per second (full activity runs).
    pub scenario_schedules_per_sec: f64,
    /// The soundness gate: DPOR found exactly the naive outcome classes,
    /// neither sweep truncated, and scenario 4's known divergence (with
    /// its witness pair) was found.
    pub sound: bool,
}

/// Run the benchmark: the N-worker reduction workload in both modes
/// plus one full scenario-4 exploration, with the soundness
/// cross-checks. Panics if an exploration fails outright (this measures
/// the healthy path).
pub fn run_verify_bench(workers: usize) -> VerifyBench {
    // Bound: comfortably above workers! so the naive sweep completes.
    let bound = (1..=workers).product::<usize>() * 4;
    let (naive, naive_secs) = timed_explore(workers, true, bound);
    let (dpor, dpor_secs) = timed_explore(workers, false, bound);

    // Soundness gate 1: the reduction loses no outcome class.
    let naive_keys: BTreeSet<_> = naive.outcomes.iter().map(|c| c.outcome.key()).collect();
    let dpor_keys: BTreeSet<_> = dpor.outcomes.iter().map(|c| c.outcome.key()).collect();
    let classes_ok = naive_keys == dpor_keys && !naive.truncated && !dpor.truncated;
    if !classes_ok {
        eprintln!(
            "soundness: DPOR outcome classes diverged from naive \
             (naive {} class(es), dpor {}, truncated {}/{})",
            naive_keys.len(),
            dpor_keys.len(),
            naive.truncated,
            dpor.truncated
        );
    }

    // Real workload: the scenario-4 flow shop, known divergent.
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(0x5EED);
    let compiled = Scenario::fig1(4)
        .compile(&flag, &cfg)
        .expect("scenario 4 compiles");
    let t = Instant::now();
    let ax = explore_activity(&compiled, &kit, &cfg, &ExploreConfig::default())
        .expect("scenario exploration runs");
    let scenario_secs = t.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let sx = &ax.exploration;
    // Soundness gate 2: the known flow-shop divergence is found, with
    // its minimal witness pair.
    let scenario_ok = !sx.truncated && sx.outcomes.len() > 1 && sx.witness.is_some();
    if !scenario_ok {
        eprintln!(
            "soundness: scenario 4 exploration missed the known divergence \
             ({} class(es), truncated {}, witness {})",
            sx.outcomes.len(),
            sx.truncated,
            sx.witness.is_some()
        );
    }

    VerifyBench {
        workers,
        naive_schedules: naive.schedules_run,
        dpor_schedules: dpor.schedules_run,
        reduction_factor: naive.schedules_run as f64 / dpor.schedules_run.max(1) as f64,
        naive_secs,
        dpor_secs,
        schedules_per_sec: naive.schedules_run as f64 / naive_secs,
        visited_states: sx.visited_states,
        states_per_sec: sx.visited_states as f64 / scenario_secs,
        scenario_schedules: sx.schedules_run,
        scenario_classes: sx.outcomes.len(),
        scenario_secs,
        scenario_schedules_per_sec: sx.schedules_run as f64 / scenario_secs,
        sound: classes_ok && scenario_ok,
    }
}

impl VerifyBench {
    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"verify_explorer\",");
        let _ = writeln!(
            out,
            "  \"workload\": \"independent workers (reduction) + scenario 4 (divergence)\","
        );
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"naive_schedules\": {},", self.naive_schedules);
        let _ = writeln!(out, "  \"dpor_schedules\": {},", self.dpor_schedules);
        let _ = writeln!(out, "  \"reduction_factor\": {:.1},", self.reduction_factor);
        let _ = writeln!(out, "  \"naive_secs\": {:.6},", self.naive_secs);
        let _ = writeln!(out, "  \"dpor_secs\": {:.6},", self.dpor_secs);
        let _ = writeln!(out, "  \"schedules_per_sec\": {:.1},", self.schedules_per_sec);
        let _ = writeln!(out, "  \"visited_states\": {},", self.visited_states);
        let _ = writeln!(out, "  \"states_per_sec\": {:.1},", self.states_per_sec);
        let _ = writeln!(out, "  \"scenario_schedules\": {},", self.scenario_schedules);
        let _ = writeln!(out, "  \"scenario_classes\": {},", self.scenario_classes);
        let _ = writeln!(out, "  \"scenario_secs\": {:.6},", self.scenario_secs);
        let _ = writeln!(
            out,
            "  \"scenario_schedules_per_sec\": {:.1},",
            self.scenario_schedules_per_sec
        );
        let _ = writeln!(out, "  \"sound\": {}", self.sound);
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "verify bench: {} independent workers\n\
             naive  {} schedule(s) in {:.3}s  ({:.0} schedules/s)\n\
             dpor   {} schedule(s) in {:.3}s  → {:.0}x reduction\n\
             scenario 4: {} schedule(s), {} class(es), {} state(s) in {:.3}s  \
             ({:.0} schedules/s, {:.0} states/s)\n\
             sound: {}",
            self.workers,
            self.naive_schedules,
            self.naive_secs,
            self.schedules_per_sec,
            self.dpor_schedules,
            self.dpor_secs,
            self.reduction_factor,
            self.scenario_schedules,
            self.scenario_classes,
            self.visited_states,
            self.scenario_secs,
            self.scenario_schedules_per_sec,
            self.states_per_sec,
            self.sound,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_holds_both_gates_and_serializes() {
        let b = run_verify_bench(4);
        assert!(b.sound, "verify bench soundness gate failed");
        assert_eq!(b.naive_schedules, 24, "4 workers must enumerate 4! orderings");
        assert_eq!(b.dpor_schedules, 1, "disjoint workers must collapse to one run");
        assert!(b.reduction_factor >= 10.0, "{}", b.reduction_factor);
        assert!(b.scenario_classes > 1);
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"workers\": 4",
            "\"naive_schedules\": 24",
            "\"dpor_schedules\": 1",
            "\"reduction_factor\": 24.0",
            "\"sound\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
