//! Serial-vs-parallel sweep throughput benchmark.
//!
//! Times the same Mauritius scenario-4 sweep through the serial loop and
//! the [`flagsim_core::sweep::SweepRunner`] parallel path, checks that
//! the two produce identical statistics (the engine's determinism
//! contract), and reports throughput in repetitions per second. The
//! `sweep_bench` binary writes the result as `BENCH_sweep.json`.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::faults::FaultPlan;
use flagsim_core::scenario::Scenario;
use flagsim_core::sweep::{par_sweep, try_sweep};
use flagsim_core::work::PreparedFlag;
use flagsim_flags::library;
use std::fmt::Write as _;
use std::time::Instant;

/// One serial-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct SweepBench {
    /// Repetitions per sweep.
    pub reps: u64,
    /// Worker threads on the parallel path.
    pub jobs: usize,
    /// CPU cores the machine exposes (`available_parallelism`) — the
    /// ceiling on any real speedup; on a single-core box the parallel
    /// path can only tie the serial one.
    pub cores: usize,
    /// Serial wall-clock seconds.
    pub serial_secs: f64,
    /// Parallel wall-clock seconds.
    pub parallel_secs: f64,
    /// Serial repetitions per second.
    pub serial_throughput: f64,
    /// Parallel repetitions per second.
    pub parallel_throughput: f64,
    /// `parallel_throughput / serial_throughput`.
    pub speedup: f64,
    /// Whether the parallel sweep's statistics were bit-for-bit
    /// identical to the serial sweep's — a correctness gate, not a
    /// performance number.
    pub deterministic: bool,
}

/// Run the benchmark: a 4-student Mauritius scenario-4 sweep of `reps`
/// repetitions, serial then with `jobs` workers. Panics if either sweep
/// fails outright (this is a measurement of the healthy path).
pub fn run_sweep_bench(reps: u64, jobs: usize) -> SweepBench {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(0x5EED);
    let scenario = Scenario::fig1(4);
    let plan = FaultPlan::none();

    let t0 = Instant::now();
    let serial = try_sweep(&scenario, &flag, &kit, &cfg, 4, false, reps, &plan)
        .expect("serial sweep failed");
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = par_sweep(&scenario, &flag, &kit, &cfg, 4, false, reps, &plan, jobs)
        .expect("parallel sweep failed");
    let parallel_secs = t1.elapsed().as_secs_f64();

    let deterministic =
        parallel.completion == serial.completion && parallel.waiting == serial.waiting;
    let serial_throughput = reps as f64 / serial_secs.max(f64::MIN_POSITIVE);
    let parallel_throughput = reps as f64 / parallel_secs.max(f64::MIN_POSITIVE);
    SweepBench {
        reps,
        jobs,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        serial_throughput,
        parallel_throughput,
        speedup: parallel_throughput / serial_throughput,
        deterministic,
    }
}

impl SweepBench {
    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"sweep_serial_vs_parallel\",");
        let _ = writeln!(out, "  \"scenario\": \"scenario 4: vertical slices\",");
        let _ = writeln!(out, "  \"flag\": \"Mauritius\",");
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(out, "  \"parallel_secs\": {:.6},", self.parallel_secs);
        let _ = writeln!(
            out,
            "  \"serial_throughput_reps_per_sec\": {:.3},",
            self.serial_throughput
        );
        let _ = writeln!(
            out,
            "  \"parallel_throughput_reps_per_sec\": {:.3},",
            self.parallel_throughput
        );
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(out, "  \"deterministic\": {}", self.deterministic);
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "sweep bench: {} reps, {} job(s) on {} core(s)\n\
             serial   {:.3}s  ({:.1} reps/s)\n\
             parallel {:.3}s  ({:.1} reps/s)\n\
             speedup  {:.2}x  deterministic: {}",
            self.reps,
            self.jobs,
            self.cores,
            self.serial_secs,
            self.serial_throughput,
            self.parallel_secs,
            self.parallel_throughput,
            self.speedup,
            self.deterministic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_deterministic_and_serializes() {
        let b = run_sweep_bench(6, 2);
        assert!(b.deterministic, "parallel sweep diverged from serial");
        assert_eq!(b.reps, 6);
        assert!(b.serial_secs > 0.0 && b.parallel_secs > 0.0);
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"reps\": 6",
            "\"jobs\": 2",
            "\"cores\":",
            "\"speedup\":",
            "\"deterministic\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
