//! Distributed-observability overhead-and-correctness benchmark.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin obs_bench -- \
//!     [--reps N] [--workers N] [--chunk K] [--trials N] \
//!     [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 20000 reps, 3 workers, chunk 128, best of 3 trials,
//! `BENCH_obs.json` — a campaign large enough that the coordinator's
//! automatic rep sampling engages (~256 instrumented reps), which is
//! the configuration the ≤5% overhead gate is about. `--smoke` shrinks
//! the run (16 reps, 2 workers, chunk 3, 1 trial) and skips the
//! wall-clock overhead gate — CI boxes are noisy — while keeping the
//! determinism gates hard.
//!
//! Exits non-zero on gate failure: shipping-on and forced-loss
//! statistics must be bit-for-bit identical to serial, and (full mode
//! only) telemetry shipping may cost at most 5% wall-clock over the
//! same sharded run with shipping off.

fn main() {
    let mut reps: u64 = 20_000;
    let mut workers: usize = 3;
    let mut chunk: u64 = 128;
    let mut trials: u32 = 3;
    let mut smoke = false;
    let mut out_path = String::from("BENCH_obs.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--chunk needs a number");
            }
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                reps = 16;
                workers = 2;
                chunk = 3;
                trials = 1;
                smoke = true;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: obs_bench [--reps N] [--workers N] [--chunk K] [--trials N] \
                     [--out PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_obs_bench(reps, workers, chunk, trials);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.gates_pass(smoke) {
        eprintln!(
            "FAIL: shipping_identical={} lossy_identical={} frames_shipped={} \
             overhead_frac={:.4} (max {})",
            bench.shipping_identical,
            bench.lossy_identical,
            bench.frames_shipped,
            bench.overhead_frac,
            flagsim_bench::obs_bench::MAX_OVERHEAD_FRAC,
        );
        std::process::exit(1);
    }
}
