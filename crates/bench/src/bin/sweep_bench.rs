//! Serial-vs-parallel sweep throughput benchmark.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin sweep_bench -- \
//!     [--reps N] [--jobs N] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 256 reps, one job per core, `BENCH_sweep.json`. `--smoke`
//! shrinks the run (8 reps, 2 jobs) so CI can exercise the parallel
//! path on every push without burning minutes.
//!
//! Exits non-zero if the parallel sweep's statistics diverge from the
//! serial sweep's — determinism is a correctness gate. The ≥2× speedup
//! goal is only reachable with ≥2 physical cores, so it is reported,
//! not asserted.

fn main() {
    let mut reps: u64 = 256;
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out_path = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                reps = 8;
                jobs = 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: sweep_bench [--reps N] [--jobs N] [--out PATH] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_sweep_bench(reps, jobs);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.deterministic {
        eprintln!("FAIL: parallel sweep statistics diverged from serial");
        std::process::exit(1);
    }
}
