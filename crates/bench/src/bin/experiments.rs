//! The experiments harness: regenerates every table and figure of the
//! paper and prints paper-vs-measured, experiment by experiment.
//!
//! Run with `cargo run -p flagsim-bench --bin experiments --release`.

//! Pass `--json <path>` to also write the results as JSON.

fn main() {
    let experiments = flagsim_bench::all_experiments();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let path = args.next().expect("--json needs a path");
            let json = flagsim_bench::experiments_to_json(&experiments);
            std::fs::write(&path, json).expect("write JSON results");
            eprintln!("wrote {path}");
        }
    }
    let total = experiments.len();
    let mut held = 0;
    for e in &experiments {
        println!("================================================================");
        println!("{} — {}", e.id, e.artifact);
        println!("paper: {}", e.expectation);
        println!("----------------------------------------------------------------");
        print!("{}", e.report);
        println!(
            "shape {}",
            if e.holds {
                held += 1;
                "HOLDS"
            } else {
                "DOES NOT HOLD"
            }
        );
    }
    println!("================================================================");
    println!("{held}/{total} experiment shapes hold");
    if held != total {
        std::process::exit(1);
    }
}
