//! Sharded-sweep correctness-and-throughput benchmark.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin shard_bench -- \
//!     [--reps N] [--workers N] [--kill-points N] [--chunk K] \
//!     [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 128 reps, 3 workers, 4 kill points, chunk 8,
//! `BENCH_shard.json`. `--smoke` shrinks the run (12 reps, 2 workers,
//! 3 kill points, chunk 3) so CI exercises the full protocol on every
//! push.
//!
//! Exits non-zero if either hard gate fails: the multi-worker sharded
//! statistics must be bit-for-bit identical to serial, and every
//! kill-mid-sweep → resume cycle must land the uninterrupted statistics
//! and an identical final checkpoint file.

fn main() {
    let mut reps: u64 = 128;
    let mut workers: usize = 3;
    let mut kill_points: u64 = 4;
    let mut chunk: u64 = 8;
    let mut out_path = String::from("BENCH_shard.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            "--kill-points" => {
                kill_points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--kill-points needs a number");
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--chunk needs a number");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                reps = 12;
                workers = 2;
                kill_points = 3;
                chunk = 3;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: shard_bench [--reps N] [--workers N] [--kill-points N] \
                     [--chunk K] [--out PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_shard_bench(reps, workers, kill_points, chunk);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.gates_pass() {
        eprintln!(
            "FAIL: sharded_identical={} kill_resume_identical={}",
            bench.sharded_identical, bench.kill_resume_identical
        );
        std::process::exit(1);
    }
}
