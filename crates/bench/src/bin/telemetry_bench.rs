//! Telemetry no-op overhead gate.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin telemetry_bench -- \
//!     [--reps N] [--iters N] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 64 reps, 5M disabled-call iterations, `BENCH_telemetry.json`.
//! `--smoke` shrinks the run (8 reps, 500k iterations) for CI. Exits
//! non-zero when disabled instrumentation claims more than 5% of the
//! workload — permanently-on telemetry must stay free when nobody is
//! profiling.

fn main() {
    let mut reps: u64 = 64;
    let mut iters: u64 = 5_000_000;
    let mut out_path = String::from("BENCH_telemetry.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a number");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                reps = 8;
                iters = 500_000;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: telemetry_bench [--reps N] [--iters N] [--out PATH] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_telemetry_bench(reps, iters);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.pass {
        eprintln!(
            "FAIL: disabled-telemetry overhead {:.4} exceeds the {:.2} gate",
            bench.noop_overhead_ratio,
            flagsim_bench::telemetry_bench::NOOP_OVERHEAD_THRESHOLD
        );
        std::process::exit(1);
    }
}
