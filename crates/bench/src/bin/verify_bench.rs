//! Schedule-space explorer benchmark.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin verify_bench -- \
//!     [--workers N] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 6 independent workers (720 naive schedules),
//! `BENCH_verify.json`. `--smoke` shrinks to 4 workers (24 naive
//! schedules) so CI can run both gates on every push — the gates are
//! count-based, not wall-clock-based, so they hold at smoke scale.
//!
//! Exits non-zero if the DPOR reduction factor falls below 10× or if
//! any soundness cross-check fails (reduced exploration losing an
//! outcome class, or the known scenario-4 divergence going unfound).

fn main() {
    let mut workers: usize = 6;
    let mut out_path = String::from("BENCH_verify.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|w| (2..=8).contains(w))
                    .expect("--workers needs a number in 2..=8");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                workers = 4;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: verify_bench [--workers N] [--out PATH] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_verify_bench(workers);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.sound {
        eprintln!("FAIL: verify soundness gate (outcome classes / known divergence)");
        std::process::exit(1);
    }
    // The reduction gate is exact — schedule counts, not wall clocks —
    // so there is no noise guard band and no smoke exemption.
    if bench.reduction_factor < 10.0 {
        eprintln!(
            "FAIL: DPOR reduction factor {:.1}x below the 10x gate \
             ({} naive vs {} reduced schedule(s))",
            bench.reduction_factor, bench.naive_schedules, bench.dpor_schedules
        );
        std::process::exit(1);
    }
}
