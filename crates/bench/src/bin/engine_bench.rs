//! Engine hot-path benchmark.
//!
//! ```text
//! cargo run -p flagsim-bench --release --bin engine_bench -- \
//!     [--reps N] [--e2e-reps N] [--out PATH] [--smoke]
//! ```
//!
//! Defaults: 200000 engine reps, 2000 end-to-end reps,
//! `BENCH_engine.json`. `--smoke` shrinks the run (200 engine reps, 16
//! end-to-end reps) and skips the throughput floor so CI can run the
//! determinism gate on every push without burning minutes.
//!
//! Exits non-zero if any determinism cross-check fails (always), or if
//! a full run falls below 7× the pre-rewrite 31k reps/sec baseline —
//! a guard band under the 10× target, because wall clocks on shared
//! 1-core hosts swing ±20-30% while the determinism gates stay exact.

fn main() {
    let mut reps: u64 = 200_000;
    let mut e2e_reps: u64 = 2_000;
    let mut out_path = String::from("BENCH_engine.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--e2e-reps" => {
                e2e_reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--e2e-reps needs a number");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--smoke" => {
                smoke = true;
                reps = 200;
                e2e_reps = 16;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: engine_bench [--reps N] [--e2e-reps N] [--out PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    let bench = flagsim_bench::run_engine_bench(reps, e2e_reps);
    println!("{}", bench.summary());
    std::fs::write(&out_path, bench.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !bench.deterministic {
        eprintln!("FAIL: engine determinism gate (repeat traces / trace sink / sweep stats)");
        std::process::exit(1);
    }
    // The target is 10x the pre-rewrite baseline and the committed
    // BENCH_engine.json demonstrates it, but shared-host wall clocks
    // swing ±20-30% (invisible throttling/steal), so the hard failure
    // uses a guard band: a genuine regression from 10x lands well below
    // 7x, while a throttled-host run of a true-10x build does not.
    if !smoke && bench.speedup_vs_baseline < 7.0 {
        eprintln!(
            "FAIL: engine throughput regression: {:.1}x vs the 10x target over {:.0} reps/s \
             (hard floor 7x to absorb shared-host clock noise)",
            bench.speedup_vs_baseline, bench.baseline_reps_per_sec
        );
        std::process::exit(1);
    }
}
