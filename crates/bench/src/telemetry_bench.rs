//! Telemetry overhead benchmark: the permanently-instrumented sim stack
//! must cost (almost) nothing when no collector is installed.
//!
//! Three measurements feed the gate:
//!
//! 1. the workload — a serial Mauritius scenario-4 sweep — with telemetry
//!    *disabled* (the normal state: every instrumentation call is one
//!    relaxed atomic load);
//! 2. the same sweep under an installed [`Collector`] (informational:
//!    what a profiling session costs);
//! 3. a microbench of the disabled span + counter calls themselves.
//!
//! The gate multiplies the measured per-call disabled cost by the number
//! of instrumentation touchpoints the sweep exercises and divides by the
//! workload time: that estimated share must stay under
//! [`NOOP_OVERHEAD_THRESHOLD`] (5%). A direct A/B of two workload runs
//! would drown in scheduler noise at these magnitudes — the touchpoint
//! estimate is deterministic and conservative. The `telemetry_bench`
//! binary writes the result as `BENCH_telemetry.json` and exits non-zero
//! when the gate fails.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::faults::FaultPlan;
use flagsim_core::scenario::Scenario;
use flagsim_core::sweep::try_sweep;
use flagsim_core::work::PreparedFlag;
use flagsim_flags::library;
use flagsim_telemetry::Collector;
use std::fmt::Write as _;
use std::time::Instant;

/// The no-op overhead gate: disabled instrumentation may claim at most
/// this fraction of the workload's wall-clock time.
pub const NOOP_OVERHEAD_THRESHOLD: f64 = 0.05;

/// Counter/gauge/`enabled()` touchpoints per repetition beyond the span
/// calls (which are counted from the recorded trace): the end-of-run
/// metric folds in `desim`, `run`, and the sweep bookkeeping.
const COUNTER_CALLS_PER_REP: f64 = 4.0;

/// One telemetry-overhead measurement.
#[derive(Debug, Clone)]
pub struct TelemetryBench {
    /// Repetitions per sweep.
    pub reps: u64,
    /// Iterations of the disabled-call microbench.
    pub noop_iters: u64,
    /// Sweep wall-clock seconds with no collector installed.
    pub baseline_secs: f64,
    /// Sweep wall-clock seconds under an installed collector.
    pub enabled_secs: f64,
    /// Spans the enabled sweep recorded.
    pub spans_recorded: usize,
    /// Measured cost of one disabled span + counter call pair, in ns.
    pub noop_call_ns: f64,
    /// Instrumentation touchpoints exercised per repetition.
    pub calls_per_rep: f64,
    /// Estimated share of the baseline workload spent in disabled
    /// instrumentation — the gated number.
    pub noop_overhead_ratio: f64,
    /// `(enabled_secs - baseline_secs) / baseline_secs`; noisy and
    /// informational only.
    pub enabled_overhead_ratio: f64,
    /// Whether `noop_overhead_ratio` stayed under the 5% gate.
    pub pass: bool,
}

/// Run the benchmark: a serial Mauritius scenario-4 sweep of `reps`
/// repetitions, bare and then collected, plus `noop_iters` iterations of
/// the disabled instrumentation calls.
pub fn run_telemetry_bench(reps: u64, noop_iters: u64) -> TelemetryBench {
    assert!(reps > 0 && noop_iters > 0, "measurements need iterations");
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(0x5EED);
    let scenario = Scenario::fig1(4);
    let plan = FaultPlan::none();

    // 1. Baseline: the instrumented stack with telemetry disabled.
    let t0 = Instant::now();
    try_sweep(&scenario, &flag, &kit, &cfg, 4, false, reps, &plan)
        .expect("baseline sweep failed");
    let baseline_secs = t0.elapsed().as_secs_f64();

    // 2. The same sweep under a collector.
    let collector = Collector::install();
    let t1 = Instant::now();
    let collected = try_sweep(&scenario, &flag, &kit, &cfg, 4, false, reps, &plan);
    let enabled_secs = t1.elapsed().as_secs_f64();
    let set = collector.finish();
    collected.expect("collected sweep failed");

    // 3. Disabled-call microbench: one span guard plus one counter bump,
    //    exactly what a hot path pays when nobody is profiling.
    let t2 = Instant::now();
    for i in 0..noop_iters {
        let guard = flagsim_telemetry::span("sim", "bench.noop");
        flagsim_telemetry::count("bench.noop", 1);
        std::hint::black_box(&guard);
        std::hint::black_box(i);
    }
    let noop_call_ns = t2.elapsed().as_nanos() as f64 / noop_iters as f64;

    let calls_per_rep = set.len() as f64 / reps as f64 + COUNTER_CALLS_PER_REP;
    let noop_overhead_secs = calls_per_rep * reps as f64 * noop_call_ns * 1e-9;
    let noop_overhead_ratio = noop_overhead_secs / baseline_secs.max(f64::MIN_POSITIVE);
    let enabled_overhead_ratio =
        (enabled_secs - baseline_secs) / baseline_secs.max(f64::MIN_POSITIVE);
    TelemetryBench {
        reps,
        noop_iters,
        baseline_secs,
        enabled_secs,
        spans_recorded: set.len(),
        noop_call_ns,
        calls_per_rep,
        noop_overhead_ratio,
        enabled_overhead_ratio,
        pass: noop_overhead_ratio <= NOOP_OVERHEAD_THRESHOLD,
    }
}

impl TelemetryBench {
    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"telemetry_noop_overhead\",");
        let _ = writeln!(out, "  \"scenario\": \"scenario 4: vertical slices\",");
        let _ = writeln!(out, "  \"flag\": \"Mauritius\",");
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"noop_iters\": {},", self.noop_iters);
        let _ = writeln!(out, "  \"baseline_secs\": {:.6},", self.baseline_secs);
        let _ = writeln!(out, "  \"enabled_secs\": {:.6},", self.enabled_secs);
        let _ = writeln!(out, "  \"spans_recorded\": {},", self.spans_recorded);
        let _ = writeln!(out, "  \"noop_call_ns\": {:.3},", self.noop_call_ns);
        let _ = writeln!(out, "  \"calls_per_rep\": {:.2},", self.calls_per_rep);
        let _ = writeln!(
            out,
            "  \"noop_overhead_ratio\": {:.6},",
            self.noop_overhead_ratio
        );
        let _ = writeln!(
            out,
            "  \"enabled_overhead_ratio\": {:.6},",
            self.enabled_overhead_ratio
        );
        let _ = writeln!(out, "  \"threshold\": {NOOP_OVERHEAD_THRESHOLD},");
        let _ = writeln!(out, "  \"pass\": {}", self.pass);
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "telemetry bench: {} reps, {} no-op iters\n\
             baseline (disabled) {:.3}s   collected {:.3}s   spans {}\n\
             disabled call {:.1}ns x {:.1} calls/rep -> {:.4}% of workload \
             (gate {:.0}%)  pass: {}",
            self.reps,
            self.noop_iters,
            self.baseline_secs,
            self.enabled_secs,
            self.spans_recorded,
            self.noop_call_ns,
            self.calls_per_rep,
            self.noop_overhead_ratio * 100.0,
            NOOP_OVERHEAD_THRESHOLD * 100.0,
            self.pass,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_passes_the_gate_and_serializes() {
        let b = run_telemetry_bench(4, 100_000);
        assert!(b.pass, "no-op overhead over the gate: {}", b.summary());
        assert!(b.spans_recorded > 0, "collected sweep recorded no spans");
        assert!(b.noop_call_ns > 0.0);
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"benchmark\": \"telemetry_noop_overhead\"",
            "\"reps\": 4",
            "\"noop_overhead_ratio\":",
            "\"threshold\": 0.05",
            "\"pass\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
