//! # flagsim-bench
//!
//! The experiment harness: one function per table/figure of the paper,
//! each returning both structured results and a printable report. The
//! `experiments` binary prints them all; the Criterion benches in
//! `benches/` time the underlying workloads; the assertions live in the
//! workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine_bench;
pub mod experiments;
pub mod obs_bench;
pub mod shard_bench;
pub mod sweep_bench;
pub mod telemetry_bench;
pub mod verify_bench;

pub use engine_bench::{run_engine_bench, EngineBench};
pub use experiments::{all_experiments, experiments_to_json};
pub use obs_bench::{run_obs_bench, ObsBench};
pub use shard_bench::{run_shard_bench, ShardBench};
pub use sweep_bench::{run_sweep_bench, SweepBench};
pub use telemetry_bench::{run_telemetry_bench, TelemetryBench};
pub use verify_bench::{run_verify_bench, VerifyBench};
