//! Distributed-observability overhead-and-correctness benchmark.
//!
//! Measures what telemetry shipping costs a sharded sweep and proves
//! what it may never cost: statistics bits. Over the same Mauritius
//! scenario-4 job:
//!
//! 1. serial in-process baseline — the bit-level statistics reference;
//! 2. a multi-worker sharded run with **no** telemetry collector
//!    (shipping off) — wall-clock reference, best of `trials`;
//! 3. the same sharded run with a collector installed (workers ship
//!    spans, logs, flows, and counters every lease, rep-sampled by the
//!    coordinator's auto stride) — best of `trials`; **soft gate**:
//!    wall-clock overhead ≤ 5% over (2);
//! 4. a sharded run with forced whole-batch telemetry loss
//!    (`drop_telemetry_every: 2`) — lossy shipping.
//!
//! **Hard gates** (checked in every mode, including `--smoke`): the
//! statistics of (3) and (4) are bit-for-bit identical to (1) —
//! telemetry frames are observational and provably absent from the
//! merge path, whether shipping is on, off, or lossy.
//!
//! The `obs_bench` binary writes the result as `BENCH_obs.json` and
//! exits non-zero on gate failure (`--smoke` skips only the wall-clock
//! overhead gate; determinism gates always bite).

use flagsim_metrics::RunStats;
use flagsim_shard::{
    run_sweep, serve, CoordinatorConfig, JobSpec, LeaseConfig, ObsHub, ShardOutcome, WorkerOptions,
};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::time::Instant;

/// One distributed-observability benchmark run.
#[derive(Debug, Clone)]
pub struct ObsBench {
    /// Repetitions per campaign.
    pub reps: u64,
    /// TCP worker sessions in the sharded runs.
    pub workers: usize,
    /// Reps per lease grant.
    pub chunk: u64,
    /// Timed trials per mode (best-of).
    pub trials: u32,
    /// Sharded wall-clock seconds with shipping off (best of trials).
    pub baseline_secs: f64,
    /// Sharded wall-clock seconds with shipping on (best of trials).
    pub shipping_secs: f64,
    /// Best per-pair `shipping / baseline - 1` across the interleaved
    /// trials (0 when shipping is faster). Pairing the ratio keeps
    /// machine-load drift between trials out of the overhead estimate.
    pub overhead_frac: f64,
    /// Hard gate: shipping-on statistics bit-identical to serial.
    pub shipping_identical: bool,
    /// Hard gate: forced-loss statistics bit-identical to serial.
    pub lossy_identical: bool,
    /// Telemetry frames the fleet view saw workers ship during the
    /// shipping-on trials — evidence the pipeline actually ran.
    pub frames_shipped: u64,
}

/// The soft wall-clock ceiling: shipping may cost at most 5%.
pub const MAX_OVERHEAD_FRAC: f64 = 0.05;

impl ObsBench {
    /// Whether all gates pass. `smoke` skips the wall-clock overhead
    /// gate (timings on a loaded CI box are noise); the determinism
    /// gates are always hard.
    pub fn gates_pass(&self, smoke: bool) -> bool {
        self.shipping_identical
            && self.lossy_identical
            && self.frames_shipped > 0
            && (smoke || self.overhead_frac <= MAX_OVERHEAD_FRAC)
    }

    /// Hand-rolled JSON (the build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"distributed_observability\",");
        let _ = writeln!(out, "  \"scenario\": \"scenario 4: vertical slices\",");
        let _ = writeln!(out, "  \"flag\": \"Mauritius\",");
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"chunk\": {},", self.chunk);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"baseline_secs\": {:.6},", self.baseline_secs);
        let _ = writeln!(out, "  \"shipping_secs\": {:.6},", self.shipping_secs);
        let _ = writeln!(out, "  \"overhead_frac\": {:.4},", self.overhead_frac);
        let _ = writeln!(out, "  \"max_overhead_frac\": {MAX_OVERHEAD_FRAC},");
        let _ = writeln!(out, "  \"frames_shipped\": {},", self.frames_shipped);
        let _ = writeln!(out, "  \"shipping_identical\": {},", self.shipping_identical);
        let _ = writeln!(out, "  \"lossy_identical\": {}", self.lossy_identical);
        out.push('}');
        out
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "obs bench: {} reps, {} worker(s), chunk {}, best of {} trial(s)\n\
             shipping off {:.3}s\n\
             shipping on  {:.3}s  (overhead {:+.1}%, {} frame(s) shipped)\n\
             gates: shipping bit-identical: {}  lossy bit-identical: {}",
            self.reps,
            self.workers,
            self.chunk,
            self.trials,
            self.baseline_secs,
            self.shipping_secs,
            self.overhead_frac * 100.0,
            self.frames_shipped,
            self.shipping_identical,
            self.lossy_identical,
        )
    }
}

fn bench_job(reps: u64) -> JobSpec {
    JobSpec {
        scenario: "4".into(),
        flag: "Mauritius".into(),
        kind: "dauber".into(),
        seed: 0x0B5,
        reps,
        team: 4,
        warmup: false,
    }
}

fn stats_bits_equal(a: &RunStats, b: &RunStats) -> bool {
    a.n == b.n
        && a.mean.to_bits() == b.mean.to_bits()
        && a.stddev.to_bits() == b.stddev.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
        && a.median.to_bits() == b.median.to_bits()
}

fn completed(outcome: ShardOutcome) -> (RunStats, RunStats) {
    match outcome {
        ShardOutcome::Completed(r) => (r.completion, r.waiting),
        other => panic!("obs bench expected completion, got {other:?}"),
    }
}

fn spawn_workers(
    n: usize,
    drop_telemetry_every: u64,
) -> (Vec<String>, Vec<std::thread::JoinHandle<()>>) {
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind bench worker");
        endpoints.push(listener.local_addr().expect("worker addr").to_string());
        handles.push(std::thread::spawn(move || {
            let opts = WorkerOptions {
                once: true,
                name: format!("obs-w{i}"),
                quiet: true,
                drop_telemetry_every,
            };
            serve(&listener, &opts).ok();
        }));
    }
    (endpoints, handles)
}

/// One sharded campaign; returns stats, wall-clock seconds, and the
/// telemetry frames the fleet view saw shipped (0 when no collector
/// was installed, since workers then get no trace context).
fn sharded_run(
    job: &JobSpec,
    workers: usize,
    chunk: u64,
    collect: bool,
    drop_telemetry_every: u64,
) -> ((RunStats, RunStats), f64, u64) {
    let collector = collect.then(flagsim_telemetry::Collector::install);
    let (endpoints, handles) = spawn_workers(workers, drop_telemetry_every);
    let hub = ObsHub::new();
    let cfg = CoordinatorConfig {
        endpoints,
        lease: LeaseConfig { chunk, ..LeaseConfig::default() },
        obs: Some(hub.clone()),
        ..CoordinatorConfig::default()
    };
    let t = Instant::now();
    let stats = completed(run_sweep(job, &cfg).expect("sharded sweep"));
    let secs = t.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("bench worker thread");
    }
    if let Some(c) = collector {
        let _ = c.finish();
    }
    let shipped = hub.with(|fv| fv.workers().map(|w| w.shipped_frames).sum());
    (stats, secs, shipped)
}

/// Run the benchmark: serial statistics baseline, then `trials` timed
/// sharded campaigns with shipping off and on (best-of), then a
/// forced-loss campaign. Panics only on infrastructure errors; gate
/// failures are reported in the result.
pub fn run_obs_bench(reps: u64, workers: usize, chunk: u64, trials: u32) -> ObsBench {
    let job = bench_job(reps);
    let trials = trials.max(1);

    // 1. Serial baseline: the statistics reference.
    let (serial_c, serial_w) =
        completed(run_sweep(&job, &CoordinatorConfig::default()).expect("serial baseline"));
    let identical = |(c, w): &(RunStats, RunStats)| {
        stats_bits_equal(c, &serial_c) && stats_bits_equal(w, &serial_w)
    };

    // 2 & 3. Timed sharded runs, best of trials. Baseline and shipping
    // runs are interleaved so each pair sees the same machine weather,
    // and the overhead is the best of the *per-pair* ratios: comparing
    // a global-best baseline against shipping runs from noisier moments
    // lets load drift on a busy (or single-core) host masquerade as
    // shipping overhead.
    let mut baseline_secs = f64::INFINITY;
    let mut shipping_secs = f64::INFINITY;
    let mut best_ratio = f64::INFINITY;
    let mut shipping_identical = true;
    let mut frames_shipped = 0;
    for _ in 0..trials {
        let (stats, base_secs, _) = sharded_run(&job, workers, chunk, false, 0);
        shipping_identical &= identical(&stats);
        baseline_secs = baseline_secs.min(base_secs);
        let (stats, ship_secs, shipped) = sharded_run(&job, workers, chunk, true, 0);
        shipping_identical &= identical(&stats);
        shipping_secs = shipping_secs.min(ship_secs);
        frames_shipped = frames_shipped.max(shipped);
        best_ratio = best_ratio.min(ship_secs / base_secs.max(f64::MIN_POSITIVE));
    }

    // 4. Forced whole-batch loss: drops may cost visibility, never bits.
    let (lossy_stats, _, _) = sharded_run(&job, workers, chunk, true, 2);
    let lossy_identical = identical(&lossy_stats);

    ObsBench {
        reps,
        workers,
        chunk,
        trials,
        baseline_secs,
        shipping_secs,
        overhead_frac: (best_ratio - 1.0).max(0.0),
        shipping_identical,
        lossy_identical,
        frames_shipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_passes_determinism_gates_and_serializes() {
        let b = run_obs_bench(8, 2, 2, 1);
        assert!(b.shipping_identical, "shipping-on stats diverged from serial");
        assert!(b.lossy_identical, "forced-loss stats diverged from serial");
        assert!(b.frames_shipped > 0, "no telemetry frames were shipped");
        assert!(b.gates_pass(true));
        let json = b.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"benchmark\": \"distributed_observability\"",
            "\"reps\": 8",
            "\"workers\": 2",
            "\"shipping_identical\": true",
            "\"lossy_identical\": true",
            "\"overhead_frac\"",
            "\"frames_shipped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
