//! Property tests: rasterization invariants that must hold for every flag
//! in the library at any raster size.

use flagsim_flags::shape::pt;
use flagsim_flags::{library, parse, to_text, FlagSpec, Layer, Shape};
use flagsim_grid::region::verify_partition;
use flagsim_grid::{Color, Region};
use proptest::prelude::*;

fn frac() -> impl Strategy<Value = f64> {
    // Coordinates with limited precision so text round-trips are exact.
    (0u32..=100).prop_map(|v| f64::from(v) / 100.0)
}

fn color_strategy() -> impl Strategy<Value = Color> {
    prop_oneof![
        Just(Color::Red),
        Just(Color::Blue),
        Just(Color::Yellow),
        Just(Color::Green),
        Just(Color::White),
        Just(Color::Black),
        Just(Color::Orange),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Color::Rgb(r, g, b)),
    ]
}

/// Shapes whose text form round-trips exactly. `aspect` must match the
/// flag's width/height ratio, because the DSL derives it from the header.
fn shape_strategy(aspect: f64) -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Full),
        (frac(), frac(), frac(), frac()).prop_map(|(a, b, c, d)| Shape::Rect {
            u0: a.min(c),
            v0: b.min(d),
            u1: a.max(c),
            v1: b.max(d),
        }),
        (0u32..4, 1u32..5).prop_map(|(i, n)| Shape::HStripe {
            index: i.min(n - 1),
            count: n,
        }),
        (0u32..4, 1u32..5).prop_map(|(i, n)| Shape::VStripe {
            index: i.min(n - 1),
            count: n,
        }),
        (frac(), frac(), frac(), frac(), frac(), frac()).prop_map(|(a, b, c, d, e, f)| {
            Shape::Triangle {
                a: pt(a, b),
                b: pt(c, d),
                c: pt(e, f),
            }
        }),
        (frac(), frac(), frac()).prop_map(move |(u, v, r)| Shape::Disc {
            center: pt(u, v),
            r: r / 2.0,
            aspect,
        }),
        (frac(), frac(), frac(), frac()).prop_map(|(u, v, w, h)| Shape::Cross {
            center: pt(u, v),
            arm_w: w / 2.0,
            arm_h: h / 2.0,
        }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = FlagSpec> {
    (2u32..20, 2u32..16).prop_flat_map(|(w, h)| {
        let aspect = f64::from(w) / f64::from(h);
        proptest::collection::vec((color_strategy(), shape_strategy(aspect)), 1..5).prop_map(
            move |layers| {
                let layers = layers
                    .into_iter()
                    .enumerate()
                    .map(|(i, (color, shape))| Layer::new(format!("layer {i}"), color, shape))
                    .collect();
                FlagSpec::new("prop flag", w, h, layers)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layered and flat rasterizations agree on final colors.
    #[test]
    fn layered_equals_flat(idx in 0usize..13, w in 4u32..48, h in 4u32..48) {
        let flag = &library::all()[idx];
        let layered = flag.rasterize_at(w, h);
        let flat = flag.rasterize_flat_at(w, h);
        prop_assert!(flagsim_grid::diff(&layered, &flat).is_identical(),
            "{} at {w}x{h}", flag.name);
    }

    /// Visible-cell regions partition the painted region exactly.
    #[test]
    fn visible_regions_partition(idx in 0usize..13, scale in 1u32..4) {
        let flag = &library::all()[idx];
        let (w, h) = (flag.default_width * scale, flag.default_height * scale);
        let parts: Vec<Region> = (0..flag.layer_count())
            .map(|li| flag.visible_cells_at(li, w, h))
            .collect();
        // Painted region at the same size.
        let mut whole = Region::new();
        for p in &parts {
            for id in p.iter() {
                whole.push(id);
            }
        }
        // Each visible region must be a subset of its painted region, and
        // together they must tile `whole` without overlap.
        prop_assert!(verify_partition(&whole, &parts).is_ok(), "{}", flag.name);
        for (li, part) in parts.iter().enumerate() {
            let painted = flag.layer_cells_at(li, w, h);
            for id in part.iter() {
                prop_assert!(painted.contains(id),
                    "{}: visible cell {id} of layer {li} not painted by it", flag.name);
            }
        }
    }

    /// Rasterization is deterministic.
    #[test]
    fn rasterize_deterministic(idx in 0usize..13) {
        let flag = &library::all()[idx];
        let a = flag.rasterize();
        let b = flag.rasterize();
        prop_assert!(flagsim_grid::diff(&a, &b).is_identical());
    }

    /// Arbitrary generated specs survive the text DSL round-trip with an
    /// identical raster.
    #[test]
    fn generated_specs_roundtrip_through_text(spec in spec_strategy()) {
        let text = to_text(&spec);
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("unparseable own output: {e}\n{text}"));
        prop_assert_eq!(parsed.layer_count(), spec.layer_count());
        let a = spec.rasterize();
        let b = parsed.rasterize();
        prop_assert!(flagsim_grid::diff(&a, &b).is_identical(), "raster changed:\n{}", text);
    }

    /// Dependencies only ever point forward (i < j), involve real overlap,
    /// and flat flags report none.
    #[test]
    fn dependencies_are_forward_overlaps(idx in 0usize..13) {
        let flag = &library::all()[idx];
        let (w, h) = (flag.default_width, flag.default_height);
        for (i, j) in flag.layer_dependencies() {
            prop_assert!(i < j);
            let ri = flag.layer_cells_at(i, w, h);
            let rj = flag.layer_cells_at(j, w, h);
            prop_assert!(ri.overlaps(&rj));
        }
    }
}
