//! A compact text format for flag specifications.
//!
//! Instructors shouldn't need Rust to add a flag. The format is
//! line-oriented:
//!
//! ```text
//! # comment
//! flag "Test" 12x8
//! layer "background" blue full
//! layer "left half" red rect 0 0 0.5 1
//! layer "white details" white band 0 0 1 1 0.05
//! + cross 0.5 0.5 0.14 0.28
//! ```
//!
//! One `flag` header, then `layer` lines (name, color, shape); `+` lines
//! add more shapes to the current layer. Shapes take unit-square
//! coordinates; `disc`, `band` and `star` get the flag's aspect ratio
//! automatically. Colors are the named palette (`red`, `blue`, `yellow`,
//! `green`, `white`, `black`, `orange`) or `rgb R G B`.
//!
//! [`to_text`] writes the same format back out; `parse(to_text(f))`
//! reproduces `f`.

use crate::shape::{pt, Pt, Shape};
use crate::{FlagSpec, Layer};
use flagsim_grid::Color;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Split a line into tokens, keeping `"quoted strings"` whole.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                if quoted {
                    out.push(std::mem::take(&mut cur));
                }
                quoted = !quoted;
            }
            c if c.is_whitespace() && !quoted => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, ParseError> {
    tok.parse::<f64>()
        .map_err(|_| ParseError {
            line,
            message: format!("expected a number, got {tok:?}"),
        })
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                err(line, format!("non-finite number {tok:?}"))
            }
        })
}

fn parse_color(tokens: &[String], line: usize) -> Result<(Color, usize), ParseError> {
    let name = tokens
        .first()
        .ok_or_else(|| ParseError {
            line,
            message: "missing color".into(),
        })?
        .as_str();
    if name == "rgb" {
        if tokens.len() < 4 {
            return err(line, "rgb needs three components");
        }
        let comp = |i: usize| -> Result<u8, ParseError> {
            tokens[i].parse::<u8>().map_err(|_| ParseError {
                line,
                message: format!("bad rgb component {:?}", tokens[i]),
            })
        };
        return Ok((Color::Rgb(comp(1)?, comp(2)?, comp(3)?), 4));
    }
    let color = match name {
        "red" => Color::Red,
        "blue" => Color::Blue,
        "yellow" => Color::Yellow,
        "green" => Color::Green,
        "white" => Color::White,
        "black" => Color::Black,
        "orange" => Color::Orange,
        other => return err(line, format!("unknown color {other:?}")),
    };
    Ok((color, 1))
}

fn parse_shape(tokens: &[String], aspect: f64, line: usize) -> Result<Shape, ParseError> {
    let kind = tokens
        .first()
        .ok_or_else(|| ParseError {
            line,
            message: "missing shape".into(),
        })?
        .as_str();
    let args: Result<Vec<f64>, ParseError> =
        tokens[1..].iter().map(|t| parse_f64(t, line)).collect();
    let args = args?;
    let need = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("{kind} takes {n} numbers, got {}", args.len()),
            )
        }
    };
    Ok(match kind {
        "full" => {
            need(0)?;
            Shape::Full
        }
        "rect" => {
            need(4)?;
            Shape::Rect {
                u0: args[0],
                v0: args[1],
                u1: args[2],
                v1: args[3],
            }
        }
        "hstripe" => {
            need(2)?;
            Shape::HStripe {
                index: args[0] as u32,
                count: args[1] as u32,
            }
        }
        "vstripe" => {
            need(2)?;
            Shape::VStripe {
                index: args[0] as u32,
                count: args[1] as u32,
            }
        }
        "triangle" => {
            need(6)?;
            Shape::Triangle {
                a: pt(args[0], args[1]),
                b: pt(args[2], args[3]),
                c: pt(args[4], args[5]),
            }
        }
        "disc" => {
            need(3)?;
            Shape::Disc {
                center: pt(args[0], args[1]),
                r: args[2],
                aspect,
            }
        }
        "band" => {
            need(5)?;
            Shape::Band {
                a: pt(args[0], args[1]),
                b: pt(args[2], args[3]),
                halfwidth: args[4],
                aspect,
            }
        }
        "cross" => {
            need(4)?;
            Shape::Cross {
                center: pt(args[0], args[1]),
                arm_w: args[2],
                arm_h: args[3],
            }
        }
        "star" => {
            need(5)?;
            Shape::Star {
                center: pt(args[0], args[1]),
                r: args[2],
                inner: args[3],
                points: args[4] as u32,
                aspect,
            }
        }
        "polygon" => {
            if args.len() < 6 || args.len() % 2 != 0 {
                return err(line, "polygon needs at least three u v pairs");
            }
            Shape::Polygon(args.chunks(2).map(|c| pt(c[0], c[1])).collect())
        }
        other => return err(line, format!("unknown shape {other:?}")),
    })
}

/// Parse a flag from the text format.
pub fn parse(text: &str) -> Result<FlagSpec, ParseError> {
    let mut header: Option<(String, u32, u32)> = None;
    let mut layers: Vec<Layer> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens = tokenize(line);
        match tokens[0].as_str() {
            "flag" => {
                if header.is_some() {
                    return err(lineno, "duplicate flag header");
                }
                if tokens.len() != 3 {
                    return err(lineno, "usage: flag \"Name\" WxH");
                }
                let (w, h) = tokens[2]
                    .split_once('x')
                    .ok_or_else(|| ParseError {
                        line: lineno,
                        message: format!("bad size {:?}, expected WxH", tokens[2]),
                    })?;
                let w: u32 = w.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("bad width {w:?}"),
                })?;
                let h: u32 = h.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("bad height {h:?}"),
                })?;
                if w == 0 || h == 0 {
                    return err(lineno, "size must be nonzero");
                }
                header = Some((tokens[1].clone(), w, h));
            }
            "layer" => {
                let Some((_, w, h)) = &header else {
                    return err(lineno, "layer before flag header");
                };
                if tokens.len() < 3 {
                    return err(lineno, "usage: layer \"name\" color shape …");
                }
                let aspect = f64::from(*w) / f64::from(*h);
                let name = tokens[1].clone();
                let (color, used) = parse_color(&tokens[2..], lineno)?;
                let shape = parse_shape(&tokens[2 + used..], aspect, lineno)?;
                layers.push(Layer::new(name, color, shape));
            }
            "+" => {
                let Some((_, w, h)) = &header else {
                    return err(lineno, "shape continuation before flag header");
                };
                let aspect = f64::from(*w) / f64::from(*h);
                let Some(last) = layers.last_mut() else {
                    return err(lineno, "shape continuation before any layer");
                };
                last.shapes.push(parse_shape(&tokens[1..], aspect, lineno)?);
            }
            other => return err(lineno, format!("unknown directive {other:?}")),
        }
    }
    let Some((name, w, h)) = header else {
        return err(1, "missing flag header");
    };
    if layers.is_empty() {
        return err(1, "flag has no layers");
    }
    Ok(FlagSpec::new(name, w, h, layers))
}

fn write_pt(out: &mut String, p: Pt) {
    let _ = write!(out, " {} {}", p.u, p.v);
}

fn shape_text(shape: &Shape) -> String {
    let mut s = String::new();
    match shape {
        Shape::Full => s.push_str("full"),
        Shape::Rect { u0, v0, u1, v1 } => {
            let _ = write!(s, "rect {u0} {v0} {u1} {v1}");
        }
        Shape::HStripe { index, count } => {
            let _ = write!(s, "hstripe {index} {count}");
        }
        Shape::VStripe { index, count } => {
            let _ = write!(s, "vstripe {index} {count}");
        }
        Shape::Triangle { a, b, c } => {
            s.push_str("triangle");
            write_pt(&mut s, *a);
            write_pt(&mut s, *b);
            write_pt(&mut s, *c);
        }
        Shape::Disc { center, r, .. } => {
            let _ = write!(s, "disc {} {} {r}", center.u, center.v);
        }
        Shape::Band {
            a, b, halfwidth, ..
        } => {
            s.push_str("band");
            write_pt(&mut s, *a);
            write_pt(&mut s, *b);
            let _ = write!(s, " {halfwidth}");
        }
        Shape::Cross {
            center,
            arm_w,
            arm_h,
        } => {
            let _ = write!(s, "cross {} {} {arm_w} {arm_h}", center.u, center.v);
        }
        Shape::Star {
            center,
            r,
            inner,
            points,
            ..
        } => {
            let _ = write!(s, "star {} {} {r} {inner} {points}", center.u, center.v);
        }
        Shape::Polygon(pts) => {
            s.push_str("polygon");
            for p in pts {
                write_pt(&mut s, *p);
            }
        }
    }
    s
}

fn color_text(c: Color) -> String {
    match c {
        Color::Rgb(r, g, b) => format!("rgb {r} {g} {b}"),
        other => other.name().to_owned(),
    }
}

/// Write a flag back to the text format.
pub fn to_text(flag: &FlagSpec) -> String {
    let mut out = format!(
        "flag \"{}\" {}x{}\n",
        flag.name, flag.default_width, flag.default_height
    );
    for layer in &flag.layers {
        let _ = writeln!(
            out,
            "layer \"{}\" {} {}",
            layer.name,
            color_text(layer.color),
            shape_text(&layer.shapes[0])
        );
        for shape in &layer.shapes[1..] {
            let _ = writeln!(out, "+ {}", shape_text(shape));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn parse_minimal_flag() {
        let f = parse(
            r#"
            # a test flag
            flag "Half" 8x4
            layer "background" blue full
            layer "left" red rect 0 0 0.5 1
            "#,
        )
        .unwrap();
        assert_eq!(f.name, "Half");
        assert_eq!((f.default_width, f.default_height), (8, 4));
        assert_eq!(f.layer_count(), 2);
        assert_eq!(f.color_at(0.25, 0.5), Color::Red);
        assert_eq!(f.color_at(0.75, 0.5), Color::Blue);
    }

    #[test]
    fn continuation_lines_extend_the_layer() {
        let f = parse(
            r#"
            flag "Bars" 10x10
            layer "bars" red rect 0 0 0.1 1
            + rect 0.9 0 1 1
            "#,
        )
        .unwrap();
        assert_eq!(f.layer_count(), 1);
        assert_eq!(f.layers[0].shapes.len(), 2);
        assert!(f.layers[0].contains(0.05, 0.5));
        assert!(f.layers[0].contains(0.95, 0.5));
        assert!(!f.layers[0].contains(0.5, 0.5));
    }

    #[test]
    fn rgb_and_every_shape_kind_parse() {
        let f = parse(
            r#"
            flag "Zoo" 16x8
            layer "bg" rgb 10 20 30 full
            layer "s1" red hstripe 0 4
            layer "s2" blue vstripe 1 4
            layer "t" green triangle 0 0 0 1 0.4 0.5
            layer "d" white disc 0.5 0.5 0.1
            layer "b" yellow band 0 0 1 1 0.05
            layer "c" black cross 0.5 0.5 0.1 0.2
            layer "st" orange star 0.5 0.5 0.2 0.5 5
            layer "p" red polygon 0.1 0.1 0.9 0.1 0.5 0.9
            "#,
        )
        .unwrap();
        assert_eq!(f.layer_count(), 9);
        assert_eq!(f.layers[0].color, Color::Rgb(10, 20, 30));
        // Shapes with aspect got the flag's 2.0.
        match &f.layers[4].shapes[0] {
            Shape::Disc { aspect, .. } => assert_eq!(*aspect, 2.0),
            other => panic!("expected disc, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("flag \"X\" 4x4\nlayer \"a\" mauve full\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("mauve"));

        let e = parse("layer \"a\" red full\n").unwrap_err();
        assert!(e.message.contains("before flag header"));

        let e = parse("flag \"X\" 4x4\nlayer \"a\" red rect 1 2 3\n").unwrap_err();
        assert!(e.message.contains("4 numbers"));

        let e = parse("flag \"X\" 0x4\nlayer \"a\" red full\n").unwrap_err();
        assert!(e.message.contains("nonzero"));

        let e = parse("flag \"X\" 4x4\n+ rect 0 0 1 1\n").unwrap_err();
        assert!(e.message.contains("before any layer"));

        assert!(parse("").is_err());
        assert!(parse("flag \"X\" 4x4\n").is_err()); // no layers
    }

    #[test]
    fn library_roundtrips_through_text() {
        for flag in library::all() {
            let text = to_text(&flag);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", flag.name));
            assert_eq!(parsed.name, flag.name);
            assert_eq!(parsed.layer_count(), flag.layer_count());
            // Same raster — the real equivalence that matters.
            let a = flag.rasterize();
            let b = parsed.rasterize();
            assert!(
                flagsim_grid::diff(&a, &b).is_identical(),
                "{} raster changed through text roundtrip",
                flag.name
            );
        }
    }

    #[test]
    fn quoted_names_keep_spaces() {
        let f = parse("flag \"Two Words\" 4x4\nlayer \"long layer name\" red full\n").unwrap();
        assert_eq!(f.name, "Two Words");
        assert_eq!(f.layers[0].name, "long layer name");
    }
}
