//! # flagsim-flags
//!
//! Declarative flag specifications and a painter's-algorithm rasterizer.
//!
//! The activity's flags are described as ordered **layers** of colored
//! **shapes** in a resolution-independent unit square, then rasterized onto
//! a [`flagsim_grid::Grid`] of any size. Layer order matters: the paper's
//! Knox variation teaches dependencies through exactly this — the flag of
//! Great Britain "is most easily created by coloring the entire flag blue,
//! then adding the crossing diagonal white lines, and then finally coloring
//! the red vertical and horizontal lines", the same idea as the Painter's
//! algorithm in 3D graphics.
//!
//! * [`shape::Shape`] — point-containment geometry (rects, stripes,
//!   triangles, discs, diagonal bands, polygons, stars, a maple leaf).
//! * [`Layer`] — a named color painting a union of shapes.
//! * [`FlagSpec`] — an ordered stack of layers, with rasterization,
//!   per-layer cell regions, and layer-overlap (dependency) extraction.
//! * [`library`] — every flag the paper uses: Mauritius (Fig. 1), France
//!   and Canada (Fig. 2, Webster variation), Great Britain (Fig. 3) and
//!   Jordan (Fig. 4, Knox variation), plus a few extras for examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod library;
pub mod lint;
pub mod parse;
pub mod shape;
pub mod spec;

pub use layer::Layer;
pub use lint::{lint, lint_at, render_lints, Lint, LintLevel};
pub use parse::{parse, to_text, ParseError};
pub use shape::Shape;
pub use spec::FlagSpec;
