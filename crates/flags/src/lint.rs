//! Flag-spec linting.
//!
//! Custom flags arrive via the text DSL; before an instructor prints 30
//! handouts, lint the spec: invisible layers (fully overpainted — wasted
//! coloring), empty layers (shapes that miss every cell at the raster),
//! out-of-unit-square geometry, and blank cells (regions no layer
//! covers, fine only if that's the intended paper-white).
//!
//! Findings carry **stable lint IDs** (`SC1xx`, the flag-spec block of
//! the `simcheck` diagnostics catalog) and one of three severities, so
//! the same lints flow through `flagsim lint`, `flagsim check`, and CI
//! unchanged:
//!
//! | id    | level   | finding                                          |
//! |-------|---------|--------------------------------------------------|
//! | SC101 | error   | the flag paints no cells at all at this raster   |
//! | SC102 | warning | a layer paints no cells                          |
//! | SC103 | warning | a layer is completely overpainted                |
//! | SC104 | note    | heavy overpainting (under ¼ of painted visible)  |
//! | SC105 | note    | blank cells (no layer covers them)               |
//!
//! [`lint`] checks at the spec's recommended raster; [`lint_at`] checks
//! at any raster — a scenario that rasterizes the flag at a different
//! size can hit `SC102` even when the default size is clean (a thin
//! stripe can fall between cell centers of a coarser grid).

use crate::FlagSpec;

/// Lint severities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Worth knowing, often intentional.
    Note,
    /// Probably a mistake.
    Warning,
    /// The flag cannot be used for the activity as specified.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable catalog ID ("SC102").
    pub id: &'static str,
    /// Severity.
    pub level: LintLevel,
    /// Layer index the finding concerns (None = whole flag).
    pub layer: Option<usize>,
    /// Human-readable message.
    pub message: String,
}

/// Lint a flag at its recommended raster size.
pub fn lint(flag: &FlagSpec) -> Vec<Lint> {
    lint_at(flag, flag.default_width, flag.default_height)
}

/// Lint a flag at an explicit raster size — the size a scenario will
/// actually rasterize it at, which may differ from the recommended one.
pub fn lint_at(flag: &FlagSpec, w: u32, h: u32) -> Vec<Lint> {
    let mut out = Vec::new();
    let mut total_visible = 0usize;

    for li in 0..flag.layer_count() {
        let painted = flag.layer_cells_at(li, w, h);
        let visible = flag.visible_cells_at(li, w, h);
        total_visible += visible.len();
        let name = &flag.layers[li].name;
        if painted.is_empty() {
            out.push(Lint {
                id: "SC102",
                level: LintLevel::Warning,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}) paints no cells at {w}x{h} — shape too small \
                     or off the flag"
                ),
            });
        } else if visible.is_empty() {
            out.push(Lint {
                id: "SC103",
                level: LintLevel::Warning,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}) is completely overpainted by later layers — \
                     students would color {} cells for nothing",
                    painted.len()
                ),
            });
        } else if visible.len() * 4 < painted.len() {
            out.push(Lint {
                id: "SC104",
                level: LintLevel::Note,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}): only {}/{} painted cells stay visible — \
                     heavy overpainting; consider a flat decomposition",
                    visible.len(),
                    painted.len()
                ),
            });
        }
    }

    if total_visible == 0 {
        out.push(Lint {
            id: "SC101",
            level: LintLevel::Error,
            layer: None,
            message: format!(
                "the flag paints no cells at all at {w}x{h} — there is nothing to color"
            ),
        });
    }
    let blank = (w as usize * h as usize) - total_visible;
    if blank > 0 && total_visible > 0 {
        out.push(Lint {
            id: "SC105",
            level: LintLevel::Note,
            layer: None,
            message: format!(
                "{blank} cells are blank (no layer covers them) — fine if paper-white \
                 is intended"
            ),
        });
    }
    out
}

/// Render lints for the CLI.
pub fn render_lints(lints: &[Lint]) -> String {
    use std::fmt::Write as _;
    if lints.is_empty() {
        return "no lints — the spec looks clean\n".to_owned();
    }
    let mut out = String::new();
    for l in lints {
        let tag = match l.level {
            LintLevel::Error => "error",
            LintLevel::Warning => "warning",
            LintLevel::Note => "note",
        };
        let _ = writeln!(out, "{tag}[{}]: {}", l.id, l.message);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::pt;
    use crate::{library, Layer, Shape};
    use flagsim_grid::Color;

    #[test]
    fn library_flags_have_no_warnings() {
        for flag in library::all() {
            let warnings: Vec<_> = lint(&flag)
                .into_iter()
                .filter(|l| l.level >= LintLevel::Warning)
                .collect();
            assert!(warnings.is_empty(), "{}: {warnings:?}", flag.name);
        }
    }

    #[test]
    fn invisible_layer_is_flagged() {
        let flag = FlagSpec::new(
            "buried",
            8,
            8,
            vec![
                Layer::new("hidden", Color::Red, Shape::Full),
                Layer::new("cover", Color::Blue, Shape::Full),
            ],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.id == "SC103"
                && l.level == LintLevel::Warning
                && l.message.contains("overpainted")));
    }

    #[test]
    fn empty_layer_is_flagged() {
        let flag = FlagSpec::new(
            "tiny dot",
            4,
            4,
            vec![
                Layer::new("bg", Color::Blue, Shape::Full),
                Layer::new(
                    "dot",
                    Color::White,
                    Shape::Disc {
                        center: pt(0.2, 0.2),
                        r: 0.01, // misses every cell center at 4x4
                        aspect: 1.0,
                    },
                ),
            ],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.id == "SC102" && l.message.contains("paints no cells")));
    }

    #[test]
    fn nothing_to_color_is_an_error() {
        let flag = FlagSpec::new(
            "void",
            4,
            4,
            vec![Layer::new(
                "speck",
                Color::Red,
                Shape::Disc {
                    center: pt(0.5, 0.5),
                    r: 0.001,
                    aspect: 1.0,
                },
            )],
        );
        let lints = lint(&flag);
        assert!(
            lints.iter().any(|l| l.id == "SC101" && l.level == LintLevel::Error),
            "{lints:?}"
        );
        assert!(render_lints(&lints).contains("error[SC101]"));
    }

    #[test]
    fn raster_size_changes_the_verdict() {
        // A narrow vertical stripe around x=0.5: the recommended 12-wide
        // raster has cell centers inside it (0.458, 0.542), but a 2-wide
        // raster's centers (0.25, 0.75) both miss it — the scenario
        // raster matters.
        let flag = FlagSpec::new(
            "pinstripe",
            12,
            4,
            vec![
                Layer::new("bg", Color::Blue, Shape::Full),
                Layer::new(
                    "stripe",
                    Color::White,
                    Shape::Rect {
                        u0: 0.4,
                        v0: 0.0,
                        u1: 0.6,
                        v1: 1.0,
                    },
                ),
            ],
        );
        assert!(
            !lint(&flag).iter().any(|l| l.id == "SC102"),
            "clean at the recommended raster"
        );
        let coarse = lint_at(&flag, 2, 2);
        assert!(
            coarse.iter().any(|l| l.id == "SC102"),
            "the stripe drops out at 2x2: {coarse:?}"
        );
    }

    #[test]
    fn blank_cells_are_noted() {
        let flag = FlagSpec::new(
            "half",
            8,
            8,
            vec![Layer::new(
                "left",
                Color::Red,
                Shape::Rect {
                    u0: 0.0,
                    v0: 0.0,
                    u1: 0.5,
                    v1: 1.0,
                },
            )],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.id == "SC105"
                && l.level == LintLevel::Note
                && l.message.contains("32 cells are blank")));
        assert!(render_lints(&lints).contains("note[SC105]:"));
    }

    #[test]
    fn clean_spec_renders_clean() {
        assert!(render_lints(&[]).contains("no lints"));
    }
}
