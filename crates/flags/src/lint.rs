//! Flag-spec linting.
//!
//! Custom flags arrive via the text DSL; before an instructor prints 30
//! handouts, lint the spec: invisible layers (fully overpainted — wasted
//! coloring), empty layers (shapes that miss every cell at the default
//! raster), out-of-unit-square geometry, and blank cells (regions no
//! layer covers, fine only if that's the intended paper-white).

use crate::FlagSpec;

/// Lint severities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Probably a mistake.
    Warning,
    /// Worth knowing, often intentional.
    Note,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Severity.
    pub level: LintLevel,
    /// Layer index the finding concerns (None = whole flag).
    pub layer: Option<usize>,
    /// Human-readable message.
    pub message: String,
}

/// Lint a flag at its default raster size.
pub fn lint(flag: &FlagSpec) -> Vec<Lint> {
    let mut out = Vec::new();
    let (w, h) = (flag.default_width, flag.default_height);

    for li in 0..flag.layer_count() {
        let painted = flag.layer_cells_at(li, w, h);
        let visible = flag.visible_cells_at(li, w, h);
        let name = &flag.layers[li].name;
        if painted.is_empty() {
            out.push(Lint {
                level: LintLevel::Warning,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}) paints no cells at {w}x{h} — shape too small \
                     or off the flag"
                ),
            });
        } else if visible.is_empty() {
            out.push(Lint {
                level: LintLevel::Warning,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}) is completely overpainted by later layers — \
                     students would color {} cells for nothing",
                    painted.len()
                ),
            });
        } else if visible.len() * 4 < painted.len() {
            out.push(Lint {
                level: LintLevel::Note,
                layer: Some(li),
                message: format!(
                    "layer {li} ({name:?}): only {}/{} painted cells stay visible — \
                     heavy overpainting; consider a flat decomposition",
                    visible.len(),
                    painted.len()
                ),
            });
        }
    }

    let blank = (w as usize * h as usize) - flag.painted_region().len();
    if blank > 0 {
        out.push(Lint {
            level: LintLevel::Note,
            layer: None,
            message: format!(
                "{blank} cells are blank (no layer covers them) — fine if paper-white \
                 is intended"
            ),
        });
    }
    out
}

/// Render lints for the CLI.
pub fn render_lints(lints: &[Lint]) -> String {
    use std::fmt::Write as _;
    if lints.is_empty() {
        return "no lints — the spec looks clean\n".to_owned();
    }
    let mut out = String::new();
    for l in lints {
        let tag = match l.level {
            LintLevel::Warning => "warning",
            LintLevel::Note => "note",
        };
        let _ = writeln!(out, "{tag}: {}", l.message);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::pt;
    use crate::{library, Layer, Shape};
    use flagsim_grid::Color;

    #[test]
    fn library_flags_have_no_warnings() {
        for flag in library::all() {
            let warnings: Vec<_> = lint(&flag)
                .into_iter()
                .filter(|l| l.level == LintLevel::Warning)
                .collect();
            assert!(warnings.is_empty(), "{}: {warnings:?}", flag.name);
        }
    }

    #[test]
    fn invisible_layer_is_flagged() {
        let flag = FlagSpec::new(
            "buried",
            8,
            8,
            vec![
                Layer::new("hidden", Color::Red, Shape::Full),
                Layer::new("cover", Color::Blue, Shape::Full),
            ],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.level == LintLevel::Warning && l.message.contains("overpainted")));
    }

    #[test]
    fn empty_layer_is_flagged() {
        let flag = FlagSpec::new(
            "tiny dot",
            4,
            4,
            vec![
                Layer::new("bg", Color::Blue, Shape::Full),
                Layer::new(
                    "dot",
                    Color::White,
                    Shape::Disc {
                        center: pt(0.2, 0.2),
                        r: 0.01, // misses every cell center at 4x4
                        aspect: 1.0,
                    },
                ),
            ],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.level == LintLevel::Warning && l.message.contains("paints no cells")));
    }

    #[test]
    fn blank_cells_are_noted() {
        let flag = FlagSpec::new(
            "half",
            8,
            8,
            vec![Layer::new(
                "left",
                Color::Red,
                Shape::Rect {
                    u0: 0.0,
                    v0: 0.0,
                    u1: 0.5,
                    v1: 1.0,
                },
            )],
        );
        let lints = lint(&flag);
        assert!(lints
            .iter()
            .any(|l| l.level == LintLevel::Note && l.message.contains("32 cells are blank")));
        assert!(render_lints(&lints).contains("note:"));
    }

    #[test]
    fn clean_spec_renders_clean() {
        assert!(render_lints(&[]).contains("no lints"));
    }
}
