//! Flag layers.

use crate::Shape;
use flagsim_grid::Color;

/// One painting step of a flag: a color applied to the union of some
/// shapes. Layers are painted in order (painter's algorithm), so later
/// layers overpaint earlier ones where they overlap — exactly the layered
/// technique the paper teaches with the flag of Great Britain.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable name ("blue background", "white saltire", …) used in
    /// dependency graphs and reports.
    pub name: String,
    /// The paint color.
    pub color: Color,
    /// The shapes this layer covers; a point is painted if it is inside
    /// any of them.
    pub shapes: Vec<Shape>,
}

impl Layer {
    /// Construct a single-shape layer.
    pub fn new(name: impl Into<String>, color: Color, shape: Shape) -> Self {
        Layer {
            name: name.into(),
            color,
            shapes: vec![shape],
        }
    }

    /// Construct a multi-shape layer.
    pub fn from_shapes(name: impl Into<String>, color: Color, shapes: Vec<Shape>) -> Self {
        Layer {
            name: name.into(),
            color,
            shapes,
        }
    }

    /// Whether the layer paints the point `(u, v)`.
    pub fn contains(&self, u: f64, v: f64) -> bool {
        self.shapes.iter().any(|s| s.contains(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::pt;

    #[test]
    fn multi_shape_layer_is_a_union() {
        let l = Layer::from_shapes(
            "bars",
            Color::Red,
            vec![
                Shape::Rect {
                    u0: 0.0,
                    v0: 0.0,
                    u1: 0.1,
                    v1: 1.0,
                },
                Shape::Rect {
                    u0: 0.9,
                    v0: 0.0,
                    u1: 1.0,
                    v1: 1.0,
                },
            ],
        );
        assert!(l.contains(0.05, 0.5));
        assert!(l.contains(0.95, 0.5));
        assert!(!l.contains(0.5, 0.5));
    }

    #[test]
    fn single_shape_constructor() {
        let l = Layer::new(
            "triangle",
            Color::Green,
            Shape::Triangle {
                a: pt(0.0, 0.0),
                b: pt(1.0, 0.0),
                c: pt(0.0, 1.0),
            },
        );
        assert_eq!(l.name, "triangle");
        assert!(l.contains(0.1, 0.1));
        assert!(!l.contains(0.9, 0.9));
    }
}
