//! The paper's flags, plus a few extras for examples.
//!
//! * [`mauritius`] — the core activity's flag (Fig. 1): four equal
//!   horizontal stripes, red/blue/yellow/green, chosen because it "provides
//!   a natural subdivision of the task into equal-sized parts for two and
//!   four people".
//! * [`france`] / [`canada`] — the Webster variation (Fig. 2): a simple
//!   tricolor versus an intricate maple leaf, used to teach load balancing.
//! * [`great_britain`] — the Knox follow-up (Fig. 3): three layers (blue
//!   field, white diagonals, red cross) that introduce dependencies.
//! * [`jordan`] — the dependency-graph assessment flag (Fig. 4): three
//!   stripes, a red triangle, and a white dot (star).
//! * [`germany`], [`netherlands`], [`texas`] — extras for custom runs.

use crate::shape::{pt, Pt, Shape};
use crate::{FlagSpec, Layer};
use flagsim_grid::Color;

/// Flag of Mauritius: four equal horizontal stripes (red, blue, yellow,
/// green). Flat — no layer overlaps, so it parallelizes perfectly in
/// theory; only implement contention (scenario 4) spoils it.
pub fn mauritius() -> FlagSpec {
    let layers = Color::MAURITIUS
        .iter()
        .enumerate()
        .map(|(i, &color)| {
            Layer::new(
                format!("{} stripe", color.name()),
                color,
                Shape::HStripe {
                    index: i as u32,
                    count: 4,
                },
            )
        })
        .collect();
    FlagSpec::new("Mauritius", 12, 8, layers)
}

/// Flag of France: three equal vertical stripes (blue, white, red). The
/// Webster variation's "simpler" flag with near-perfect 3-way balance.
pub fn france() -> FlagSpec {
    let colors = [Color::Blue, Color::White, Color::Red];
    let layers = colors
        .iter()
        .enumerate()
        .map(|(i, &color)| {
            Layer::new(
                format!("{} stripe", color.name()),
                color,
                Shape::VStripe {
                    index: i as u32,
                    count: 3,
                },
            )
        })
        .collect();
    FlagSpec::new("France", 24, 12, layers)
}

/// The maple-leaf polygon in unit-square coordinates of the *central pale*
/// (mapped into the flag by [`canada`]). A stylized 23-vertex leaf —
/// recognizable on a coarse grid, intricate enough to slow careful
/// colorers down (the point of the Webster comparison).
fn maple_leaf_local() -> Vec<Pt> {
    vec![
        pt(0.50, 0.06), // top tip
        pt(0.42, 0.22),
        pt(0.30, 0.16),
        pt(0.34, 0.34),
        pt(0.16, 0.30),
        pt(0.20, 0.42),
        pt(0.08, 0.46),
        pt(0.24, 0.60),
        pt(0.18, 0.70),
        pt(0.40, 0.68),
        pt(0.46, 0.66),
        pt(0.46, 0.86), // stem left
        pt(0.54, 0.86), // stem right
        pt(0.54, 0.66),
        pt(0.60, 0.68),
        pt(0.82, 0.70),
        pt(0.76, 0.60),
        pt(0.92, 0.46),
        pt(0.80, 0.42),
        pt(0.84, 0.30),
        pt(0.66, 0.34),
        pt(0.70, 0.16),
        pt(0.58, 0.22),
    ]
}

/// Flag of Canada: red side pales (¼ width each), white center with a red
/// maple leaf. The paper gave students "gridded paper with the maple leaf
/// outlined" (Fig. 2).
pub fn canada() -> FlagSpec {
    // Map the local leaf into the central half [0.25, 0.75] × [0.08, 0.92].
    let leaf: Vec<Pt> = maple_leaf_local()
        .into_iter()
        .map(|p| pt(0.25 + p.u * 0.5, 0.08 + p.v * 0.84))
        .collect();
    FlagSpec::new(
        "Canada",
        24,
        12,
        vec![
            Layer::new("white field", Color::White, Shape::Full),
            Layer::from_shapes(
                "red side stripes",
                Color::Red,
                vec![
                    Shape::Rect {
                        u0: 0.0,
                        v0: 0.0,
                        u1: 0.25,
                        v1: 1.0,
                    },
                    Shape::Rect {
                        u0: 0.75,
                        v0: 0.0,
                        u1: 1.0,
                        v1: 1.0,
                    },
                ],
            ),
            Layer::new("red maple leaf", Color::Red, Shape::Polygon(leaf)),
        ],
    )
}

/// Flag of Great Britain, "flag coloring assignment version" (Fig. 3):
/// blue field, then white crossing diagonals (plus the white plus behind
/// the red one), then the red vertical/horizontal lines. Three layers with
/// a strict dependency chain — the paper's canonical example of layering
/// limiting parallelism.
pub fn great_britain() -> FlagSpec {
    let aspect = 2.0;
    FlagSpec::new(
        "Great Britain",
        24,
        12,
        vec![
            Layer::new("blue field", Color::Blue, Shape::Full),
            Layer::from_shapes(
                "white diagonals",
                Color::White,
                vec![
                    Shape::Band {
                        a: pt(0.0, 0.0),
                        b: pt(1.0, 1.0),
                        halfwidth: 0.05,
                        aspect,
                    },
                    Shape::Band {
                        a: pt(0.0, 1.0),
                        b: pt(1.0, 0.0),
                        halfwidth: 0.05,
                        aspect,
                    },
                    Shape::Cross {
                        center: pt(0.5, 0.5),
                        arm_w: 0.14,
                        arm_h: 0.28,
                    },
                ],
            ),
            Layer::new(
                "red cross",
                Color::Red,
                Shape::Cross {
                    center: pt(0.5, 0.5),
                    arm_w: 0.08,
                    arm_h: 0.16,
                },
            ),
        ],
    )
}

/// Flag of Jordan (Fig. 4): black/white/green horizontal stripes, a red
/// hoist triangle, and a white dot (standing in for the seven-pointed
/// star). Its reference dependency graph (Fig. 9) is: stripes → triangle
/// → dot.
pub fn jordan() -> FlagSpec {
    FlagSpec::new(
        "Jordan",
        16,
        9,
        vec![
            Layer::new("black stripe", Color::Black, Shape::HStripe { index: 0, count: 3 }),
            Layer::new("white stripe", Color::White, Shape::HStripe { index: 1, count: 3 }),
            Layer::new("green stripe", Color::Green, Shape::HStripe { index: 2, count: 3 }),
            Layer::new(
                "red triangle",
                Color::Red,
                Shape::Triangle {
                    a: pt(0.0, 0.0),
                    b: pt(0.0, 1.0),
                    c: pt(0.45, 0.5),
                },
            ),
            Layer::new(
                "white dot",
                Color::White,
                Shape::Disc {
                    center: pt(0.15, 0.5),
                    r: 0.055,
                    aspect: 16.0 / 9.0,
                },
            ),
        ],
    )
}

/// Flag of Germany: black/red/gold horizontal stripes. A flat 3-stripe
/// extra for custom scenarios.
pub fn germany() -> FlagSpec {
    let colors = [Color::Black, Color::Red, Color::Yellow];
    let layers = colors
        .iter()
        .enumerate()
        .map(|(i, &color)| {
            Layer::new(
                format!("{} stripe", color.name()),
                color,
                Shape::HStripe {
                    index: i as u32,
                    count: 3,
                },
            )
        })
        .collect();
    FlagSpec::new("Germany", 15, 9, layers)
}

/// Flag of the Netherlands: red/white/blue horizontal stripes.
pub fn netherlands() -> FlagSpec {
    let colors = [Color::Red, Color::White, Color::Blue];
    let layers = colors
        .iter()
        .enumerate()
        .map(|(i, &color)| {
            Layer::new(
                format!("{} stripe", color.name()),
                color,
                Shape::HStripe {
                    index: i as u32,
                    count: 3,
                },
            )
        })
        .collect();
    FlagSpec::new("Netherlands", 12, 8, layers)
}

/// Flag of Texas: blue hoist pale with a white star, white upper fly, red
/// lower fly. Mildly layered (the star sits on the blue pale).
pub fn texas() -> FlagSpec {
    FlagSpec::new(
        "Texas",
        18,
        12,
        vec![
            Layer::new(
                "blue pale",
                Color::Blue,
                Shape::Rect {
                    u0: 0.0,
                    v0: 0.0,
                    u1: 1.0 / 3.0,
                    v1: 1.0,
                },
            ),
            Layer::new(
                "white fly stripe",
                Color::White,
                Shape::Rect {
                    u0: 1.0 / 3.0,
                    v0: 0.0,
                    u1: 1.0,
                    v1: 0.5,
                },
            ),
            Layer::new(
                "red fly stripe",
                Color::Red,
                Shape::Rect {
                    u0: 1.0 / 3.0,
                    v0: 0.5,
                    u1: 1.0,
                    v1: 1.0,
                },
            ),
            Layer::new(
                "white star",
                Color::White,
                Shape::Star {
                    center: pt(1.0 / 6.0, 0.5),
                    r: 0.13,
                    inner: 0.5,
                    points: 5,
                    aspect: 1.5,
                },
            ),
        ],
    )
}

/// Flag of Poland: white over red. The smallest possible stripe flag —
/// handy for tests and for two-student micro-activities.
pub fn poland() -> FlagSpec {
    FlagSpec::new(
        "Poland",
        10,
        6,
        vec![
            Layer::new("white stripe", Color::White, Shape::HStripe { index: 0, count: 2 }),
            Layer::new("red stripe", Color::Red, Shape::HStripe { index: 1, count: 2 }),
        ],
    )
}

/// Flag of Ukraine: blue over yellow.
pub fn ukraine() -> FlagSpec {
    FlagSpec::new(
        "Ukraine",
        12,
        8,
        vec![
            Layer::new("blue stripe", Color::Blue, Shape::HStripe { index: 0, count: 2 }),
            Layer::new("yellow stripe", Color::Yellow, Shape::HStripe { index: 1, count: 2 }),
        ],
    )
}

/// Flag of Japan: a red disc on a white field — the simplest *layered*
/// flag (two layers, one dependency), a gentle first dependency example.
pub fn japan() -> FlagSpec {
    FlagSpec::new(
        "Japan",
        15,
        10,
        vec![
            Layer::new("white field", Color::White, Shape::Full),
            Layer::new(
                "red disc",
                Color::Red,
                Shape::Disc {
                    center: pt(0.5, 0.5),
                    r: 0.2,
                    aspect: 1.5,
                },
            ),
        ],
    )
}

/// Flag of Czechia: white over red horizontal stripes with a blue hoist
/// triangle — structurally between Poland (flat) and Jordan (stripes +
/// triangle + dot), so a good second dependency-graph exercise.
pub fn czechia() -> FlagSpec {
    FlagSpec::new(
        "Czechia",
        15,
        10,
        vec![
            Layer::new("white stripe", Color::White, Shape::HStripe { index: 0, count: 2 }),
            Layer::new("red stripe", Color::Red, Shape::HStripe { index: 1, count: 2 }),
            Layer::new(
                "blue triangle",
                Color::Blue,
                Shape::Triangle {
                    a: pt(0.0, 0.0),
                    b: pt(0.0, 1.0),
                    c: pt(0.4, 0.5),
                },
            ),
        ],
    )
}

/// Flag of Switzerland: a white cross on red (square flag).
pub fn switzerland() -> FlagSpec {
    FlagSpec::new(
        "Switzerland",
        12,
        12,
        vec![
            Layer::new("red field", Color::Red, Shape::Full),
            Layer::new(
                "white cross",
                Color::White,
                Shape::Cross {
                    center: pt(0.5, 0.5),
                    arm_w: 0.2,
                    arm_h: 0.2,
                },
            ),
        ],
    )
}

/// Every flag in the library, paper flags first.
pub fn all() -> Vec<FlagSpec> {
    vec![
        mauritius(),
        france(),
        canada(),
        great_britain(),
        jordan(),
        germany(),
        netherlands(),
        texas(),
        poland(),
        ukraine(),
        japan(),
        czechia(),
        switzerland(),
    ]
}

/// Look up a flag by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<FlagSpec> {
    all().into_iter().find(|f| f.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_grid::render::to_ascii;

    #[test]
    fn mauritius_is_flat_with_equal_stripes() {
        let f = mauritius();
        assert!(!f.is_layered());
        let g = f.rasterize();
        assert!(g.is_complete());
        // Four stripes of 12×2 = 24 cells each.
        for (li, color) in Color::MAURITIUS.iter().enumerate() {
            assert_eq!(f.layer_cells(li).len(), 24, "stripe {li}");
            assert_eq!(g.cells_of_color(*color).len(), 24);
        }
    }

    #[test]
    fn mauritius_golden_raster() {
        let g = mauritius().rasterize();
        let expected = "\
RRRRRRRRRRRR
RRRRRRRRRRRR
BBBBBBBBBBBB
BBBBBBBBBBBB
YYYYYYYYYYYY
YYYYYYYYYYYY
GGGGGGGGGGGG
GGGGGGGGGGGG
";
        assert_eq!(to_ascii(&g), expected);
    }

    #[test]
    fn france_golden_raster() {
        let g = france().rasterize();
        let row = format!("{}{}{}\n", "B".repeat(8), "W".repeat(8), "R".repeat(8));
        let expected = row.repeat(12);
        assert_eq!(to_ascii(&g), expected);
    }

    #[test]
    fn great_britain_is_a_three_layer_chain() {
        let f = great_britain();
        assert_eq!(f.layer_count(), 3);
        // Blue → white, blue → red, white → red: all overlap.
        assert_eq!(f.layer_dependencies(), vec![(0, 1), (0, 2), (1, 2)]);
        let g = f.rasterize();
        assert!(g.is_complete());
        // All three colors visible.
        for c in [Color::Blue, Color::White, Color::Red] {
            assert!(!g.cells_of_color(c).is_empty(), "{c} missing");
        }
        // The center cell is red (on the cross).
        assert_eq!(
            f.color_at(0.5, 0.5),
            Color::Red
        );
        // Layered coloring costs extra strokes.
        assert!(f.layered_overhead() > 1.2);
    }

    #[test]
    fn jordan_structure_matches_fig9() {
        let f = jordan();
        assert_eq!(f.layer_count(), 5);
        let deps = f.layer_dependencies();
        // Triangle (3) overlaps all three stripes (0,1,2); the dot (4) sits
        // on the triangle, which itself sits on the middle (white) stripe —
        // so the raw overlap graph has (1,4) too; Fig. 9 of the paper shows
        // the transitive reduction (stripes → triangle → dot), which the
        // taskgraph crate computes.
        assert!(deps.contains(&(0, 3)));
        assert!(deps.contains(&(1, 3)));
        assert!(deps.contains(&(2, 3)));
        assert!(deps.contains(&(3, 4)));
        assert!(deps.contains(&(1, 4))); // transitive edge, reduced later
        assert!(!deps.contains(&(0, 4)));
        assert!(!deps.contains(&(2, 4)));
        let g = f.rasterize();
        assert!(g.is_complete());
        // The white dot survives on top of the triangle.
        assert!(!g.cells_of_color(Color::White).is_empty());
        assert!(!g.cells_of_color(Color::Red).is_empty());
    }

    #[test]
    fn canada_center_is_heavier_than_sides() {
        let f = canada();
        let g = f.rasterize();
        assert!(g.is_complete());
        // The leaf paints a nontrivial number of red cells in the middle.
        let leaf = f.layer_cells(2);
        assert!(leaf.len() >= 12, "leaf covers {} cells", leaf.len());
        // Leaf strictly inside the central half.
        let w = f.default_width;
        for id in leaf.iter() {
            let x = id.to_coord(w).x;
            assert!(x >= w / 4 && x < 3 * w / 4, "leaf cell {id} escapes the pale");
        }
    }

    #[test]
    fn texas_star_sits_on_the_pale() {
        let f = texas();
        let g = f.rasterize();
        assert!(g.is_complete());
        let star = f.visible_cells(3);
        assert!(!star.is_empty());
        let w = f.default_width;
        for id in star.iter() {
            assert!(id.to_coord(w).x < w / 3, "star cell {id} escapes the pale");
        }
    }

    #[test]
    fn simple_tricolors_are_flat() {
        for f in [france(), germany(), netherlands()] {
            assert!(!f.is_layered(), "{} should be flat", f.name);
            assert!(f.rasterize().is_complete(), "{} incomplete", f.name);
        }
    }

    #[test]
    fn czechia_triangle_depends_on_both_stripes() {
        let f = czechia();
        let deps = f.layer_dependencies();
        assert!(deps.contains(&(0, 2)));
        assert!(deps.contains(&(1, 2)));
        assert!(!deps.contains(&(0, 1)));
        assert!(f.rasterize().is_complete());
        assert_eq!(f.color_at(0.1, 0.5), Color::Blue);
        assert_eq!(f.color_at(0.9, 0.25), Color::White);
        assert_eq!(f.color_at(0.9, 0.75), Color::Red);
    }

    #[test]
    fn library_lookup() {
        assert_eq!(all().len(), 13);
        assert!(by_name("mauritius").is_some());
        assert!(by_name("GREAT BRITAIN").is_some());
        assert!(by_name("narnia").is_none());
    }

    #[test]
    fn two_stripe_flags_are_flat() {
        for f in [poland(), ukraine()] {
            assert!(!f.is_layered(), "{}", f.name);
            assert_eq!(f.layer_count(), 2);
            assert!(f.rasterize().is_complete());
        }
    }

    #[test]
    fn japan_is_the_minimal_layered_flag() {
        let f = japan();
        assert!(f.is_layered());
        assert_eq!(f.layer_dependencies(), vec![(0, 1)]);
        let g = f.rasterize();
        assert!(g.is_complete());
        // The disc is visible and round-ish: more than one row and column.
        let disc = f.visible_cells(1);
        assert!(disc.len() >= 9, "disc covers {} cells", disc.len());
        // Centered: the middle cell is red.
        assert_eq!(f.color_at(0.5, 0.5), Color::Red);
        assert_eq!(f.color_at(0.05, 0.05), Color::White);
    }

    #[test]
    fn switzerland_cross_is_white_on_red() {
        let f = switzerland();
        assert!(f.is_layered());
        let g = f.rasterize();
        assert!(g.is_complete());
        assert_eq!(f.color_at(0.5, 0.1), Color::White); // vertical arm
        assert_eq!(f.color_at(0.1, 0.5), Color::White); // horizontal arm
        assert_eq!(f.color_at(0.15, 0.15), Color::Red); // quadrant
    }

    #[test]
    fn every_flag_rasterizes_completely_at_default_and_double_size() {
        for f in all() {
            assert!(f.rasterize().is_complete(), "{} incomplete", f.name);
            let g2 = f.rasterize_at(f.default_width * 2, f.default_height * 2);
            assert!(g2.is_complete(), "{} incomplete at 2x", f.name);
        }
    }
}
