//! Resolution-independent shape geometry.
//!
//! Shapes live in the unit square: `u` runs 0→1 left-to-right, `v` runs
//! 0→1 top-to-bottom. Rasterization tests each cell's *center*, so a shape
//! covers a cell iff it contains the center point. All geometry is pure
//! `f64` point-in-shape testing; no anti-aliasing (gridded paper has none).

/// A point in the unit square (`u` rightward, `v` downward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pt {
    /// Horizontal coordinate in `[0, 1]`.
    pub u: f64,
    /// Vertical coordinate in `[0, 1]` (0 = top).
    pub v: f64,
}

/// Shorthand constructor for a [`Pt`].
pub const fn pt(u: f64, v: f64) -> Pt {
    Pt { u, v }
}

/// A testable shape in the unit square.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// The whole flag.
    Full,
    /// Axis-aligned rectangle `[u0, u1) × [v0, v1)`.
    Rect {
        /// Left edge.
        u0: f64,
        /// Top edge.
        v0: f64,
        /// Right edge (exclusive).
        u1: f64,
        /// Bottom edge (exclusive).
        v1: f64,
    },
    /// Horizontal stripe `index` of `count` equal stripes (0 = top).
    HStripe {
        /// Stripe index from the top.
        index: u32,
        /// Total number of stripes.
        count: u32,
    },
    /// Vertical stripe `index` of `count` equal stripes (0 = left).
    VStripe {
        /// Stripe index from the left.
        index: u32,
        /// Total number of stripes.
        count: u32,
    },
    /// Triangle with vertices `a`, `b`, `c`.
    Triangle {
        /// First vertex.
        a: Pt,
        /// Second vertex.
        b: Pt,
        /// Third vertex.
        c: Pt,
    },
    /// Disc centered at `center` with radius `r` (in `u` units; `v`
    /// distances are scaled by `aspect` = width/height so discs stay round
    /// on non-square flags).
    Disc {
        /// Center point.
        center: Pt,
        /// Radius in `u` units.
        r: f64,
        /// Flag aspect ratio (width / height) used to keep the disc round.
        aspect: f64,
    },
    /// A band of half-width `halfwidth` around the infinite line through
    /// `a` and `b` (distance measured in aspect-corrected space). Used for
    /// the diagonals of the Union Jack's saltire.
    Band {
        /// One point on the center line.
        a: Pt,
        /// Another point on the center line.
        b: Pt,
        /// Half the band's width, in `u` units.
        halfwidth: f64,
        /// Flag aspect ratio (width / height).
        aspect: f64,
    },
    /// An upright cross: a vertical bar of width `arm_w` and a horizontal
    /// bar of height `arm_h`, both through `center`.
    Cross {
        /// Crossing point of the two bars.
        center: Pt,
        /// Width of the vertical bar (in `u` units).
        arm_w: f64,
        /// Height of the horizontal bar (in `v` units).
        arm_h: f64,
    },
    /// Simple polygon (even-odd fill rule). Vertices in order; the closing
    /// edge is implicit.
    Polygon(Vec<Pt>),
    /// A `points`-pointed star centered at `center`, outer radius `r`,
    /// inner radius `r * inner`, first point straight up. Rendered via the
    /// even-odd polygon rule.
    Star {
        /// Center of the star.
        center: Pt,
        /// Outer radius in `u` units.
        r: f64,
        /// Inner/outer radius ratio in `(0, 1)`.
        inner: f64,
        /// Number of points (≥ 3).
        points: u32,
        /// Flag aspect ratio (width / height).
        aspect: f64,
    },
}

impl Shape {
    /// Whether the shape contains the point `(u, v)`.
    pub fn contains(&self, u: f64, v: f64) -> bool {
        match self {
            Shape::Full => (0.0..1.0).contains(&u) && (0.0..1.0).contains(&v),
            Shape::Rect { u0, v0, u1, v1 } => u >= *u0 && u < *u1 && v >= *v0 && v < *v1,
            Shape::HStripe { index, count } => {
                let lo = *index as f64 / *count as f64;
                let hi = (*index + 1) as f64 / *count as f64;
                v >= lo && v < hi
            }
            Shape::VStripe { index, count } => {
                let lo = *index as f64 / *count as f64;
                let hi = (*index + 1) as f64 / *count as f64;
                u >= lo && u < hi
            }
            Shape::Triangle { a, b, c } => point_in_triangle(pt(u, v), *a, *b, *c),
            Shape::Disc { center, r, aspect } => {
                let du = u - center.u;
                let dv = (v - center.v) / aspect;
                du * du + dv * dv <= r * r
            }
            Shape::Band {
                a,
                b,
                halfwidth,
                aspect,
            } => {
                // Work in aspect-corrected space so "width" is isotropic.
                let (ax, ay) = (a.u, a.v / aspect);
                let (bx, by) = (b.u, b.v / aspect);
                let (px, py) = (u, v / aspect);
                let (dx, dy) = (bx - ax, by - ay);
                let len = (dx * dx + dy * dy).sqrt();
                if len == 0.0 {
                    return false;
                }
                let dist = ((px - ax) * dy - (py - ay) * dx).abs() / len;
                dist <= *halfwidth
            }
            Shape::Cross {
                center,
                arm_w,
                arm_h,
            } => {
                (u - center.u).abs() <= arm_w / 2.0 || (v - center.v).abs() <= arm_h / 2.0
            }
            Shape::Polygon(verts) => point_in_polygon(pt(u, v), verts),
            Shape::Star {
                center,
                r,
                inner,
                points,
                aspect,
            } => {
                let verts = star_vertices(*center, *r, *inner, *points, *aspect);
                point_in_polygon(pt(u, v), &verts)
            }
        }
    }

    /// A crude area estimate via an `n × n` sample of the unit square
    /// (cell centers). Used to weight layer tasks by work.
    pub fn sample_area(&self, n: u32) -> f64 {
        let mut hits = 0u64;
        for j in 0..n {
            for i in 0..n {
                let u = (i as f64 + 0.5) / n as f64;
                let v = (j as f64 + 0.5) / n as f64;
                if self.contains(u, v) {
                    hits += 1;
                }
            }
        }
        hits as f64 / (n as f64 * n as f64)
    }
}

fn sign(p: Pt, q: Pt, r: Pt) -> f64 {
    (p.u - r.u) * (q.v - r.v) - (q.u - r.u) * (p.v - r.v)
}

fn point_in_triangle(p: Pt, a: Pt, b: Pt, c: Pt) -> bool {
    let d1 = sign(p, a, b);
    let d2 = sign(p, b, c);
    let d3 = sign(p, c, a);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// Even-odd rule point-in-polygon.
fn point_in_polygon(p: Pt, verts: &[Pt]) -> bool {
    if verts.len() < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = verts.len() - 1;
    for i in 0..verts.len() {
        let (vi, vj) = (verts[i], verts[j]);
        if (vi.v > p.v) != (vj.v > p.v) {
            let x = (vj.u - vi.u) * (p.v - vi.v) / (vj.v - vi.v) + vi.u;
            if p.u < x {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Vertices of a star polygon, alternating outer/inner radii, starting
/// straight up from the center.
pub fn star_vertices(center: Pt, r: f64, inner: f64, points: u32, aspect: f64) -> Vec<Pt> {
    assert!(points >= 3, "a star needs at least 3 points");
    let n = points * 2;
    (0..n)
        .map(|k| {
            let radius = if k % 2 == 0 { r } else { r * inner };
            let theta = std::f64::consts::PI * (k as f64 / points as f64) - std::f64::consts::FRAC_PI_2;
            pt(
                center.u + radius * theta.cos(),
                center.v + radius * theta.sin() * aspect,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_covers_unit_square_only() {
        assert!(Shape::Full.contains(0.0, 0.0));
        assert!(Shape::Full.contains(0.999, 0.999));
        assert!(!Shape::Full.contains(1.0, 0.5));
        assert!(!Shape::Full.contains(-0.01, 0.5));
    }

    #[test]
    fn hstripe_partitions_v_axis() {
        for (v, idx) in [(0.1, 0), (0.3, 1), (0.6, 2), (0.9, 3)] {
            for index in 0..4 {
                let s = Shape::HStripe { index, count: 4 };
                assert_eq!(s.contains(0.5, v), index == idx, "v={v} index={index}");
            }
        }
    }

    #[test]
    fn vstripe_partitions_u_axis() {
        let s = Shape::VStripe { index: 1, count: 3 };
        assert!(!s.contains(0.2, 0.5));
        assert!(s.contains(0.5, 0.5));
        assert!(!s.contains(0.8, 0.5));
    }

    #[test]
    fn triangle_contains_centroid_not_outside() {
        let (a, b, c) = (pt(0.0, 0.0), pt(0.0, 1.0), pt(0.5, 0.5));
        let t = Shape::Triangle { a, b, c };
        assert!(t.contains(0.16, 0.5)); // centroid-ish
        assert!(!t.contains(0.6, 0.5));
        assert!(!t.contains(0.3, 0.05));
    }

    #[test]
    fn triangle_winding_does_not_matter() {
        let t1 = Shape::Triangle {
            a: pt(0.0, 0.0),
            b: pt(1.0, 0.0),
            c: pt(0.5, 1.0),
        };
        let t2 = Shape::Triangle {
            a: pt(0.5, 1.0),
            b: pt(1.0, 0.0),
            c: pt(0.0, 0.0),
        };
        for (u, v) in [(0.5, 0.5), (0.1, 0.05), (0.9, 0.9), (0.5, 0.01)] {
            assert_eq!(t1.contains(u, v), t2.contains(u, v), "at ({u},{v})");
        }
    }

    #[test]
    fn disc_respects_aspect() {
        // aspect 2 (twice as wide as tall): the v axis is physically
        // shorter, so v offsets count *half* in u units.
        let d = Shape::Disc {
            center: pt(0.5, 0.5),
            r: 0.2,
            aspect: 2.0,
        };
        assert!(d.contains(0.65, 0.5)); // 0.15 horizontal < r
        assert!(!d.contains(0.75, 0.5)); // 0.25 horizontal > r
        assert!(d.contains(0.5, 0.85)); // 0.35 vertical = 0.175 corrected < r
        assert!(!d.contains(0.5, 0.95)); // 0.45 vertical = 0.225 corrected > r
    }

    #[test]
    fn band_measures_perpendicular_distance() {
        // Diagonal of a square flag (aspect 1), halfwidth 0.1.
        let b = Shape::Band {
            a: pt(0.0, 0.0),
            b: pt(1.0, 1.0),
            halfwidth: 0.1,
            aspect: 1.0,
        };
        assert!(b.contains(0.5, 0.5));
        assert!(b.contains(0.5, 0.6)); // dist ≈ 0.07
        assert!(!b.contains(0.5, 0.8)); // dist ≈ 0.21
    }

    #[test]
    fn degenerate_band_contains_nothing() {
        let b = Shape::Band {
            a: pt(0.5, 0.5),
            b: pt(0.5, 0.5),
            halfwidth: 0.5,
            aspect: 1.0,
        };
        assert!(!b.contains(0.5, 0.5));
    }

    #[test]
    fn cross_is_union_of_bars() {
        let c = Shape::Cross {
            center: pt(0.5, 0.5),
            arm_w: 0.2,
            arm_h: 0.2,
        };
        assert!(c.contains(0.5, 0.05)); // on the vertical bar
        assert!(c.contains(0.05, 0.5)); // on the horizontal bar
        assert!(!c.contains(0.2, 0.2)); // in a quadrant
    }

    #[test]
    fn polygon_even_odd() {
        // Unit diamond.
        let p = Shape::Polygon(vec![pt(0.5, 0.0), pt(1.0, 0.5), pt(0.5, 1.0), pt(0.0, 0.5)]);
        assert!(p.contains(0.5, 0.5));
        assert!(!p.contains(0.05, 0.05));
        // Degenerate polygon is empty.
        assert!(!Shape::Polygon(vec![pt(0.0, 0.0), pt(1.0, 1.0)]).contains(0.5, 0.5));
    }

    #[test]
    fn star_contains_center_and_points_up() {
        let s = Shape::Star {
            center: pt(0.5, 0.5),
            r: 0.4,
            inner: 0.5,
            points: 5,
            aspect: 1.0,
        };
        assert!(s.contains(0.5, 0.5));
        assert!(s.contains(0.5, 0.15)); // top point reaches up
        assert!(!s.contains(0.5, 0.95));
    }

    #[test]
    fn sample_area_half_rect() {
        let r = Shape::Rect {
            u0: 0.0,
            v0: 0.0,
            u1: 0.5,
            v1: 1.0,
        };
        let a = r.sample_area(64);
        assert!((a - 0.5).abs() < 0.02, "area {a}");
    }
}
