//! Flag specifications and rasterization.

use crate::Layer;
use flagsim_grid::{Color, Coord, Grid, Region};

/// A complete flag: a name, a recommended raster size, and an ordered stack
/// of [`Layer`]s painted bottom-to-top.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagSpec {
    /// The flag's name ("Mauritius", "Great Britain", …).
    pub name: String,
    /// Recommended raster width in cells (the paper's gridded handouts are
    /// small — tens of cells — so defaults are classroom-sized).
    pub default_width: u32,
    /// Recommended raster height in cells.
    pub default_height: u32,
    /// Painting layers, bottom (painted first) to top.
    pub layers: Vec<Layer>,
}

impl FlagSpec {
    /// Construct a spec. Panics if there are no layers or the default size
    /// is degenerate.
    pub fn new(
        name: impl Into<String>,
        default_width: u32,
        default_height: u32,
        layers: Vec<Layer>,
    ) -> Self {
        assert!(!layers.is_empty(), "a flag needs at least one layer");
        assert!(
            default_width > 0 && default_height > 0,
            "default size must be nonzero"
        );
        FlagSpec {
            name: name.into(),
            default_width,
            default_height,
            layers,
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Aspect ratio (width / height) of the default raster.
    pub fn aspect(&self) -> f64 {
        self.default_width as f64 / self.default_height as f64
    }

    /// The topmost layer covering `(u, v)`, if any.
    pub fn top_layer_at(&self, u: f64, v: f64) -> Option<usize> {
        self.layers.iter().rposition(|l| l.contains(u, v))
    }

    /// The final visible color at `(u, v)` (blank where no layer paints).
    pub fn color_at(&self, u: f64, v: f64) -> Color {
        self.top_layer_at(u, v)
            .map(|i| self.layers[i].color)
            .unwrap_or(Color::Blank)
    }

    /// Rasterize at the recommended size. See [`FlagSpec::rasterize_at`].
    pub fn rasterize(&self) -> Grid {
        self.rasterize_at(self.default_width, self.default_height)
    }

    /// Rasterize by painting every layer in order — the *layered* rendering
    /// that overpaints (cells covered by several layers receive several
    /// strokes, as a student coloring layer-by-layer would do).
    pub fn rasterize_at(&self, width: u32, height: u32) -> Grid {
        let mut grid = Grid::new(width, height);
        for li in 0..self.layers.len() {
            for id in self.layer_cells_at(li, width, height).iter() {
                grid.paint(id, self.layers[li].color);
            }
        }
        grid
    }

    /// Rasterize painting each cell exactly once with its final visible
    /// color — the *flat* rendering (how the core activity colors
    /// Mauritius: nobody overpaints, every cell gets one stroke).
    pub fn rasterize_flat(&self) -> Grid {
        self.rasterize_flat_at(self.default_width, self.default_height)
    }

    /// Flat rasterization at an explicit size. Cells not covered by any
    /// layer stay blank.
    pub fn rasterize_flat_at(&self, width: u32, height: u32) -> Grid {
        let mut grid = Grid::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let (u, v) = cell_center(x, y, width, height);
                let c = self.color_at(u, v);
                if c.is_painted() {
                    grid.paint_at(Coord::new(x, y), c);
                }
            }
        }
        grid
    }

    /// All cells layer `li` paints (including cells later layers will
    /// overpaint), in row-major order, at the recommended size.
    pub fn layer_cells(&self, li: usize) -> Region {
        self.layer_cells_at(li, self.default_width, self.default_height)
    }

    /// All cells layer `li` paints at an explicit raster size.
    pub fn layer_cells_at(&self, li: usize, width: u32, height: u32) -> Region {
        let layer = &self.layers[li];
        let mut r = Region::new();
        for y in 0..height {
            for x in 0..width {
                let (u, v) = cell_center(x, y, width, height);
                if layer.contains(u, v) {
                    r.push(Coord::new(x, y).to_id(width));
                }
            }
        }
        r
    }

    /// Cells where layer `li` is the topmost (visible) layer, at the
    /// recommended size. In a flat coloring these are the only cells the
    /// layer's color actually fills.
    pub fn visible_cells(&self, li: usize) -> Region {
        self.visible_cells_at(li, self.default_width, self.default_height)
    }

    /// Visible cells of a layer at an explicit raster size.
    pub fn visible_cells_at(&self, li: usize, width: u32, height: u32) -> Region {
        let mut r = Region::new();
        for y in 0..height {
            for x in 0..width {
                let (u, v) = cell_center(x, y, width, height);
                if self.top_layer_at(u, v) == Some(li) {
                    r.push(Coord::new(x, y).to_id(width));
                }
            }
        }
        r
    }

    /// The region of every cell covered by any layer.
    pub fn painted_region(&self) -> Region {
        let (w, h) = (self.default_width, self.default_height);
        let mut r = Region::new();
        for y in 0..h {
            for x in 0..w {
                let (u, v) = cell_center(x, y, w, h);
                if self.top_layer_at(u, v).is_some() {
                    r.push(Coord::new(x, y).to_id(w));
                }
            }
        }
        r
    }

    /// Layer dependency pairs `(i, j)` with `i < j`: layer `j` must wait
    /// for layer `i` because they paint overlapping cells (painting them in
    /// the wrong order would produce the wrong flag). This is exactly the
    /// dependency structure the Knox follow-up activity has students draw.
    ///
    /// Pairs are reported at the recommended raster size and are already
    /// transitively complete over *direct* overlaps only — callers wanting
    /// a minimal graph can apply transitive reduction from the taskgraph
    /// crate.
    pub fn layer_dependencies(&self) -> Vec<(usize, usize)> {
        let (w, h) = (self.default_width, self.default_height);
        let regions: Vec<Region> = (0..self.layers.len())
            .map(|li| self.layer_cells_at(li, w, h))
            .collect();
        let mut deps = Vec::new();
        for j in 1..regions.len() {
            for i in 0..j {
                if regions[i].overlaps(&regions[j]) {
                    deps.push((i, j));
                }
            }
        }
        deps
    }

    /// Whether any two layers overlap at all. Flags like Mauritius are
    /// "flat" (disjoint stripes — fully parallelizable); flags like Great
    /// Britain are layered (dependencies limit parallelism).
    pub fn is_layered(&self) -> bool {
        !self.layer_dependencies().is_empty()
    }

    /// Total strokes a layered coloring performs (sum of all layer cell
    /// counts) versus the flat cell count — the "extra work" price of the
    /// painter's-algorithm approach.
    pub fn layered_overhead(&self) -> f64 {
        let painted = self.painted_region().len();
        if painted == 0 {
            return 0.0;
        }
        let strokes: usize = (0..self.layers.len())
            .map(|li| self.layer_cells(li).len())
            .sum();
        strokes as f64 / painted as f64
    }
}

/// The unit-square center of cell `(x, y)` on a `width × height` raster.
#[inline]
pub fn cell_center(x: u32, y: u32, width: u32, height: u32) -> (f64, f64) {
    (
        (x as f64 + 0.5) / width as f64,
        (y as f64 + 0.5) / height as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn two_layer_flag() -> FlagSpec {
        FlagSpec::new(
            "test",
            8,
            4,
            vec![
                Layer::new("background", Color::Blue, Shape::Full),
                Layer::new(
                    "left half",
                    Color::Red,
                    Shape::Rect {
                        u0: 0.0,
                        v0: 0.0,
                        u1: 0.5,
                        v1: 1.0,
                    },
                ),
            ],
        )
    }

    #[test]
    fn top_layer_wins() {
        let f = two_layer_flag();
        assert_eq!(f.color_at(0.25, 0.5), Color::Red);
        assert_eq!(f.color_at(0.75, 0.5), Color::Blue);
        assert_eq!(f.top_layer_at(0.25, 0.5), Some(1));
    }

    #[test]
    fn layered_raster_overpaints_flat_does_not() {
        let f = two_layer_flag();
        let layered = f.rasterize();
        let flat = f.rasterize_flat();
        // Same final colors…
        assert!(flagsim_grid::diff(&layered, &flat).is_identical());
        // …but different stroke counts: layered paints 32 + 16, flat 32.
        assert_eq!(layered.total_strokes(), 48);
        assert_eq!(flat.total_strokes(), 32);
    }

    #[test]
    fn visible_vs_painted_cells() {
        let f = two_layer_flag();
        assert_eq!(f.layer_cells(0).len(), 32); // background paints all
        assert_eq!(f.visible_cells(0).len(), 16); // but shows only right half
        assert_eq!(f.layer_cells(1).len(), 16);
        assert_eq!(f.visible_cells(1).len(), 16);
    }

    #[test]
    fn dependencies_detected() {
        let f = two_layer_flag();
        assert_eq!(f.layer_dependencies(), vec![(0, 1)]);
        assert!(f.is_layered());
    }

    #[test]
    fn disjoint_layers_have_no_dependencies() {
        let f = FlagSpec::new(
            "stripes",
            6,
            4,
            vec![
                Layer::new("top", Color::Red, Shape::HStripe { index: 0, count: 2 }),
                Layer::new("bottom", Color::Green, Shape::HStripe { index: 1, count: 2 }),
            ],
        );
        assert!(f.layer_dependencies().is_empty());
        assert!(!f.is_layered());
        assert!((f.layered_overhead() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn layered_overhead_counts_overpainting() {
        let f = two_layer_flag();
        // 48 strokes for 32 painted cells = 1.5×.
        assert!((f.layered_overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_spec_rejected() {
        let _ = FlagSpec::new("empty", 4, 4, vec![]);
    }
}
