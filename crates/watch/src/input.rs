//! Key input: the watch key set, the `--script` parser, and a byte
//! decoder for interactive raw-mode stdin.
//!
//! The same [`Key`] enum drives both paths, so a scripted run and an
//! interactive session exercise identical app logic — the only
//! difference is where the keys come from.

/// A watch key press, after decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// `q` (or Ctrl-C / Esc interactively): quit.
    Quit,
    /// `p` / space: toggle play/pause.
    PlayPause,
    /// `l` / right arrow: step forward one instant.
    StepFwd,
    /// `h` / left arrow: step back one instant.
    StepBack,
    /// `L`: jump forward one tenth of the run.
    JumpFwd,
    /// `H`: jump back one tenth of the run.
    JumpBack,
    /// `g` / Home: scrub to the start.
    Home,
    /// `G` / End: scrub to the end.
    End,
    /// `+`: double playback speed.
    Faster,
    /// `-`: halve playback speed.
    Slower,
    /// `=`: reset playback speed to 1x.
    SpeedReset,
    /// `t`: one fake-clock tick (advances playback when playing;
    /// scripted runs use this to animate deterministically).
    Tick,
}

impl Key {
    /// The script character for this key (inverse of [`from_script_char`]).
    pub fn script_char(self) -> char {
        match self {
            Key::Quit => 'q',
            Key::PlayPause => 'p',
            Key::StepFwd => 'l',
            Key::StepBack => 'h',
            Key::JumpFwd => 'L',
            Key::JumpBack => 'H',
            Key::Home => 'g',
            Key::End => 'G',
            Key::Faster => '+',
            Key::Slower => '-',
            Key::SpeedReset => '=',
            Key::Tick => 't',
        }
    }
}

/// Decode one `--script` character. Whitespace is not a key (the
/// script parser skips it); unknown characters are an error so typos
/// fail loudly instead of silently dropping frames.
pub fn from_script_char(c: char) -> Result<Key, String> {
    Ok(match c {
        'q' => Key::Quit,
        'p' | ' ' => Key::PlayPause,
        'l' => Key::StepFwd,
        'h' => Key::StepBack,
        'L' => Key::JumpFwd,
        'H' => Key::JumpBack,
        'g' => Key::Home,
        'G' => Key::End,
        '+' => Key::Faster,
        '-' => Key::Slower,
        '=' => Key::SpeedReset,
        't' => Key::Tick,
        other => return Err(format!("unknown watch key {other:?} in --script")),
    })
}

/// Parse a full `--script KEYS` string into a key sequence.
/// Whitespace separates groups for readability and is ignored.
pub fn script_keys(script: &str) -> Result<Vec<Key>, String> {
    script
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(from_script_char)
        .collect()
}

/// Incremental decoder for raw-mode stdin bytes: plain keys map like
/// the script alphabet, and the three-byte arrow/Home/End escape
/// sequences map onto the same [`Key`]s. A lone Esc quits.
#[derive(Debug, Default)]
pub struct KeyDecoder {
    // Pending escape-sequence bytes (ESC, then '[').
    esc: Vec<u8>,
}

impl KeyDecoder {
    /// A decoder with no pending state.
    pub fn new() -> KeyDecoder {
        KeyDecoder::default()
    }

    /// Feed one byte; returns a key when one completes.
    pub fn feed(&mut self, byte: u8) -> Option<Key> {
        if !self.esc.is_empty() {
            return self.feed_escape(byte);
        }
        match byte {
            0x1b => {
                self.esc.push(byte);
                None
            }
            0x03 => Some(Key::Quit), // Ctrl-C (raw mode delivers it as a byte)
            b' ' => Some(Key::PlayPause),
            _ => from_script_char(byte as char).ok(),
        }
    }

    fn feed_escape(&mut self, byte: u8) -> Option<Key> {
        if self.esc.len() == 1 {
            if byte == b'[' {
                self.esc.push(byte);
                return None;
            }
            // Lone Esc (next byte is not a CSI introducer): quit, and
            // re-feed the byte as a fresh keypress.
            self.esc.clear();
            return Some(Key::Quit);
        }
        self.esc.clear();
        match byte {
            b'C' => Some(Key::StepFwd),  // right arrow
            b'D' => Some(Key::StepBack), // left arrow
            b'H' => Some(Key::Home),
            b'F' => Some(Key::End),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_parses_all_keys_and_skips_whitespace() {
        let keys = script_keys("p ttt  h l G q").unwrap();
        assert_eq!(
            keys,
            vec![
                Key::PlayPause,
                Key::Tick,
                Key::Tick,
                Key::Tick,
                Key::StepBack,
                Key::StepFwd,
                Key::End,
                Key::Quit,
            ]
        );
    }

    #[test]
    fn script_round_trips_through_script_char() {
        let all = "qplhLHgG+-=t";
        let keys = script_keys(all).unwrap();
        let back: String = keys.iter().map(|k| k.script_char()).collect();
        assert_eq!(back, all);
    }

    #[test]
    fn script_rejects_unknown_keys() {
        let err = script_keys("pz").unwrap_err();
        assert!(err.contains("'z'"), "{err}");
    }

    #[test]
    fn decoder_handles_plain_keys_and_arrows() {
        let mut d = KeyDecoder::new();
        assert_eq!(d.feed(b'p'), Some(Key::PlayPause));
        assert_eq!(d.feed(0x1b), None);
        assert_eq!(d.feed(b'['), None);
        assert_eq!(d.feed(b'C'), Some(Key::StepFwd));
        assert_eq!(d.feed(0x1b), None);
        assert_eq!(d.feed(b'['), None);
        assert_eq!(d.feed(b'D'), Some(Key::StepBack));
        assert_eq!(d.feed(0x03), Some(Key::Quit));
    }

    #[test]
    fn lone_escape_quits() {
        let mut d = KeyDecoder::new();
        assert_eq!(d.feed(0x1b), None);
        assert_eq!(d.feed(b'q'), Some(Key::Quit));
    }
}
