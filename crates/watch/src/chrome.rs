//! Re-parse a `--trace-out` Chrome `trace_event` file into a
//! [`Trace`], so `flagsim watch --trace FILE` can replay a run that was
//! only kept as its exported trace.
//!
//! Two trace dialects are accepted, matched per event:
//!
//! - **Sim-time** (`desim::Trace::chrome_trace`): balanced `B`/`E`
//!   pairs — `"work"` events and `"wait: LABEL"` events — plus
//!   `thread_name` metadata, one pid, `tid` = process index,
//!   timestamps in microseconds. Work pairs become `WorkStart { dur }`,
//!   wait pairs become `Blocked`/`Acquired`, and the wait labels
//!   rebuild the resource table.
//! - **Telemetry spans** (what `flagsim run/sweep --trace-out` writes):
//!   arbitrary named `B`/`E` spans per thread, nested. Only the
//!   *outermost* span of each nest becomes a `WorkStart` — inner spans
//!   subdivide their parent's time and would otherwise double-count it
//!   — so each thread's timeline is its sequential top-level activity.
//!
//! What an exported trace does *not* carry: `Released` events, grid
//! cell identities, and resource capacities. A trace-file replay
//! therefore shows timelines, the critical path, and contention — but
//! no grid pane, no hand-off blame attribution, and no race findings.
//!
//! Traces shorter than 100ms (a fast wall-clock profile of an in-memory
//! run) are kept at **microsecond** resolution instead of millisecond —
//! otherwise every span would round to zero and there would be nothing
//! to scrub. In that case the viewer's time labels read 1000× (a
//! displayed "1.5s" is 1.5ms of wall clock).

use flagsim_desim::trace::{ProcReport, ResourceReport};
use flagsim_desim::{EventKind, ProcId, ResourceId, SimDuration, SimTime, Trace, TraceEvent};
use flagsim_telemetry::json::{self, Value};
use std::collections::BTreeMap;

fn field_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn field_str<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    v.get(key).and_then(Value::as_str)
}

/// Parse a Chrome trace JSON document into a [`Trace`].
pub fn parse_chrome_trace(text: &str) -> Result<Trace, String> {
    let doc = json::parse(text).map_err(|e| format!("trace file is not valid JSON: {e}"))?;
    // Both accepted container shapes: a bare array (our exporter) or the
    // `{"traceEvents": [...]}` object some tools write.
    let events = match doc.as_array() {
        Some(a) => a,
        None => doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or("trace file is not a Chrome trace (expected an event array)")?,
    };

    // Prepass: pick the time base. Sim-time exports (all span names are
    // "work"/"wait: …") are exact milliseconds encoded as µs — always
    // divide. Generic telemetry traces are wall clock: if the whole
    // trace is under 100ms, keep microsecond resolution, otherwise
    // every span of a fast in-memory run would round to zero.
    let max_ts_us = events
        .iter()
        .filter_map(|e| field_f64(e, "ts"))
        .fold(0.0f64, f64::max);
    let all_sim_names = events
        .iter()
        .filter(|e| matches!(field_str(e, "ph"), Some("B") | Some("E")))
        .all(|e| {
            let n = field_str(e, "name").unwrap_or("");
            n == "work" || n.starts_with("wait: ")
        });
    let time_div = if all_sim_names || max_ts_us >= 100_000.0 {
        1000.0
    } else {
        1.0
    };

    let mut names: BTreeMap<usize, String> = BTreeMap::new();
    // Open B events per (tid, name), FIFO — the sim exporter nests
    // nothing.
    let mut open: BTreeMap<(usize, String), Vec<u64>> = BTreeMap::new();
    // Per-tid stack of open *generic* spans (telemetry dialect); only
    // the outermost becomes work.
    let mut generic_open: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
    let mut resources: Vec<String> = Vec::new();
    let mut out_events: Vec<TraceEvent> = Vec::new();
    // Per-proc accounting accumulated while pairing.
    let mut busy: BTreeMap<usize, u64> = BTreeMap::new();
    let mut waiting: BTreeMap<usize, u64> = BTreeMap::new();
    let mut work_count: BTreeMap<usize, u64> = BTreeMap::new();
    let mut last_ms: BTreeMap<usize, u64> = BTreeMap::new();
    let mut max_tid = 0usize;

    for e in events {
        let ph = field_str(e, "ph").unwrap_or("");
        let tid = field_f64(e, "tid").unwrap_or(0.0) as usize;
        match ph {
            "M" if field_str(e, "name") == Some("thread_name") => {
                if let Some(n) = e.get("args").and_then(|a| field_str(a, "name")) {
                    names.insert(tid, n.to_owned());
                    max_tid = max_tid.max(tid);
                }
            }
            "B" | "E" => {
                let name = field_str(e, "name").unwrap_or("").to_owned();
                let ts_us = field_f64(e, "ts").unwrap_or(0.0).max(0.0);
                let ms = (ts_us / time_div).round() as u64;
                max_tid = max_tid.max(tid);
                let sim_dialect = name == "work" || name.starts_with("wait: ");
                if ph == "B" {
                    if sim_dialect {
                        open.entry((tid, name)).or_default().push(ms);
                    } else {
                        generic_open.entry(tid).or_default().push((name, ms));
                    }
                    continue;
                }
                let proc = ProcId::from_index(tid);
                if !sim_dialect {
                    // Telemetry-span dialect: an E closes the matching
                    // open span; only the outermost of a nest becomes
                    // work (inner spans subdivide the same time).
                    let stack = generic_open.entry(tid).or_default();
                    let Some(pos) = stack.iter().rposition(|(n, _)| *n == name) else {
                        continue; // unbalanced E: skip rather than fail
                    };
                    let (_, begin) = stack.remove(pos);
                    if !stack.is_empty() {
                        continue; // inner span: parent still open
                    }
                    let (start, end) = (begin.min(ms), begin.max(ms));
                    out_events.push(TraceEvent {
                        time: SimTime(start),
                        proc,
                        kind: EventKind::WorkStart {
                            dur: SimDuration(end - start),
                        },
                    });
                    *busy.entry(tid).or_default() += end - start;
                    *work_count.entry(tid).or_default() += 1;
                    let t = last_ms.entry(tid).or_default();
                    *t = (*t).max(end);
                    continue;
                }
                let Some(begin) = open.get_mut(&(tid, name.clone())).and_then(Vec::pop) else {
                    continue; // unbalanced E: skip rather than fail
                };
                let (start, end) = (begin.min(ms), begin.max(ms));
                if name == "work" {
                    out_events.push(TraceEvent {
                        time: SimTime(start),
                        proc,
                        kind: EventKind::WorkStart {
                            dur: SimDuration(end - start),
                        },
                    });
                    *busy.entry(tid).or_default() += end - start;
                    *work_count.entry(tid).or_default() += 1;
                } else if let Some(label) = name.strip_prefix("wait: ") {
                    let ri = match resources.iter().position(|r| r == label) {
                        Some(i) => i,
                        None => {
                            resources.push(label.to_owned());
                            resources.len() - 1
                        }
                    };
                    out_events.push(TraceEvent {
                        time: SimTime(start),
                        proc,
                        kind: EventKind::Blocked(ResourceId::from_index(ri)),
                    });
                    out_events.push(TraceEvent {
                        time: SimTime(end),
                        proc,
                        kind: EventKind::Acquired(ResourceId::from_index(ri)),
                    });
                    *waiting.entry(tid).or_default() += end - start;
                }
                let t = last_ms.entry(tid).or_default();
                *t = (*t).max(end);
            }
            _ => {}
        }
    }

    if out_events.is_empty() {
        return Err("trace file contains no work or wait events".to_owned());
    }
    // Chronological order for the causal analyzer; the stable sort keeps
    // each process's B-before-E order intact at equal timestamps.
    out_events.sort_by_key(|e| e.time);
    let end_time = SimTime(last_ms.values().copied().max().unwrap_or(0));

    let nprocs = max_tid + 1;
    let procs: Vec<ProcReport> = (0..nprocs)
        .map(|tid| ProcReport {
            name: names
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| format!("P{tid}")),
            busy: SimDuration(busy.get(&tid).copied().unwrap_or(0)),
            waiting: SimDuration(waiting.get(&tid).copied().unwrap_or(0)),
            completed_work: work_count.get(&tid).copied().unwrap_or(0),
            finished_at: last_ms.get(&tid).copied().map(SimTime),
        })
        .collect();
    let resources: Vec<ResourceReport> = resources
        .into_iter()
        .map(|label| ResourceReport {
            label,
            capacity: 1,
            handoff: SimDuration::ZERO,
            stats: Default::default(),
        })
        .collect();

    Ok(Trace {
        end_time,
        procs,
        resources,
        events: out_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_desim::{Action, Engine, FnProcess};

    fn contended_trace() -> Trace {
        let mut eng = Engine::new();
        let marker = eng.add_resource("red marker", SimDuration::from_millis(5));
        for name in ["A", "B"] {
            let mut step = 0;
            eng.add_process(Box::new(FnProcess::new(name, move |_| {
                step += 1;
                match step {
                    1 => Action::Acquire(marker),
                    2 => Action::Work(SimDuration::from_millis(40)),
                    3 => Action::Release(marker),
                    _ => Action::Done,
                }
            })));
        }
        eng.run()
    }

    #[test]
    fn export_then_parse_round_trips_the_replayable_subset() {
        let original = contended_trace();
        let parsed = parse_chrome_trace(&original.chrome_trace()).expect("parses");
        assert_eq!(parsed.procs.len(), original.procs.len());
        assert_eq!(parsed.procs[0].name, "A");
        assert_eq!(parsed.procs[1].name, "B");
        assert_eq!(parsed.end_time, original.end_time);
        for (p, o) in parsed.procs.iter().zip(&original.procs) {
            assert_eq!(p.busy, o.busy, "busy for {}", o.name);
            assert_eq!(p.completed_work, o.completed_work);
        }
        // The contended wait survives: B blocked then acquired.
        assert!(parsed
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Blocked(_))));
        assert_eq!(parsed.resources.len(), 1);
        assert_eq!(parsed.resources[0].label, "red marker");
        // Events are chronological.
        for pair in parsed.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn parsed_trace_feeds_the_causal_analyzer() {
        let original = contended_trace();
        let parsed = parse_chrome_trace(&original.chrome_trace()).expect("parses");
        let a = flagsim_desim::causal::analyze(&parsed);
        let total: SimDuration = a
            .critical_path
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration());
        assert_eq!(total, parsed.makespan(), "path still tiles the makespan");
    }

    #[test]
    fn telemetry_span_dialect_keeps_outermost_spans_only() {
        // The shape `flagsim run --trace-out` writes: nested wall-clock
        // spans per thread, ts in (fractional) microseconds.
        let json = r#"[
          {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
          {"name":"run.activity","cat":"sim","ph":"B","ts":0.25,"pid":1,"tid":1},
          {"name":"desim.run","cat":"sim","ph":"B","ts":10000.5,"pid":1,"tid":1},
          {"name":"desim.run","cat":"sim","ph":"E","ts":90000.0,"pid":1,"tid":1},
          {"name":"run.activity","cat":"sim","ph":"E","ts":100000.0,"pid":1,"tid":1}
        ]"#;
        let t = parse_chrome_trace(json).expect("parses");
        assert_eq!(t.procs[1].name, "main");
        assert_eq!(t.procs[1].completed_work, 1, "inner span folded into outer");
        assert_eq!(t.procs[1].busy, SimDuration(100), "outermost span: 0..100ms");
        assert_eq!(t.end_time, SimTime(100));
        assert!(!flagsim_desim::causal::analyze(&t).critical_path.is_empty());
    }

    #[test]
    fn object_wrapper_and_garbage_inputs() {
        let original = contended_trace().chrome_trace();
        let wrapped = format!("{{\"traceEvents\": {original}}}");
        assert!(parse_chrome_trace(&wrapped).is_ok());
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"foo\": 1}").is_err());
        assert!(parse_chrome_trace("[]").is_err(), "no events");
    }
}
