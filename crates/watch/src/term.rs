//! Shared terminal plumbing: TTY-aware frame repainting, width
//! clamping, sparklines, raw-mode key input, and the alternate screen.
//!
//! This is the single implementation behind both the `flagsim sweep
//! --dashboard` stderr panel (see `flagsim-cli`'s `dashboard` module)
//! and the `flagsim watch` TUI — extracted so the two cannot diverge.
//! Everything here is side-effect-free except the functions that take
//! an explicit writer, so headless tests drive the exact bytes a
//! terminal would receive.

use std::io::{Read as _, Write};

/// Sparkline glyphs, lowest to highest.
pub const SPARKS: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
    '\u{2588}',
];

/// Detected terminal width: `COLUMNS` when set and sane, else 80.
/// (The CLI is offline and dependency-free, so no ioctl probing; the
/// shell exports `COLUMNS` in the interactive case that matters.)
pub fn detect_width() -> usize {
    std::env::var("COLUMNS")
        .ok()
        .and_then(|c| c.trim().parse::<usize>().ok())
        .filter(|w| (20..=1000).contains(w))
        .unwrap_or(80)
}

/// Truncate one line to `width` characters, marking the cut with an
/// ellipsis, so an in-place redraw never wraps (a wrapped line breaks
/// the cursor-up arithmetic).
pub fn clamp_line(line: &str, width: usize) -> String {
    if line.chars().count() > width {
        let mut out: String = line.chars().take(width.saturating_sub(1)).collect();
        out.push('\u{2026}');
        out
    } else {
        line.to_owned()
    }
}

/// [`clamp_line`] applied to every line of a multi-line frame.
pub fn clamp_frame(frame: &str, width: usize) -> String {
    let mut out = String::with_capacity(frame.len());
    for line in frame.lines() {
        out.push_str(&clamp_line(line, width));
        out.push('\n');
    }
    out
}

/// Render `values` as a fixed-height sparkline (empty string for no
/// data). Scaling is min..max of the window, so the line shows a
/// streaming series settling as samples accumulate.
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if values.is_empty() || !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * (SPARKS.len() - 1) as f64).round() as usize;
            SPARKS[idx.min(SPARKS.len() - 1)]
        })
        .collect()
}

/// An in-place repaintable panel: the cursor-up/clear-to-EOL dance the
/// sweep dashboard and the watch status line both use. The panel owns
/// no file handle — every method takes the writer — so tests capture
/// the exact escape bytes.
#[derive(Debug)]
pub struct Panel {
    interactive: bool,
    width: usize,
    drawn_lines: usize,
    last_frame: String,
}

impl Panel {
    /// A panel that repaints in place when `interactive`, and is inert
    /// otherwise (callers print their own plain fallback lines).
    pub fn new(interactive: bool, width: usize) -> Panel {
        Panel {
            interactive,
            width: width.max(20),
            drawn_lines: 0,
            last_frame: String::new(),
        }
    }

    /// Whether draws repaint in place.
    pub fn is_interactive(&self) -> bool {
        self.interactive
    }

    /// The clamping width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether a frame is currently on screen.
    pub fn is_open(&self) -> bool {
        self.drawn_lines > 0
    }

    /// Repaint `frame` over the previous one (interactive only; a
    /// no-op otherwise). Every row is clamped to the panel width and
    /// cleared to end-of-line so shrinking text never leaves stale
    /// characters behind.
    pub fn draw(&mut self, frame: &str, out: &mut dyn Write) {
        if !self.interactive {
            return;
        }
        let frame = clamp_frame(frame, self.width);
        let up = self.drawn_lines;
        self.drawn_lines = frame.lines().count();
        self.last_frame = frame.clone();
        if up > 0 {
            let _ = write!(out, "\x1b[{up}A\r");
        }
        let _ = write!(out, "{}", frame.replace('\n', "\x1b[K\n"));
        let _ = out.flush();
    }

    /// Print a line *above* the live panel and repaint it: the line
    /// scrolls away like normal output while the panel stays put at
    /// the bottom. Non-interactive (or before the first frame) this is
    /// a plain line. This is the panel-aware writer that failure
    /// reports and structured logs route through, so interleaved
    /// output never shears the frame.
    pub fn println_above(&mut self, line: &str, out: &mut dyn Write) {
        if self.interactive && self.drawn_lines > 0 {
            let up = self.drawn_lines;
            let _ = write!(out, "\x1b[{up}A\r\x1b[K{line}\n");
            let _ = write!(out, "{}", self.last_frame.replace('\n', "\x1b[K\n"));
            let _ = out.flush();
        } else {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }

    /// Close the panel: leave the last frame on screen and move to a
    /// fresh line. Later [`Panel::println_above`] calls fall back to
    /// plain lines instead of repainting a stale frame.
    pub fn finish(&mut self, out: &mut dyn Write) {
        if self.interactive && self.drawn_lines > 0 {
            let _ = writeln!(out);
            let _ = out.flush();
        }
        self.drawn_lines = 0;
        self.last_frame.clear();
    }
}

/// Switch to the terminal's alternate screen, clear it, and hide the
/// cursor (the full-screen TUI entry sequence).
pub fn enter_alt_screen(out: &mut dyn Write) {
    let _ = write!(out, "\x1b[?1049h\x1b[2J\x1b[H\x1b[?25l");
    let _ = out.flush();
}

/// Leave the alternate screen and restore the cursor.
pub fn leave_alt_screen(out: &mut dyn Write) {
    let _ = write!(out, "\x1b[?25h\x1b[?1049l");
    let _ = out.flush();
}

/// Move the cursor home without clearing: the full-screen repaint
/// overdraws every cell and clears to end-of-line per row, so not
/// clearing avoids a visible flicker.
pub fn cursor_home(out: &mut dyn Write) {
    let _ = write!(out, "\x1b[H");
}

/// A raw-mode guard for the controlling terminal, via `stty` (the
/// container is offline and libc-free, so no termios binding; `stty`
/// is POSIX and present wherever a TTY is). Construction saves the
/// current settings and switches to raw/no-echo; drop restores them.
#[derive(Debug)]
pub struct RawMode {
    saved: String,
}

impl RawMode {
    /// Enable raw mode on `/dev/tty`. Fails (cleanly) when there is no
    /// controlling terminal or no `stty` — callers degrade to the
    /// non-interactive path.
    pub fn enable() -> Result<RawMode, String> {
        let saved = stty(&["-g"])?;
        stty(&["raw", "-echo"])?;
        Ok(RawMode {
            saved: saved.trim().to_owned(),
        })
    }
}

impl Drop for RawMode {
    fn drop(&mut self) {
        let _ = stty(&[&self.saved]);
    }
}

/// Run `stty` against the controlling terminal, capturing stdout.
fn stty(args: &[&str]) -> Result<String, String> {
    let tty = std::fs::File::open("/dev/tty").map_err(|e| format!("no /dev/tty: {e}"))?;
    let out = std::process::Command::new("stty")
        .args(args)
        .stdin(tty)
        .output()
        .map_err(|e| format!("cannot run stty: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "stty {:?} failed: {}",
            args,
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    String::from_utf8(out.stdout).map_err(|e| format!("stty output not UTF-8: {e}"))
}

/// Spawn a thread that forwards raw stdin bytes over a channel — the
/// nonblocking key source for the interactive loop. The thread exits
/// when stdin closes or the receiver is dropped.
pub fn spawn_stdin_reader() -> std::sync::mpsc::Receiver<u8> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut stdin = std::io::stdin();
        let mut buf = [0u8; 64];
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    for &b in &buf[..n] {
                        if tx.send(b).is_err() {
                            return;
                        }
                    }
                }
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_lines_fit_and_mark_truncation() {
        let long = format!("short\n{}\n", "x".repeat(300));
        let clamped = clamp_frame(&long, 40);
        for line in clamped.lines() {
            assert!(line.chars().count() <= 40, "line too wide: {line:?}");
        }
        assert!(clamped.contains("short\n"));
        assert!(clamped.contains('\u{2026}'), "truncation marker missing");
    }

    #[test]
    fn sparkline_scales_and_handles_empties() {
        let s = sparkline(&[1.0, 2.0, 3.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], SPARKS[0]);
        assert_eq!(chars[2], SPARKS[7]);
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0]);
        assert!(flat.chars().all(|c| c == SPARKS[0]), "{flat}");
    }

    #[test]
    fn detect_width_falls_back_sanely() {
        let w = detect_width();
        assert!((20..=1000).contains(&w), "width {w}");
    }

    #[test]
    fn interactive_panel_repaints_with_cursor_up() {
        let mut panel = Panel::new(true, 80);
        let mut out: Vec<u8> = Vec::new();
        panel.draw("a\nb\n", &mut out);
        panel.draw("c\nd\n", &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\x1b[2A"), "second draw moves up 2: {text:?}");
        assert!(text.contains("\x1b[K"), "rows clear to EOL: {text:?}");
    }

    #[test]
    fn println_above_scrolls_line_out_and_repaints() {
        let mut panel = Panel::new(true, 80);
        let mut out: Vec<u8> = Vec::new();
        panel.draw("panel\n", &mut out);
        out.clear();
        panel.println_above("scrolled", &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("scrolled"));
        assert!(text.contains("panel"), "frame repainted after the line: {text:?}");
        let up_then_line = text.find("\x1b[1A").unwrap() < text.find("scrolled").unwrap();
        assert!(up_then_line, "cursor-up precedes the scrolled line: {text:?}");
    }

    #[test]
    fn non_interactive_panel_is_inert_but_prints_plain_lines() {
        let mut panel = Panel::new(false, 80);
        let mut out: Vec<u8> = Vec::new();
        panel.draw("panel\n", &mut out);
        assert!(out.is_empty(), "no escapes to a non-TTY");
        panel.println_above("plain", &mut out);
        assert_eq!(String::from_utf8(out).unwrap(), "plain\n");
    }

    #[test]
    fn finish_closes_the_panel() {
        let mut panel = Panel::new(true, 80);
        let mut out: Vec<u8> = Vec::new();
        panel.draw("x\n", &mut out);
        assert!(panel.is_open());
        panel.finish(&mut out);
        assert!(!panel.is_open());
        out.clear();
        panel.println_above("after", &mut out);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "after\n",
            "closed panel falls back to plain lines"
        );
    }
}
