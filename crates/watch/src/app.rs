//! The replay app: scrub a recorded run through synchronized panes.
//!
//! State is three numbers (scrub time, playing flag, speed exponent) —
//! every pane is a pure function of the [`ReplayData`] and the scrub
//! time, so rendering is trivially deterministic. The scripted driver
//! ([`run_script`]) feeds a fixed key sequence and emits one frame per
//! key with no clock reads at all; the interactive loop
//! ([`run_interactive`]) feeds the same app from raw-mode stdin and a
//! real repaint timer. Both paths share [`App::handle_key`], so a
//! scripted test exercises exactly the logic the user drives.

use crate::frame::Frame;
use crate::gantt::GanttModel;
use crate::input::{Key, KeyDecoder};
use crate::term;
use flagsim_core::replay::Replay;
use flagsim_core::RunReport;
use flagsim_core::WorkItem;
use flagsim_desim::causal::{self, CausalAnalysis, SegmentKind};
use flagsim_desim::{SimTime, Trace};
use std::io::Write as _;

/// One blame/race panel entry, anchored to the instant it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// One-line description.
    pub label: String,
    /// When the underlying behaviour started (ms).
    pub start_ms: u64,
    /// When it ended (ms).
    pub end_ms: u64,
}

impl Finding {
    /// Panel marker for this finding at scrub time `t`: `.` not yet
    /// reached, `>` happening now, `*` already observed.
    pub fn marker_at(&self, t_ms: u64) -> char {
        if t_ms < self.start_ms {
            '.'
        } else if t_ms < self.end_ms {
            '>'
        } else {
            '*'
        }
    }
}

/// Everything the replay panes draw from — computed once, scrubbed many
/// times.
#[derive(Debug, Clone)]
pub struct ReplayData {
    /// Pane header ("scenario 4: vertical slices on Mauritius").
    pub title: String,
    /// Grid reconstruction; `None` for a trace-file replay (a Chrome
    /// trace carries no cell identities).
    pub replay: Option<Replay>,
    /// The run's trace.
    pub trace: Trace,
    /// Causal analysis of the trace (critical path, blame, what-if).
    pub analysis: CausalAnalysis,
    /// Interval model behind the gantt pane.
    pub gantt: GanttModel,
    /// Race/tie findings anchored to their instants (empty for
    /// trace-file replays: no cell info, no race detection).
    pub findings: Vec<Finding>,
}

impl ReplayData {
    /// Build from a finished run: grid replay, causal analysis, and
    /// happens-before findings, all from the one report.
    pub fn from_report(
        title: impl Into<String>,
        report: &RunReport,
        assignments: &[Vec<WorkItem>],
    ) -> ReplayData {
        let analysis = causal::analyze(&report.trace);
        let hb = flagsim_simcheck::hb::check_run(report);
        let mut findings = Vec::new();
        for (d, span) in hb.races.iter().zip(&hb.race_spans) {
            findings.push(Finding {
                label: format!("{}: {}", d.id, d.message),
                start_ms: span.0.millis(),
                end_ms: span.1.millis(),
            });
        }
        for t in &hb.ties {
            findings.push(Finding {
                label: format!(
                    "SC302: {} procs tied for \"{}\" at {}ms",
                    t.procs.len(),
                    t.resource,
                    t.at.millis()
                ),
                start_ms: t.at.millis(),
                end_ms: t.at.millis(),
            });
        }
        findings.sort_by(|a, b| (a.start_ms, &a.label).cmp(&(b.start_ms, &b.label)));
        ReplayData {
            title: title.into(),
            replay: Some(Replay::new(report, assignments)),
            gantt: GanttModel::new(&report.trace, &analysis),
            trace: report.trace.clone(),
            analysis,
            findings,
        }
    }

    /// Build from a bare trace (Chrome trace-file source): timelines,
    /// critical path, and blame — no grid, no race findings.
    pub fn from_trace(title: impl Into<String>, trace: Trace) -> ReplayData {
        let analysis = causal::analyze(&trace);
        ReplayData {
            title: title.into(),
            replay: None,
            gantt: GanttModel::new(&trace, &analysis),
            trace,
            analysis,
            findings: Vec::new(),
        }
    }

    /// The run's end time in milliseconds.
    pub fn end_ms(&self) -> u64 {
        self.trace.end_time.millis()
    }

    /// Milliseconds waited on `resource_index` within `[0, t_ms]`.
    fn waited_by(&self, resource_index: usize, t_ms: u64) -> u64 {
        self.analysis
            .timelines
            .iter()
            .flatten()
            .filter(|s| match s.kind {
                SegmentKind::Wait { resource, .. } => resource.index() == resource_index,
                _ => false,
            })
            .map(|s| s.end.millis().min(t_ms).saturating_sub(s.start.millis()))
            .sum()
    }
}

/// Scrub steps per run at 1x speed: fine enough that every cell-level
/// change is visitable, coarse enough that holding play crosses a run
/// in seconds.
pub const TICKS_PER_RUN: u64 = 120;

/// The replay app's entire mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct App {
    /// Current scrub time (ms).
    pub t_ms: u64,
    /// Run length (ms).
    pub end_ms: u64,
    /// Whether ticks advance the scrub time.
    pub playing: bool,
    /// Playback speed as a power of two: step = base · 2^exp.
    pub speed_exp: i32,
}

impl App {
    /// Paused at t=0, 1x speed.
    pub fn new(end_ms: u64) -> App {
        App {
            t_ms: 0,
            end_ms,
            playing: false,
            speed_exp: 0,
        }
    }

    /// One scrub step at 1x: the run divided into [`TICKS_PER_RUN`].
    fn base_step(&self) -> u64 {
        (self.end_ms / TICKS_PER_RUN).max(1)
    }

    /// One scrub step at the current speed (never zero).
    fn step(&self) -> u64 {
        let base = self.base_step();
        if self.speed_exp >= 0 {
            base.saturating_mul(1u64 << self.speed_exp.min(16))
        } else {
            (base >> (-self.speed_exp).min(16)).max(1)
        }
    }

    /// Human-readable speed ("x1", "x8", "x1/4").
    pub fn speed_label(&self) -> String {
        if self.speed_exp >= 0 {
            format!("x{}", 1u64 << self.speed_exp.min(16))
        } else {
            format!("x1/{}", 1u64 << (-self.speed_exp).min(16))
        }
    }

    /// Apply one key; returns `false` when the app should quit.
    pub fn handle_key(&mut self, key: Key) -> bool {
        match key {
            Key::Quit => return false,
            Key::PlayPause => self.playing = !self.playing,
            Key::StepFwd => self.t_ms = (self.t_ms + self.base_step()).min(self.end_ms),
            Key::StepBack => self.t_ms = self.t_ms.saturating_sub(self.base_step()),
            Key::JumpFwd => {
                self.t_ms = (self.t_ms + (self.end_ms / 10).max(1)).min(self.end_ms)
            }
            Key::JumpBack => self.t_ms = self.t_ms.saturating_sub((self.end_ms / 10).max(1)),
            Key::Home => self.t_ms = 0,
            Key::End => self.t_ms = self.end_ms,
            Key::Faster => self.speed_exp = (self.speed_exp + 1).min(6),
            Key::Slower => self.speed_exp = (self.speed_exp - 1).max(-3),
            Key::SpeedReset => self.speed_exp = 0,
            Key::Tick => {
                if self.playing {
                    self.t_ms = (self.t_ms + self.step()).min(self.end_ms);
                    if self.t_ms == self.end_ms {
                        self.playing = false;
                    }
                }
            }
        }
        true
    }
}

fn secs(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1000.0)
}

/// Render every pane at the app's scrub time into one plain-text frame.
pub fn render(data: &ReplayData, app: &App, width: usize) -> Frame {
    let mut f = Frame::new(width);
    let t = SimTime(app.t_ms);

    f.line(&format!("watch: {}", data.title));
    let state = if app.playing {
        format!("playing {}", app.speed_label())
    } else {
        "paused".to_owned()
    };
    let progress = match &data.replay {
        Some(r) => {
            let total = (r.completions().len() + r.in_flight().len()).max(1);
            format!("  {}/{total} cells", r.progress_at(t))
        }
        None => String::new(),
    };
    f.line(&format!(
        "t = {} / {}  [{state}]{progress}",
        secs(app.t_ms),
        secs(app.end_ms)
    ));
    f.blank();

    // Grid pane (when cell identities exist) beside the blame/race
    // panel; panel alone otherwise.
    let panel = side_panel(data, app.t_ms);
    match &data.replay {
        Some(r) => {
            let grid = r.ascii_at(t);
            let left_w = (r.width() as usize).max(10);
            f.extend_columns(&grid, left_w, &panel);
        }
        None => f.extend_text(&panel),
    }
    f.blank();

    // Gantt pane, scrubbed.
    f.line("gantt  # busy  ~ wait  . idle  (critical path: X/W/o)");
    let gantt_width = width.saturating_sub(12).clamp(20, 64);
    f.extend_text(&data.gantt.render_at(gantt_width, app.t_ms));
    f.blank();
    f.line("keys: q quit  p play/pause  h/l step  H/L jump  g/G start/end  +/-/= speed");
    f
}

/// The blame/race side panel at instant `t_ms`.
fn side_panel(data: &ReplayData, t_ms: u64) -> String {
    let mut out = String::new();
    let w = &data.analysis.whatif;
    out.push_str(&format!(
        "run: observed {}  no-contention {}  ideal {}\n",
        secs(w.observed.millis()),
        secs(w.no_contention.millis()),
        secs(w.ideal_balance.millis())
    ));
    out.push_str("waited so far:\n");
    let mut any = false;
    for b in data.analysis.blame.iter().take(4) {
        let label = data
            .trace
            .resources
            .get(b.resource.index())
            .map(|r| r.label.as_str())
            .unwrap_or("?");
        let so_far = data.waited_by(b.resource.index(), t_ms);
        out.push_str(&format!(
            "  {label}: {} of {}\n",
            secs(so_far),
            secs(b.total.millis())
        ));
        any = true;
    }
    if !any {
        out.push_str("  (no contention)\n");
    }
    out.push_str("findings:\n");
    if data.findings.is_empty() {
        let note = if data.replay.is_some() {
            "  (none)"
        } else {
            "  (trace-file source: no cell data, race check skipped)"
        };
        out.push_str(note);
        out.push('\n');
    }
    for fi in data.findings.iter().take(6) {
        out.push_str(&format!("  {} {}\n", fi.marker_at(t_ms), fi.label));
    }
    if data.findings.len() > 6 {
        out.push_str(&format!("  … {} more\n", data.findings.len() - 6));
    }
    out
}

/// Drive the app with a scripted key sequence: one rendered frame for
/// the initial state, then one per key, stopping at `Quit`. No clock is
/// read anywhere on this path — same data, same keys, same width ⇒
/// byte-identical frames.
pub fn run_script(data: &ReplayData, keys: &[Key], width: usize) -> Vec<String> {
    let mut app = App::new(data.end_ms());
    let mut frames = vec![render(data, &app, width).render()];
    for &k in keys {
        if !app.handle_key(k) {
            break;
        }
        frames.push(render(data, &app, width).render());
    }
    frames
}

/// Run the full-screen interactive loop on the controlling terminal:
/// alternate screen, raw-mode keys, ~12 fps repaint, ticks driving
/// playback. Returns when the user quits (or stdin closes).
pub fn run_interactive(data: &ReplayData) -> Result<(), String> {
    let raw = term::RawMode::enable()?;
    let mut out = std::io::stdout();
    term::enter_alt_screen(&mut out);
    let keys = term::spawn_stdin_reader();
    let mut decoder = KeyDecoder::new();
    let mut app = App::new(data.end_ms());
    let width = term::detect_width();
    loop {
        term::cursor_home(&mut out);
        let frame = render(data, &app, width).render();
        // Clear each line's tail and everything below the frame, so a
        // shrinking frame leaves no stale rows.
        let _ = write!(out, "{}\x1b[J", frame.replace('\n', "\x1b[K\r\n"));
        let _ = out.flush();
        match keys.recv_timeout(std::time::Duration::from_millis(80)) {
            Ok(byte) => {
                if let Some(k) = decoder.feed(byte) {
                    if !app.handle_key(k) {
                        break;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                app.handle_key(Key::Tick);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    term::leave_alt_screen(&mut out);
    drop(raw);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::script_keys;
    use flagsim_agents::{ImplementKind, StudentProfile};
    use flagsim_core::config::ActivityConfig;
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    use flagsim_core::work::PreparedFlag;
    use flagsim_core::TeamKit;
    use flagsim_flags::library;

    fn scenario4_data() -> ReplayData {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team: Vec<StudentProfile> = (1..=4)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = flagsim_core::run_activity(
            "scenario 4",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_seed(7),
        )
        .unwrap();
        ReplayData::from_report("scenario 4 on Mauritius", &report, &assignments)
    }

    #[test]
    fn keys_drive_the_scrub_clock() {
        let mut app = App::new(12_000);
        assert!(app.handle_key(Key::StepFwd));
        assert_eq!(app.t_ms, 100, "base step = end/120");
        app.handle_key(Key::JumpFwd);
        assert_eq!(app.t_ms, 1_300);
        app.handle_key(Key::StepBack);
        assert_eq!(app.t_ms, 1_200);
        app.handle_key(Key::End);
        assert_eq!(app.t_ms, 12_000);
        app.handle_key(Key::StepFwd);
        assert_eq!(app.t_ms, 12_000, "clamped at end");
        app.handle_key(Key::Home);
        assert_eq!(app.t_ms, 0);
        app.handle_key(Key::StepBack);
        assert_eq!(app.t_ms, 0, "clamped at start");
        assert!(!app.handle_key(Key::Quit));
    }

    #[test]
    fn ticks_advance_only_while_playing_and_speed_scales() {
        let mut app = App::new(12_000);
        app.handle_key(Key::Tick);
        assert_eq!(app.t_ms, 0, "paused ticks are no-ops");
        app.handle_key(Key::PlayPause);
        app.handle_key(Key::Tick);
        assert_eq!(app.t_ms, 100);
        app.handle_key(Key::Faster);
        app.handle_key(Key::Faster);
        app.handle_key(Key::Tick);
        assert_eq!(app.t_ms, 500, "x4 tick");
        assert_eq!(app.speed_label(), "x4");
        app.handle_key(Key::SpeedReset);
        app.handle_key(Key::Slower);
        assert_eq!(app.speed_label(), "x1/2");
        app.handle_key(Key::End);
        // Reaching the end pauses playback.
        let mut app2 = App::new(100);
        app2.handle_key(Key::PlayPause);
        for _ in 0..200 {
            app2.handle_key(Key::Tick);
        }
        assert_eq!(app2.t_ms, 100);
        assert!(!app2.playing, "auto-pause at the end");
    }

    #[test]
    fn frames_are_plain_text_with_all_panes() {
        let data = scenario4_data();
        let app = App::new(data.end_ms());
        let text = render(&data, &app, 100).render();
        assert!(!text.contains('\x1b'), "no escapes in frames");
        assert!(text.contains("watch: scenario 4 on Mauritius"));
        assert!(text.contains("0/96 cells"), "{text}");
        assert!(text.contains("gantt"));
        assert!(text.contains("waited so far:"));
        assert!(text.contains("keys: q quit"));
    }

    #[test]
    fn scripted_replay_is_deterministic_and_ends_at_the_final_grid() {
        let data = scenario4_data();
        let keys = script_keys("p ttttt G q").unwrap();
        let a = run_script(&data, &keys, 100);
        let b = run_script(&data, &keys, 100);
        assert_eq!(a, b, "byte-identical across runs");
        // Quit stops frame production: initial + one per key up to q.
        assert_eq!(a.len(), 1 + (keys.len() - 1));
        // The last frame (after G) shows the completed run.
        let last = a.last().unwrap();
        assert!(last.contains("96/96 cells"), "{last}");
        let replay = data.replay.as_ref().unwrap();
        let final_grid = replay.ascii_at(SimTime(data.end_ms()));
        for row in final_grid.lines() {
            assert!(last.contains(row), "final grid row missing: {row}");
        }
    }

    #[test]
    fn findings_markers_follow_the_scrub_time() {
        let f = Finding {
            label: "race".into(),
            start_ms: 100,
            end_ms: 200,
        };
        assert_eq!(f.marker_at(0), '.');
        assert_eq!(f.marker_at(150), '>');
        assert_eq!(f.marker_at(200), '*');
    }

    #[test]
    fn trace_only_data_renders_without_grid_or_findings() {
        let data = scenario4_data();
        let trace_only = ReplayData::from_trace("from trace", data.trace.clone());
        let app = App::new(trace_only.end_ms());
        let text = render(&trace_only, &app, 100).render();
        assert!(text.contains("race check skipped"), "{text}");
        assert!(!text.contains("cells"), "no grid progress: {text}");
    }
}
