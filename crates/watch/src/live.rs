//! Live mode: render a running sharded sweep's fleet state.
//!
//! The data is `shard::fleet::FleetView::to_json` snapshots, obtained
//! either by tailing a file the supervisor writes (`--follow`) or by
//! connecting to the supervisor's observability port (`--connect`),
//! which pushes snapshots as length-prefixed wire frames.
//!
//! Live mode is **strictly read-only**: [`SnapshotSource::Connect`]
//! never writes a byte to the socket — it holds the stream solely to
//! `read_frame` from it — so attaching a watcher cannot perturb the
//! sweep's statistics merge path. The supervisor's obs listener
//! additionally counts client→server bytes and a test asserts that
//! count stays zero with a watcher attached.

use crate::frame::Frame;
use crate::term::sparkline;
use flagsim_telemetry::json::{self, Value};

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn boolean(v: &Value, key: &str) -> bool {
    matches!(v.get(key), Some(Value::Bool(true)))
}

/// One worker's row of a parsed fleet snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    /// Worker name.
    pub name: String,
    /// Session currently established.
    pub connected: bool,
    /// Sessions beyond the first.
    pub reconnects: u64,
    /// Leases granted.
    pub leases: u64,
    /// A lease is currently outstanding.
    pub lease_in_flight: bool,
    /// Repetitions completed.
    pub reps_done: u64,
    /// Smoothed completion rate.
    pub reps_per_s: f64,
    /// Milliseconds since the worker was last heard from.
    pub heartbeat_age_ms: u64,
    /// Telemetry frames shipped.
    pub telemetry_shipped: u64,
    /// Telemetry records dropped.
    pub telemetry_dropped: u64,
    /// Sampled rate series `(t_ms, reps_per_s)` for the sparkline.
    pub series: Vec<(u64, f64)>,
}

/// A parsed `FleetView::to_json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Campaign fingerprint.
    pub campaign: String,
    /// Total repetitions in the sweep.
    pub total_reps: u64,
    /// Repetitions merged so far.
    pub merged: u64,
    /// Snapshot timestamp (supervisor clock, ms).
    pub now_ms: u64,
    /// Workers with an established session.
    pub live_workers: u64,
    /// Leases granted but not yet reported done.
    pub leases_in_flight: u64,
    /// Per-worker rows, supervisor order.
    pub workers: Vec<WorkerRow>,
}

/// Parse one snapshot JSON document.
pub fn parse_snapshot(text: &str) -> Result<FleetSnapshot, String> {
    let doc = json::parse(text).map_err(|e| format!("bad fleet snapshot: {e}"))?;
    let campaign = doc
        .get("campaign")
        .and_then(Value::as_str)
        .ok_or("fleet snapshot has no \"campaign\" field")?
        .to_owned();
    let workers = doc
        .get("workers")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|w| WorkerRow {
            name: w
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_owned(),
            connected: boolean(w, "connected"),
            reconnects: num(w, "reconnects") as u64,
            leases: num(w, "leases") as u64,
            lease_in_flight: boolean(w, "lease_in_flight"),
            reps_done: num(w, "reps_done") as u64,
            reps_per_s: num(w, "reps_per_s"),
            heartbeat_age_ms: num(w, "heartbeat_age_ms") as u64,
            telemetry_shipped: num(w, "telemetry_shipped") as u64,
            telemetry_dropped: num(w, "telemetry_dropped") as u64,
            series: w
                .get("series")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|pt| {
                    let pt = pt.as_array()?;
                    Some((pt.first()?.as_f64()? as u64, pt.get(1)?.as_f64()?))
                })
                .collect(),
        })
        .collect();
    Ok(FleetSnapshot {
        campaign,
        total_reps: num(&doc, "total_reps") as u64,
        merged: num(&doc, "merged") as u64,
        now_ms: num(&doc, "now_ms") as u64,
        live_workers: num(&doc, "live_workers") as u64,
        leases_in_flight: num(&doc, "leases_in_flight") as u64,
        workers,
    })
}

/// Width of the sparkline window (most recent samples).
const SPARK_WINDOW: usize = 24;

/// Render a fleet snapshot as a plain-text frame: a header with merge
/// progress, then one row per worker with a rate sparkline.
pub fn render_fleet(snap: &FleetSnapshot, width: usize) -> Frame {
    let mut f = Frame::new(width);
    f.line(&format!("fleet: campaign {}", snap.campaign));
    let pct = (snap.merged * 100).checked_div(snap.total_reps).unwrap_or(0);
    f.line(&format!(
        "merged {}/{} reps ({pct}%)  workers {} live  leases {} in flight  t={:.1}s",
        snap.merged,
        snap.total_reps,
        snap.live_workers,
        snap.leases_in_flight,
        snap.now_ms as f64 / 1000.0
    ));
    f.blank();
    if snap.workers.is_empty() {
        f.line("  (no workers yet)");
        return f;
    }
    let name_w = snap
        .workers
        .iter()
        .map(|w| w.name.chars().count())
        .max()
        .unwrap_or(4)
        .max(4);
    for w in &snap.workers {
        let status = if w.connected { '*' } else { '-' };
        let lease = if w.lease_in_flight { 'L' } else { ' ' };
        let rates: Vec<f64> = w
            .series
            .iter()
            .rev()
            .take(SPARK_WINDOW)
            .rev()
            .map(|&(_, v)| v)
            .collect();
        let spark = sparkline(&rates);
        let mut row = format!(
            "{status} {:<name_w$} {lease} reps {:>6}  {:>7.2}/s  {spark:<SPARK_WINDOW$}  hb {:>5}ms",
            w.name, w.reps_done, w.reps_per_s, w.heartbeat_age_ms
        );
        if w.reconnects > 0 {
            row.push_str(&format!("  reconnects {}", w.reconnects));
        }
        if w.telemetry_dropped > 0 {
            row.push_str(&format!("  dropped {}", w.telemetry_dropped));
        }
        f.line(&row);
    }
    f
}

/// Where live snapshots come from.
pub enum SnapshotSource {
    /// A connected obs socket: snapshots arrive as pushed wire frames.
    /// The stream is read-only by construction — no method here writes.
    Connect(std::net::TcpStream),
    /// A snapshot file the supervisor rewrites (`--obs-out`): polled
    /// and re-parsed when its content changes.
    Follow {
        /// Path polled for new content.
        path: std::path::PathBuf,
        /// Last content seen, to suppress unchanged repaints.
        last: String,
    },
}

impl SnapshotSource {
    /// Connect to a supervisor's obs listener.
    pub fn connect(addr: &str) -> Result<SnapshotSource, String> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        Ok(SnapshotSource::Connect(stream))
    }

    /// Follow a snapshot file on disk.
    pub fn follow(path: impl Into<std::path::PathBuf>) -> SnapshotSource {
        SnapshotSource::Follow {
            path: path.into(),
            last: String::new(),
        }
    }

    /// The next snapshot, blocking briefly:
    /// `Ok(Some)` — a new snapshot; `Ok(None)` — nothing new yet (poll
    /// again); `Err` — the source ended (socket closed, file gone).
    pub fn next_snapshot(&mut self) -> Result<Option<FleetSnapshot>, String> {
        match self {
            SnapshotSource::Connect(stream) => {
                match flagsim_shard::wire::read_frame(stream) {
                    Ok(Some(body)) => parse_snapshot(&body).map(Some),
                    Ok(None) => Err("obs connection closed".to_owned()),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        Ok(None)
                    }
                    Err(e) => Err(format!("obs connection lost: {e}")),
                }
            }
            SnapshotSource::Follow { path, last } => {
                std::thread::sleep(std::time::Duration::from_millis(200));
                let text = std::fs::read_to_string(&*path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                if text == *last || text.trim().is_empty() {
                    return Ok(None);
                }
                *last = text.clone();
                parse_snapshot(&text).map(Some)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        let mut fv = flagsim_shard::fleet::FleetView::default();
        fv.reset("00c0ffee".into(), 64);
        fv.on_connected("w-0", 10);
        fv.on_connected("w-1", 12);
        fv.on_lease("w-0", 20);
        for t in 0..10u64 {
            fv.on_rep("w-0", 30 + t * 90);
            fv.sample(30 + t * 90);
        }
        fv.on_telemetry("w-1", 3, 900);
        fv.on_disconnected("w-1");
        fv.merged = 10;
        fv.to_json(1_000)
    }

    #[test]
    fn parses_a_real_fleet_snapshot() {
        let snap = parse_snapshot(&sample_json()).expect("parses");
        assert_eq!(snap.campaign, "00c0ffee");
        assert_eq!(snap.total_reps, 64);
        assert_eq!(snap.merged, 10);
        assert_eq!(snap.now_ms, 1_000);
        assert_eq!(snap.live_workers, 1);
        assert_eq!(snap.workers.len(), 2);
        let w0 = &snap.workers[0];
        assert_eq!(w0.name, "w-0");
        assert!(w0.connected);
        assert!(w0.lease_in_flight);
        assert_eq!(w0.reps_done, 10);
        assert!(!w0.series.is_empty(), "sampled series survives the trip");
        let w1 = &snap.workers[1];
        assert!(!w1.connected);
        assert_eq!(w1.telemetry_dropped, 3);
    }

    #[test]
    fn renders_the_fleet_panel_plainly() {
        let snap = parse_snapshot(&sample_json()).expect("parses");
        let text = render_fleet(&snap, 120).render();
        assert!(!text.contains('\x1b'), "frames are escape-free");
        assert!(text.contains("fleet: campaign 00c0ffee"));
        assert!(text.contains("merged 10/64 reps (15%)"));
        assert!(text.contains("workers 1 live"));
        assert!(text.contains("* w-0"), "connected marker: {text}");
        assert!(text.contains("- w-1"), "disconnected marker: {text}");
        assert!(text.contains("dropped 3"), "{text}");
        let has_spark = text.chars().any(|c| crate::term::SPARKS.contains(&c));
        assert!(has_spark, "w-0's rate sparkline rendered: {text}");
    }

    #[test]
    fn empty_fleet_and_bad_input() {
        let mut fv = flagsim_shard::fleet::FleetView::default();
        fv.reset("c".into(), 8);
        let snap = parse_snapshot(&fv.to_json(0)).expect("parses");
        let text = render_fleet(&snap, 80).render();
        assert!(text.contains("(no workers yet)"));
        assert!(parse_snapshot("not json").is_err());
        assert!(parse_snapshot("{\"x\": 1}").is_err(), "campaign required");
    }

    #[test]
    fn follow_source_reports_changes_once() {
        let dir = std::env::temp_dir().join(format!("watch-follow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        std::fs::write(&path, sample_json()).unwrap();
        let mut src = SnapshotSource::follow(&path);
        let first = src.next_snapshot().expect("readable");
        assert!(first.is_some(), "first read yields the snapshot");
        let second = src.next_snapshot().expect("readable");
        assert!(second.is_none(), "unchanged file is suppressed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
