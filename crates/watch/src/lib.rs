//! flagsim-watch: a hand-rolled terminal UI for watching runs.
//!
//! Two modes, one rendering pipeline:
//!
//! - **Replay** ([`app`]): reconstruct a recorded run (scenario+seed
//!   via `core::replay`, or a Chrome-trace file via [`chrome`]) and
//!   scrub through it — grid filling in, gantt with the executed
//!   critical path, blame/races anchored to the current instant.
//! - **Live** ([`live`]): attach read-only to a running sharded sweep
//!   and render the `shard::fleet` observability stream as a fleet
//!   panel with per-worker sparklines.
//!
//! Everything renders into a plain-text [`frame::Frame`]; escape codes
//! exist only in [`term`], wrapped around frames at the last moment.
//! Under `--script` the app consumes a fixed key sequence and no wall
//! clock, which makes the whole UI byte-deterministic and testable
//! headless. The terminal plumbing in [`term`] is shared with the
//! `flagsim sweep` dashboard so the two never diverge.

pub mod app;
pub mod chrome;
pub mod frame;
pub mod gantt;
pub mod input;
pub mod live;
pub mod term;
