//! The frame buffer every watch pane renders into.
//!
//! A [`Frame`] is plain text — no escape codes — so the same bytes
//! serve three consumers: the interactive repaint loop (which adds
//! cursor addressing around it), the non-TTY plain fallback, and the
//! `--frames-out` scripted dump that CI diffs byte-for-byte. Keeping
//! escapes out of the frame is what makes the determinism contract
//! checkable: two runs agree iff the dumped text agrees.

use crate::term::clamp_line;

/// A fixed-width text frame built line by line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    lines: Vec<String>,
}

impl Frame {
    /// An empty frame clamping every pushed line to `width` characters.
    pub fn new(width: usize) -> Frame {
        Frame {
            width: width.max(20),
            lines: Vec::new(),
        }
    }

    /// The clamping width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of lines pushed so far.
    pub fn height(&self) -> usize {
        self.lines.len()
    }

    /// Append one line, clamped to the frame width.
    pub fn line(&mut self, text: &str) {
        self.lines.push(clamp_line(text, self.width));
    }

    /// Append a blank separator line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Append every line of a multi-line block.
    pub fn extend_text(&mut self, text: &str) {
        for line in text.lines() {
            self.line(line);
        }
    }

    /// Append `left` and `right` blocks side by side, `left` padded to
    /// `left_w` columns and the pair separated by two spaces. Shorter
    /// blocks are padded with empty rows so the other column keeps its
    /// horizontal position.
    pub fn extend_columns(&mut self, left: &str, left_w: usize, right: &str) {
        let lhs: Vec<&str> = left.lines().collect();
        let rhs: Vec<&str> = right.lines().collect();
        for i in 0..lhs.len().max(rhs.len()) {
            let l = lhs.get(i).copied().unwrap_or("");
            let r = rhs.get(i).copied().unwrap_or("");
            if r.is_empty() {
                self.line(l);
            } else {
                let pad = left_w.saturating_sub(l.chars().count());
                self.line(&format!("{l}{}  {r}", " ".repeat(pad)));
            }
        }
    }

    /// The frame as plain text: one `\n`-terminated row per line,
    /// trailing blank lines trimmed. This is the byte-deterministic
    /// artifact the scripted mode dumps.
    pub fn render(&self) -> String {
        let last = self
            .lines
            .iter()
            .rposition(|l| !l.is_empty())
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut out = String::new();
        for line in &self.lines[..last] {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Serialize a sequence of rendered frames for `--frames-out`: each
/// frame preceded by a `== frame N ==` marker so tests and humans can
/// split the dump unambiguously (frame text never starts a line with
/// `== `).
pub fn dump_frames(frames: &[String]) -> String {
    let mut out = String::new();
    for (i, f) in frames.iter().enumerate() {
        out.push_str(&format!("== frame {i} ==\n"));
        out.push_str(f);
    }
    out
}

/// Split a [`dump_frames`] artifact back into frames (used by tests to
/// round-trip the dump).
pub fn split_frames(dump: &str) -> Vec<String> {
    let mut frames: Vec<String> = Vec::new();
    for line in dump.lines() {
        if line.starts_with("== frame ") && line.ends_with(" ==") {
            frames.push(String::new());
        } else if let Some(cur) = frames.last_mut() {
            cur.push_str(line);
            cur.push('\n');
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_clamped_and_rendered_in_order() {
        let mut f = Frame::new(20);
        f.line("hello");
        f.line(&"x".repeat(40));
        assert_eq!(f.height(), 2);
        let text = f.render();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows[0], "hello");
        assert!(rows[1].chars().count() <= 20);
        assert!(rows[1].ends_with('\u{2026}'));
    }

    #[test]
    fn trailing_blanks_are_trimmed() {
        let mut f = Frame::new(40);
        f.line("a");
        f.blank();
        f.blank();
        assert_eq!(f.render(), "a\n");
    }

    #[test]
    fn columns_align_left_block() {
        let mut f = Frame::new(80);
        f.extend_columns("ab\ncdef", 6, "R1\nR2\nR3");
        let text = f.render();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows[0], "ab      R1");
        assert_eq!(rows[1], "cdef    R2");
        assert_eq!(rows[2], "        R3");
    }

    #[test]
    fn dump_and_split_round_trip() {
        let frames = vec!["a\nb\n".to_owned(), "c\n".to_owned()];
        let dump = dump_frames(&frames);
        assert_eq!(split_frames(&dump), frames);
        assert!(dump.starts_with("== frame 0 ==\n"));
    }
}
