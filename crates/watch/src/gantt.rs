//! The watch gantt pane: per-process timelines with the executed
//! critical path highlighted, scrubbed to the current instant.
//!
//! `desim::causal::critical_gantt` renders the same chart with ANSI
//! color for one-shot CLI output; this pane re-renders the model as
//! *plain text only* (the watch determinism contract forbids escapes
//! inside a frame) and additionally masks everything after the scrub
//! time, so the chart fills in as the user plays the run forward. The
//! glyph alphabet matches the CLI chart: `#` busy / `~` waiting / `.`
//! idle, upper-cased to `X` / `W` / `o` on the critical path.

use flagsim_desim::causal::{CausalAnalysis, SegmentKind};
use flagsim_desim::Trace;
use std::fmt::Write as _;

/// Precomputed per-process intervals, ready to render at any instant.
#[derive(Debug, Clone)]
pub struct GanttModel {
    names: Vec<String>,
    busy: Vec<Vec<(u64, u64)>>,
    wait: Vec<Vec<(u64, u64)>>,
    crit: Vec<Vec<(u64, u64)>>,
    end_ms: u64,
    name_w: usize,
}

fn overlap(ivs: &[(u64, u64)], t0: u64, t1: u64) -> u64 {
    ivs.iter()
        .map(|&(a, b)| b.min(t1).saturating_sub(a.max(t0)))
        .sum()
}

impl GanttModel {
    /// Build the interval model from a trace and its causal analysis.
    pub fn new(trace: &Trace, analysis: &CausalAnalysis) -> GanttModel {
        let nprocs = trace.procs.len();
        let mut busy = vec![Vec::new(); nprocs];
        let mut wait = vec![Vec::new(); nprocs];
        for (pi, segs) in analysis.timelines.iter().enumerate().take(nprocs) {
            for s in segs {
                let iv = (s.start.millis(), s.end.millis());
                match s.kind {
                    SegmentKind::Compute => busy[pi].push(iv),
                    SegmentKind::Wait { .. } => wait[pi].push(iv),
                    SegmentKind::Idle => {}
                }
            }
        }
        let mut crit = vec![Vec::new(); nprocs];
        for seg in &analysis.critical_path {
            if let Some(ivs) = crit.get_mut(seg.proc.index()) {
                ivs.push((seg.start.millis(), seg.end.millis()));
            }
        }
        let names: Vec<String> = trace.procs.iter().map(|p| p.name.clone()).collect();
        let name_w = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        GanttModel {
            names,
            busy,
            wait,
            crit,
            end_ms: trace.end_time.millis(),
            name_w,
        }
    }

    /// Number of process rows.
    pub fn rows(&self) -> usize {
        self.names.len()
    }

    /// Render the chart `width` buckets wide, showing only what has
    /// happened by `t_ms`: buckets past the scrub point stay blank, the
    /// bucket containing `t_ms` is marked on the axis row with `^`.
    pub fn render_at(&self, width: usize, t_ms: u64) -> String {
        let width = width.max(1);
        let total = self.end_ms.max(1);
        let name_w = self.name_w;
        let mut out = String::new();
        for (pi, name) in self.names.iter().enumerate() {
            let _ = write!(out, "{name:>name_w$} |");
            for i in 0..width {
                let t0 = total * i as u64 / width as u64;
                let t1 = (total * (i + 1) as u64 / width as u64).max(t0 + 1);
                if t0 >= t_ms {
                    out.push(' ');
                    continue;
                }
                // A bucket the scrub point bisects is rendered from its
                // elapsed part only, so play-forward never shows the
                // future.
                let t1 = t1.min(t_ms);
                let b = overlap(&self.busy[pi], t0, t1);
                let w = overlap(&self.wait[pi], t0, t1);
                let c = overlap(&self.crit[pi], t0, t1);
                let base = if b == 0 && w == 0 {
                    '.'
                } else if b >= w {
                    '#'
                } else {
                    '~'
                };
                out.push(if c * 2 >= t1 - t0 {
                    match base {
                        '#' => 'X',
                        '~' => 'W',
                        _ => 'o',
                    }
                } else {
                    base
                });
            }
            out.push_str("|\n");
        }
        // Axis row with the scrub cursor.
        let cursor = ((t_ms.min(total)) * width as u64 / total).min(width as u64 - 1) as usize;
        let mut axis = String::with_capacity(width);
        for i in 0..width {
            axis.push(if i == cursor { '^' } else { '-' });
        }
        let _ = writeln!(out, "{:>name_w$} |{axis}|", "");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_desim::causal::analyze;
    use flagsim_desim::{Action, Engine, FnProcess, SimDuration};

    fn contended_trace() -> Trace {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", SimDuration::from_millis(5));
        for name in ["A", "B"] {
            let mut step = 0;
            eng.add_process(Box::new(FnProcess::new(name, move |_| {
                step += 1;
                match step {
                    1 => Action::Acquire(marker),
                    2 => Action::Work(SimDuration::from_millis(40)),
                    3 => Action::Release(marker),
                    _ => Action::Done,
                }
            })));
        }
        eng.run()
    }

    #[test]
    fn full_scrub_matches_trace_states_and_has_no_ansi() {
        let trace = contended_trace();
        let model = GanttModel::new(&trace, &analyze(&trace));
        let g = model.render_at(40, trace.end_time.millis());
        assert!(!g.contains('\x1b'), "frames must be escape-free: {g:?}");
        assert!(g.contains('X'), "critical compute visible: {g}");
        assert!(g.contains('~') || g.contains('W'), "waiting visible: {g}");
        assert_eq!(g.lines().count(), 3, "{g}");
        assert!(g.lines().last().unwrap().contains('^'));
    }

    #[test]
    fn scrubbing_to_zero_blanks_the_chart() {
        let trace = contended_trace();
        let model = GanttModel::new(&trace, &analyze(&trace));
        let g = model.render_at(40, 0);
        for line in g.lines().take(model.rows()) {
            let body: String = line.chars().skip_while(|&c| c != '|').collect();
            assert!(
                body.chars().all(|c| c == '|' || c == ' '),
                "nothing drawn at t=0: {line:?}"
            );
        }
    }

    #[test]
    fn play_forward_reveals_monotonically() {
        let trace = contended_trace();
        let model = GanttModel::new(&trace, &analyze(&trace));
        let end = trace.end_time.millis();
        let drawn = |g: &str| {
            g.lines()
                .take(model.rows())
                .map(|l| l.chars().filter(|c| "#~.XWo".contains(*c)).count())
                .sum::<usize>()
        };
        let mut last = 0;
        for i in 0..=8 {
            let n = drawn(&model.render_at(40, end * i / 8));
            assert!(n >= last, "chart un-drew between steps");
            last = n;
        }
        assert!(last > 0);
    }
}
