//! Property tests over the watch replay UI: for any scenario shape,
//! implement kind, and seed, scrubbing forward must never un-fill the
//! grid, scrubbing to the end must reproduce the recorded run's final
//! grid byte-for-byte, and a scripted session must dump byte-identical
//! frames no matter how many times it runs — the determinism contract
//! `flagsim watch --script` advertises.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::partition::{CellOrder, PartitionStrategy};
use flagsim_core::work::PreparedFlag;
use flagsim_core::RunReport;
use flagsim_desim::SimTime;
use flagsim_grid::render::to_ascii;
use flagsim_watch::app::{render, run_script, App, ReplayData, TICKS_PER_RUN};
use flagsim_watch::input::{script_keys, Key};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ImplementKind> {
    prop_oneof![
        Just(ImplementKind::BingoDauber),
        Just(ImplementKind::ThickMarker),
        Just(ImplementKind::ThinMarker),
        Just(ImplementKind::Crayon),
    ]
}

/// Run Mauritius split into `parts` vertical slices and wrap the
/// report for the watch app.
fn recorded(parts: u32, kind: ImplementKind, seed: u64) -> (RunReport, ReplayData) {
    let pf = PreparedFlag::new(&flagsim_flags::library::mauritius());
    let assignments =
        PartitionStrategy::VerticalSlices(parts).assignments(&pf, CellOrder::RowMajor, &[]);
    let mut team: Vec<StudentProfile> = (1..=assignments.len())
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect();
    let kit = TeamKit::uniform(kind, &pf.colors_needed(&[]));
    let report = flagsim_core::run_activity(
        "watch prop",
        &pf,
        &assignments,
        &mut team,
        &kit,
        &ActivityConfig::default().with_seed(seed),
    )
    .expect("mauritius scenario runs");
    let data = ReplayData::from_report("prop", &report, &assignments);
    (report, data)
}

/// Pull the `{done}/{total} cells` counter out of a rendered frame.
fn cells_done(frame: &str) -> (usize, usize) {
    let line = frame
        .lines()
        .find(|l| l.ends_with("cells"))
        .unwrap_or_else(|| panic!("no cells counter in frame:\n{frame}"));
    let counter = line
        .rsplit("  ")
        .next()
        .and_then(|f| f.strip_suffix(" cells"))
        .unwrap_or_else(|| panic!("malformed status line: {line}"));
    let (done, total) = counter.split_once('/').expect("done/total");
    (done.parse().expect("done"), total.parse().expect("total"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scrubbing forward never un-fills the grid: the cells counter in
    /// the rendered frames is nondecreasing, starts at zero, and reaches
    /// every cell once the scrub clock hits the end of the run.
    #[test]
    fn replay_frames_are_monotone(
        parts in 2u32..=6,
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let (_, data) = recorded(parts, kind, seed);
        let mut app = App::new(data.end_ms());
        let (mut prev, total) = cells_done(&render(&data, &app, 100).render());
        prop_assert_eq!(prev, 0, "scrub starts with a blank grid");
        // One base step more than a full run's worth, to prove the
        // clamp at the end is also monotone.
        for _ in 0..=TICKS_PER_RUN {
            app.handle_key(Key::StepFwd);
            let (done, t) = cells_done(&render(&data, &app, 100).render());
            prop_assert_eq!(t, total, "cell total never changes");
            prop_assert!(done >= prev, "cells went backwards: {} -> {}", prev, done);
            prev = done;
        }
        prop_assert_eq!(prev, total, "the end of the scrub shows every cell");
    }

    /// Scrubbing to `end_ms` reproduces the recorded final grid
    /// byte-for-byte: the replay's last ASCII frame equals the report
    /// grid's renderer output, and every row of it appears verbatim in
    /// the watch frame after a `G` (jump-to-end) key.
    #[test]
    fn scrub_to_end_matches_the_recorded_grid(
        parts in 2u32..=6,
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let (report, data) = recorded(parts, kind, seed);
        let replay = data.replay.as_ref().expect("report-backed data has a replay");
        prop_assert!(!replay.cut_off(), "no bell in the default config");
        let scrubbed = replay.ascii_at(SimTime(data.end_ms()));
        prop_assert_eq!(&scrubbed, &to_ascii(&report.grid));
        let frames = run_script(&data, &script_keys("G q").expect("script"), 100);
        let last = frames.last().expect("G produced a frame");
        for row in scrubbed.lines() {
            prop_assert!(last.contains(row), "final frame missing grid row {:?}", row);
        }
    }

    /// Any `--script` key sequence dumps byte-identical frames across
    /// runs, at any width — the UI reads no clock and no randomness.
    #[test]
    fn scripted_dumps_are_byte_identical(
        parts in 2u32..=6,
        kind in kind_strategy(),
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..14, 0..40),
        width in 30usize..140,
    ) {
        const ALPHABET: &[u8; 14] = b"qplhLHgG+=t -=";
        let script: String = picks.iter().map(|&i| ALPHABET[i] as char).collect();
        let (_, data) = recorded(parts, kind, seed);
        let keys = script_keys(&script).expect("alphabet is valid");
        let a = run_script(&data, &keys, width);
        let b = run_script(&data, &keys, width);
        prop_assert_eq!(&a, &b, "scripted frames differ across runs");
        // Frame accounting: one initial frame, one per key, stopping at
        // the first quit.
        let acted = keys.iter().position(|k| *k == Key::Quit).unwrap_or(keys.len());
        prop_assert_eq!(a.len(), 1 + acted);
        for frame in &a {
            prop_assert!(!frame.contains('\x1b'), "escape code leaked into a frame");
        }
    }
}
