//! The pipelining lesson, three ways:
//!
//! 1. simulated scenario 4 (the convoy on the red marker),
//! 2. the simulated pipelined rotation (§III-C's coordination strategy),
//! 3. an actual thread pipeline: one stage per stripe, columns flowing
//!    through channels — "mimicking the movement of data through an
//!    arithmetic pipeline".
//!
//! Run with: `cargo run --release --example marker_pipeline`

use flagsim::agents::{ImplementKind, StudentProfile};
use flagsim::core::config::ActivityConfig;
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::TeamKit;
use flagsim::flags::library;
use flagsim::grid::Color;
use flagsim::threads::{run_pipeline, CellWorkload};

fn main() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let cfg = ActivityConfig::default().with_seed(11);
    let fresh = || -> Vec<StudentProfile> {
        (1..=4)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect()
    };

    println!("== simulated classroom ==");
    for scenario in [Scenario::fig1(4), Scenario::pipelined_slices(&flag, 4, 4)] {
        let mut team = fresh();
        let r = scenario.run(&flag, &mut team, &kit, &cfg).unwrap();
        println!(
            "{:<48} {:>6.1}s  waiting {:>6.1}s  fill {:>5.1}s",
            r.label,
            r.completion_secs(),
            r.total_wait_secs(),
            r.pipeline_fill_secs()
        );
        println!("{}", r.trace.gantt(64));
    }

    println!("== real thread pipeline (one stage per stripe) ==");
    let big = PreparedFlag::at_size(&library::mauritius(), 96, 64);
    for stages in [1u32, 2, 4] {
        let out = run_pipeline(&big, stages, CellWorkload::default());
        println!(
            "{} stage(s): wall {:>9.3?}, first column through at {:>9.3?}, verified {}",
            stages,
            out.wall,
            out.fill,
            out.verify(&big)
        );
    }
    println!("\nThe fill time is the pipeline lesson: stages idle until the first");
    println!("column reaches them, exactly like students idle until the first");
    println!("marker reaches them.");
}
