//! Regenerate the paper's evaluation artifacts: Tables I–III, the Fig. 6
//! series, the Fig. 8 pre/post transitions and the §V-C grading study —
//! all computed from calibrated synthetic cohorts by the same statistics
//! code a real analysis would use.
//!
//! Run with: `cargo run --example assessment_report`

use flagsim::assessment::report as arep;
use flagsim::assessment::survey::Construct;

const SEED: u64 = 0x0F1A_65ED;

fn main() {
    for (title, construct) in [
        ("Table I — engagement (median scores)", Construct::Engagement),
        ("Table II — understanding (median scores)", Construct::Understanding),
        ("Table III — instructor (median scores)", Construct::Instructor),
    ] {
        let rows = arep::regenerate_table(construct, SEED);
        println!("{}", arep::render_table(title, &rows));
        assert!(
            arep::table_matches(&rows),
            "regenerated medians must equal the published ones"
        );
    }

    println!("Fig. 6 series (median per question per institution):");
    for (q, medians) in arep::fig6_series(SEED) {
        let cells: Vec<String> = medians
            .iter()
            .map(|m| m.map_or("NA".into(), |v| format!("{v:.1}")))
            .collect();
        println!("  {:<72} {}", q.label(), cells.join("  "));
    }
    println!();

    println!("Fig. 8 — pre/post quiz transitions (regenerated):");
    println!("{}", arep::fig8_report(SEED));

    println!("{}", arep::jordan_report(SEED));
}
