//! Quickstart: the core activity in ~40 lines.
//!
//! Simulates the four Fig. 1 scenarios on the flag of Mauritius with one
//! team of four students and prints the classroom's "times on the board",
//! speedups, and the flag itself.
//!
//! Run with: `cargo run --example quickstart`

use flagsim::agents::{ImplementKind, StudentProfile};
use flagsim::core::config::ActivityConfig;
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::TeamKit;
use flagsim::flags::library;
use flagsim::grid::{render, Color};
use flagsim::metrics::speedup;

fn main() {
    let flag = PreparedFlag::new(&library::mauritius());
    println!("The flag of Mauritius ({}x{} cells):", flag.width, flag.height);
    println!("{}", render::to_ascii(&flag.reference));
    println!("legend: {}\n", render::legend(&flag.reference));

    // One team, one thick marker of each color (the source of scenario
    // 4's contention), warm-up active like a real first class.
    let mut team: Vec<StudentProfile> =
        (1..=4).map(|i| StudentProfile::new(format!("P{i}"))).collect();
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
    let config = ActivityConfig::default().with_seed(2025);

    println!("Times on the board:");
    let mut baseline = None;
    for n in 1..=4u8 {
        let scenario = Scenario::fig1(n);
        let report = scenario
            .run(&flag, &mut team, &kit, &config)
            .expect("the dry run said the kit was fine");
        assert!(report.correct, "the flag must come out right");
        let t1 = *baseline.get_or_insert(report.completion_secs());
        println!(
            "  {:<38} {:>6.1}s   speedup {:>4.2}x   waiting {:>5.1}s",
            report.label,
            report.completion_secs(),
            speedup(t1, report.completion_secs()),
            report.total_wait_secs(),
        );
    }
    println!("\nLessons: times fall as processors are added (scenarios 1-3),");
    println!("then contention over the shared markers bites (scenario 4).");
}
