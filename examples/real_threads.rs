//! The activity on real cores: the same partitions, executed by OS
//! threads over calibrated per-cell work, with a per-color mutex playing
//! the team's single marker.
//!
//! Run with: `cargo run --release --example real_threads`

use flagsim::core::partition::{CellOrder, PartitionStrategy};
use flagsim::core::work::PreparedFlag;
use flagsim::flags::library;
use flagsim::threads::{CellWorkload, ExecMode, ParallelColorer};

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host cores: {cores}\n");

    let flag = PreparedFlag::at_size(&library::mauritius(), 192, 128);
    let colorer = ParallelColorer::new(&flag, CellWorkload::default());

    println!("{:<36}{:>9}{:>12}{:>10}", "mode", "threads", "wall", "ok");
    for threads in [1u32, 2, 4] {
        let assignments = PartitionStrategy::VerticalSlices(threads)
            .assignments(&flag, CellOrder::RowMajor, &[]);
        for mode in [ExecMode::Static, ExecMode::SharedImplements] {
            let out = colorer.run(&assignments, mode);
            println!(
                "{:<36}{:>9}{:>12.3?}{:>10}",
                format!("{mode:?}"),
                out.threads,
                out.wall,
                out.verify(&flag)
            );
        }
    }
    let all = PartitionStrategy::VerticalSlices(4).assignments(&flag, CellOrder::RowMajor, &[]);
    let dynamic = colorer.run(&all, ExecMode::DynamicChunks { chunk: 256 });
    println!(
        "{:<36}{:>9}{:>12.3?}{:>10}",
        "DynamicChunks { chunk: 256 }",
        dynamic.threads,
        dynamic.wall,
        dynamic.verify(&flag)
    );
    println!(
        "\nEvery mode colors the identical flag; wall-clock speedup tracks the\n\
         host's core count — on a single-core host the lines tie, which is the\n\
         activity's own 'technology differences matter' lesson."
    );
}
