//! Instructor preparation, §IV style: run the dry-run checklist for every
//! scenario, preview the slide deck, and print the vocabulary handout the
//! survey respondents asked for.
//!
//! Run with: `cargo run --example instructor_prep`

use flagsim::agents::{Implement, ImplementKind};
use flagsim::core::advice::{overall, preflight, render_checklist, Severity};
use flagsim::core::config::ActivityConfig;
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::{glossary, slides, TeamKit};
use flagsim::flags::library;

fn main() {
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default();

    // The kit as found in the supply closet: thick markers, but the green
    // one has seen better days.
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]))
        .with_implement(
            flagsim::grid::Color::Green,
            Implement {
                kind: ImplementKind::ThickMarker,
                condition: flagsim::agents::Condition::Worn,
            },
        );

    println!("== Dry-run checklists ==");
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        println!("--- {} ---", sc.name);
        print!("{}", render_checklist(&results));
        if overall(&results) == Severity::Blocker {
            println!("fix the blockers before class!");
        }
        println!();
    }

    println!("== Scenario 3 slide (project this) ==");
    println!("{}", slides::scenario_slide(&Scenario::fig1(3), &flag));

    println!("== Vocabulary handout ==");
    print!("{}", glossary::render_glossary());
}
