//! The Knox follow-up: dependency graphs for layered flags.
//!
//! Builds the Fig. 9-style graphs for Great Britain and Jordan, prints
//! critical paths, schedules the layered colorings on 1/2/4 students, and
//! grades a few sample "student submissions" with the §V-C rubric.
//!
//! Run with: `cargo run --example dependency_graphs`

use flagsim::core::layered;
use flagsim::flags::library;
use flagsim::taskgraph::analysis;
use flagsim::taskgraph::{classify, list_schedule, Priority, SubmittedGraph};
use flagsim_assessment::jordan;

fn main() {
    for spec in [library::great_britain(), library::jordan()] {
        let g = layered::flag_taskgraph(&spec, 2000);
        println!("=== {} ===", spec.name);
        println!("{}", g.to_dot(&spec.name));
        let (path, span) = analysis::critical_path(&g);
        let labels: Vec<&str> = path.iter().map(|&t| g.label(t)).collect();
        println!(
            "work {:.0}s, span {:.0}s, parallelism {:.2}",
            analysis::work(&g) as f64 / 1000.0,
            span as f64 / 1000.0,
            analysis::parallelism(&g)
        );
        println!("critical path: {}", labels.join(" -> "));
        for p in [1usize, 2, 4] {
            let s = list_schedule(&g, p, Priority::CriticalPath);
            println!("\nschedule on {p} student(s), makespan {:.0}s:", s.makespan as f64 / 1000.0);
            print!("{}", s.gantt(&g, 60));
        }
        println!();
    }

    println!("=== Grading sample submissions (Jordan, §V-C rubric) ===");
    let reference = jordan::reference_graph();
    let options = jordan::grade_options();
    let samples: Vec<(&str, SubmittedGraph)> = vec![
        (
            "a correct graph omitting the white stripe",
            SubmittedGraph::new(
                ["black stripe", "green stripe", "red triangle", "white dot"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                vec![(0, 2), (1, 2), (2, 3)],
            ),
        ),
        (
            "a linear chain (sequential-code thinking)",
            SubmittedGraph::new(
                [
                    "black stripe",
                    "white stripe",
                    "green stripe",
                    "red triangle",
                    "white dot",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            ),
        ),
        (
            "code instead of a graph",
            SubmittedGraph::new(
                ["for loop", "setPixel"].iter().map(|s| s.to_string()).collect(),
                vec![(0, 1)],
            ),
        ),
    ];
    for (desc, sub) in &samples {
        println!("  {desc}: {:?}", classify(sub, &reference, &options));
    }

    println!("\n=== The full §V-C study, regenerated ===");
    println!("{}", flagsim_assessment::report::jordan_report(2025));
}
