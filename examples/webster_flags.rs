//! The Webster variation: load balancing with the French and Canadian
//! flags, plus the NVIDIA paintball CPU-vs-GPU contrast the Webster
//! instructor showed in class.
//!
//! Run with: `cargo run --example webster_flags`

use flagsim::agents::{ImplementKind, StudentProfile};
use flagsim::core::config::ActivityConfig;
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::TeamKit;
use flagsim::flags::library;
use flagsim::grid::render;
use flagsim::metrics::{load_imbalance, speedup};
use flagsim::threads::gpu;

fn main() {
    let cfg = ActivityConfig::default().with_seed(7);
    for spec in [library::france(), library::canada()] {
        let flag = PreparedFlag::new(&spec);
        println!("=== {} ===", spec.name);
        println!("{}", render::to_ascii(&flag.reference));
        println!(
            "colorable cells: {}, boundary (fiddly) cells: {}",
            flag.total_items(&[]),
            flag.boundary_cells(&[])
        );
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let mut solo = vec![StudentProfile::new("P1").without_warmup()];
        let mut trio: Vec<StudentProfile> = (1..=3)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let r1 = Scenario::webster(1).run(&flag, &mut solo, &kit, &cfg).unwrap();
        let r3 = Scenario::webster(3).run(&flag, &mut trio, &kit, &cfg).unwrap();
        let busy = r3.busy_secs_per_student();
        println!(
            "1 student: {:>6.1}s | 3 students: {:>6.1}s | speedup {:.2}x",
            r1.completion_secs(),
            r3.completion_secs(),
            speedup(r1.completion_secs(), r3.completion_secs())
        );
        println!(
            "per-student coloring time: {:?} -> load imbalance {:.2}",
            busy.iter().map(|b| (b * 10.0).round() / 10.0).collect::<Vec<_>>(),
            load_imbalance(&busy)
        );
        println!(
            "(the student with the maple-leaf slice holds everyone up — load balancing!)\n"
        );
    }

    println!("=== The paintball video, quantified ===");
    let flag = PreparedFlag::at_size(&library::canada(), 96, 48);
    let c = gpu::compare(&flag);
    println!(
        "CPU (one barrel):          {} shots, {:.0}s",
        c.cpu_shots, c.cpu_secs
    );
    println!(
        "GPU (one barrel per pixel): {} shot, {:.0}s — extreme data parallelism",
        c.gpu_shots, c.gpu_secs
    );
}
