//! The paper's §VI future work, executed: pool the pre/post quiz
//! transitions across institutions and (simulated) repeat offerings, and
//! run the statistically proper paired test — McNemar's — per concept.
//!
//! Run with: `cargo run --example future_work_statistics`

use flagsim::assessment::longitudinal::{pooled_analysis, render_analysis};
use flagsim::metrics::mcnemar;
use flagsim::metrics::TransitionMatrix;

fn main() {
    println!("=== One offering (the paper's actual data shape) ===");
    let one = pooled_analysis(1, 2025);
    println!("{}", render_analysis(&one, 0.05));

    println!("=== Five simulated offerings (what §VI plans to collect) ===");
    let five = pooled_analysis(5, 2025);
    println!("{}", render_analysis(&five, 0.05));

    println!("Reading the table:");
    println!("- contention and pipelining: the activity's own lessons; their gains");
    println!("  clear McNemar's test even with a single offering.");
    println!("- task decomposition and scalability: mostly known beforehand; no");
    println!("  significant gain (and pooling exposes a small task-decomposition");
    println!("  *loss* — worth watching, exactly why the paper wants more data).");

    // The test itself, on a toy example.
    println!("\nMcNemar on a toy matrix (20 gained, 2 lost):");
    let m = TransitionMatrix::from_counts(30, 20, 2, 8);
    let r = mcnemar(&m).unwrap();
    println!("  chi2 = {:.2}, p = {:.5}", r.statistic, r.p_value);
}
