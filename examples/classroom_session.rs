//! A full class session, the way the paper runs it: several teams with
//! deliberately different drawing implements (§IV: the unfairness "does
//! show the effect of different hardware"), scenario 1 run twice (the
//! system-warmup demonstration), and the completion times posted publicly
//! after every scenario.
//!
//! Run with: `cargo run --example classroom_session`

use flagsim::agents::ImplementKind;
use flagsim::core::classroom::ClassroomSession;
use flagsim::core::config::ActivityConfig;
use flagsim::flags::library;
use flagsim::metrics::{efficiency, speedup};

fn main() {
    let mut session = ClassroomSession::new(
        &library::mauritius(),
        ActivityConfig::default().with_seed(42),
    );
    session.add_team("Daubers", 5, ImplementKind::BingoDauber);
    session.add_team("ThickMk", 5, ImplementKind::ThickMarker);
    session.add_team("ThinMk", 5, ImplementKind::ThinMarker);
    session.add_team("Crayons", 5, ImplementKind::Crayon);

    let all = session
        .run_core_activity(/* repeat scenario 1 */ true)
        .expect("session runs");

    println!("{}", session.board_table());

    // The post-activity discussion, with numbers.
    let first: Vec<f64> = all[0].iter().map(|r| r.completion_secs()).collect();
    let repeat: Vec<f64> = all[1].iter().map(|r| r.completion_secs()).collect();
    println!("Warm-up: every team's repeat of scenario 1 beat its first run:");
    for (team, (f, s)) in session.teams().iter().zip(first.iter().zip(&repeat)) {
        println!(
            "  {:<8} {:>6.1}s -> {:>6.1}s  ({:.0}% faster — caching/JIT analogy)",
            team.name,
            f,
            s,
            100.0 * (f - s) / f
        );
    }

    println!("\nSpeedup and efficiency vs scenario 1 (per team):");
    for (ti, team) in session.teams().iter().enumerate() {
        let t1 = all[1][ti].completion_secs(); // warmed-up baseline
        for (si, procs) in [(2usize, 2usize), (3, 4), (4, 4)] {
            let tp = all[si].len();
            let _ = tp;
            let r = &all[si][ti];
            println!(
                "  {:<8} {:<38} speedup {:>4.2}x  efficiency {:>4.2}",
                team.name,
                r.label,
                speedup(t1, r.completion_secs()),
                efficiency(t1, r.completion_secs(), procs),
            );
        }
    }

    println!("\nScenario 4 contention detail (ThickMk team):");
    println!("{}", all[4][1].detail());
    println!("Gantt ('#' coloring, '~' waiting for a marker, '.' idle):");
    println!("{}", all[4][1].trace.gantt(72));
}
