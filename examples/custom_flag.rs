//! Define a brand-new flag in the text DSL, run the activity on it, and
//! inspect its dependency structure — the full instructor workflow for a
//! flag the library doesn't ship.
//!
//! Run with: `cargo run --example custom_flag`

use flagsim::agents::{ImplementKind, StudentProfile};
use flagsim::core::config::ActivityConfig;
use flagsim::core::layered;
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::{CellOrder, PartitionStrategy, TeamKit};
use flagsim::flags;
use flagsim::grid::render;
use flagsim::taskgraph::analysis;

const GREENLAND_ISH: &str = r#"
# A two-layer flag with a disc straddling a stripe boundary —
# a nice intermediate dependency example between Japan and Jordan.
flag "Greenland-ish" 18x12
layer "white stripe" white hstripe 0 2
layer "red stripe" red hstripe 1 2
layer "counter disc top" red rect 0.22 0.25 0.45 0.5
layer "counter disc bottom" white rect 0.22 0.5 0.45 0.75
"#;

fn main() {
    let spec = flags::parse(GREENLAND_ISH).expect("the DSL text is valid");
    println!("parsed {:?} with {} layers\n", spec.name, spec.layer_count());
    let grid = spec.rasterize();
    println!("{}", render::to_ascii(&grid));
    println!("legend: {}\n", render::legend(&grid));

    // Dependency structure.
    let g = layered::flag_taskgraph(&spec, 2000);
    println!("{}", g.to_dot(&spec.name));
    println!(
        "work {:.0}s, span {:.0}s, parallelism {:.2}\n",
        analysis::work(&g) as f64 / 1000.0,
        analysis::span(&g) as f64 / 1000.0,
        analysis::parallelism(&g)
    );

    // Run it with three students on vertical slices.
    let flag = PreparedFlag::new(&spec);
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let mut team: Vec<StudentProfile> = (1..=3)
        .map(|i| StudentProfile::new(format!("P{i}")))
        .collect();
    let scenario = Scenario::new(
        "custom: 3 vertical slices",
        PartitionStrategy::VerticalSlices(3),
        CellOrder::RowMajor,
    );
    let report = scenario
        .run(&flag, &mut team, &kit, &ActivityConfig::default())
        .expect("kit covers the flag");
    println!("{}", report.detail());
    println!("{}", report.trace.gantt(64));

    // Round-trip back to text (e.g. to save a cleaned-up version).
    println!("canonical text form:\n{}", flags::to_text(&spec));
}
