//! The original CS1 "flag coloring" programming assignment (the paper's
//! reference [9]) — the unplugged activity's plugged ancestor. Students
//! practice loops by setting pixel values; here are reference solutions
//! for three of the activity's flags, autograded against the flag specs.
//!
//! Run with: `cargo run --example flag_maker_assignment`

use flagsim::flags::library;
use flagsim::grid::canvas::FlagCanvas;
use flagsim::grid::{render, Color};

/// Week-3 solution: the flag of Mauritius with one loop nest.
fn draw_mauritius() -> FlagCanvas {
    let mut canvas = FlagCanvas::new(12, 8);
    let stripes = [Color::Red, Color::Blue, Color::Yellow, Color::Green];
    for y in 0..canvas.height() {
        for x in 0..canvas.width() {
            canvas.set_pixel(x, y, stripes[(y / 2) as usize]);
        }
    }
    canvas
}

/// The flag of France: three vertical stripes.
fn draw_france() -> FlagCanvas {
    let mut canvas = FlagCanvas::new(24, 12);
    let stripes = [Color::Blue, Color::White, Color::Red];
    for (i, color) in stripes.iter().enumerate() {
        canvas.v_stripe(i as u32, 3, *color);
    }
    canvas
}

/// The layered technique the Knox follow-up discusses: Great Britain,
/// background first, then the diagonals, then the cross — each layer
/// plain loops, order mandatory.
fn draw_great_britain() -> FlagCanvas {
    let spec = library::great_britain();
    let mut canvas = FlagCanvas::new(spec.default_width, spec.default_height);
    // Layer 1: blue background.
    canvas.fill_rect(0, 0, canvas.width(), canvas.height(), Color::Blue);
    // Layers 2-3: we cheat gracefully — ask the spec which cells each
    // layer paints and loop over them with set_pixel, which is exactly
    // what the assignment's per-feature helper functions compile down to.
    for li in 1..spec.layer_count() {
        let color = spec.layers[li].color;
        for cell in spec.layer_cells(li).iter() {
            let c = cell.to_coord(spec.default_width);
            canvas.set_pixel(c.x, c.y, color);
        }
    }
    canvas
}

fn main() {
    let submissions = [
        ("Mauritius", draw_mauritius(), library::mauritius()),
        ("France", draw_france(), library::france()),
        ("Great Britain", draw_great_britain(), library::great_britain()),
    ];
    for (name, canvas, spec) in submissions {
        let reference = spec.rasterize_flat();
        let grade = canvas.grade_against(&reference);
        println!("=== {name} ===");
        println!("{}", render::to_ascii(canvas.grid()));
        println!(
            "autograde: similarity {:.0}%, {} mismatches, {} out-of-bounds writes -> {}",
            grade.similarity * 100.0,
            grade.mismatched_cells,
            grade.out_of_bounds_writes,
            if grade.is_perfect() { "PASS" } else { "FAIL" }
        );
        assert!(grade.is_perfect(), "{name} reference solution must pass");
        println!();
    }
    println!("These are the programs the unplugged activity mirrors: every");
    println!("set_pixel is one colored cell; every loop is one student's stripe.");
}
