//! End-to-end integration: the whole stack, flag to report.
//!
//! The activity's correctness criterion is simple: no matter how the work
//! is divided — one student, stripes, slices, simulated or on real
//! threads — the finished flag must be identical. These tests hold every
//! execution path to it.

use flagsim::agents::{ImplementKind, StudentProfile};
use flagsim::core::config::ActivityConfig;
use flagsim::core::partition::{verify_assignments, CellOrder, PartitionStrategy};
use flagsim::core::scenario::Scenario;
use flagsim::core::work::PreparedFlag;
use flagsim::core::TeamKit;
use flagsim::flags::library;
use flagsim::grid::diff;
use flagsim::threads::{CellWorkload, ExecMode, ParallelColorer};

fn team(n: usize) -> Vec<StudentProfile> {
    (1..=n)
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect()
}

#[test]
fn every_scenario_reproduces_the_reference_flag() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default();
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let mut t = team(4);
        let report = sc.run(&flag, &mut t, &kit, &cfg).unwrap();
        assert!(report.correct, "{}", sc.name);
        let d = diff(&report.grid, &flag.reference);
        assert!(d.is_identical(), "{}: {:?}", sc.name, d.mismatches);
    }
}

#[test]
fn simulated_and_threaded_executions_agree_cell_for_cell() {
    for spec in library::all() {
        let flag = PreparedFlag::new(&spec);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let assignments = PartitionStrategy::Cyclic(3).assignments(&flag, CellOrder::RowMajor, &[]);
        verify_assignments(&flag, &assignments, &[]).unwrap();

        // Simulated.
        let mut t = team(3);
        let sim = flagsim::core::run_activity(
            "sim",
            &flag,
            &assignments,
            &mut t,
            &kit,
            &ActivityConfig::default(),
        )
        .unwrap();
        assert!(sim.correct, "{}", spec.name);

        // Real threads.
        let colorer = ParallelColorer::new(&flag, CellWorkload::default());
        let out = colorer.run(&assignments, ExecMode::Static);
        assert!(out.verify(&flag), "{}", spec.name);
        assert!(
            diff(&sim.grid, &out.grid).is_identical(),
            "{}: sim and threads disagree",
            spec.name
        );
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run_everything = || {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThinMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(123);
        let mut t = team(4);
        let mut fingerprint = Vec::new();
        for n in 1..=4u8 {
            let r = Scenario::fig1(n).run(&flag, &mut t, &kit, &cfg).unwrap();
            fingerprint.push(r.completion.millis());
            fingerprint.push(r.trace.events.len() as u64);
        }
        fingerprint
    };
    assert_eq!(run_everything(), run_everything());
}

#[test]
fn larger_grids_scale_the_same_story() {
    // The scenario ordering survives a 4x bigger grid (48×32).
    let flag = PreparedFlag::at_size(&library::mauritius(), 48, 32);
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default();
    let mut times = Vec::new();
    for n in 1..=4u8 {
        let mut t = team(4);
        let r = Scenario::fig1(n).run(&flag, &mut t, &kit, &cfg).unwrap();
        assert!(r.correct);
        times.push(r.completion_secs());
    }
    assert!(times[1] < times[0]);
    assert!(times[2] < times[1]);
    assert!(times[3] > times[2], "contention persists at scale: {times:?}");
}

#[test]
fn speedup_never_exceeds_team_size() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default();
    let mut t1 = team(1);
    let base = Scenario::fig1(1).run(&flag, &mut t1, &kit, &cfg).unwrap();
    for (n, p) in [(2u8, 2.0), (3, 4.0), (4, 4.0)] {
        let mut t = team(4);
        let r = Scenario::fig1(n).run(&flag, &mut t, &kit, &cfg).unwrap();
        let s = r.speedup_vs(&base);
        // Stochastic per-student times allow slight super-linearity only
        // through sampling luck; a 10% margin catches real violations.
        assert!(s <= p * 1.1, "scenario {n} speedup {s} > {p}");
    }
}

#[test]
fn failure_injection_dead_marker_and_crayon_breakage_paths() {
    use flagsim::agents::{Condition, CostModel, Implement};
    // Dead marker: the dry-run check refuses to start.
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]))
        .with_implement(
            flagsim::grid::Color::Green,
            Implement {
                kind: ImplementKind::ThickMarker,
                condition: Condition::Dead,
            },
        );
    let mut t = team(1);
    let err = Scenario::fig1(1)
        .run(&flag, &mut t, &kit, &ActivityConfig::default())
        .unwrap_err();
    assert!(err.contains("dead"), "{err}");

    // Crayons break sometimes; the model exposes the event stream.
    let mut cost = CostModel::new(99);
    let crayon = Implement::good(ImplementKind::Crayon);
    let breaks = (0..10_000).filter(|_| cost.sample_breakage(crayon)).count();
    assert!(breaks > 10 && breaks < 100, "breakage rate off: {breaks}");
}

#[test]
fn worn_markers_slow_the_run() {
    use flagsim::agents::{Condition, Implement};
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default();
    let good_kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let worn_kit = flag.colors_needed(&[]).iter().fold(
        TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[])),
        |kit, &c| {
            kit.with_implement(
                c,
                Implement {
                    kind: ImplementKind::ThickMarker,
                    condition: Condition::Worn,
                },
            )
        },
    );
    let mut tg = team(1);
    let mut tw = team(1);
    let good = Scenario::fig1(1).run(&flag, &mut tg, &good_kit, &cfg).unwrap();
    let worn = Scenario::fig1(1).run(&flag, &mut tw, &worn_kit, &cfg).unwrap();
    assert!(
        worn.completion_secs() > good.completion_secs() * 1.3,
        "worn {} vs good {}",
        worn.completion_secs(),
        good.completion_secs()
    );
}
