//! The reproduction ledger as a test suite: every experiment in
//! EXPERIMENTS.md must hold, table cells must equal the published values,
//! and the cross-crate consistency laws must bind.

use flagsim::core::layered;
use flagsim::flags::library;
use flagsim::taskgraph::analysis;

#[test]
fn all_experiment_shapes_hold() {
    for e in flagsim_bench::all_experiments() {
        assert!(
            e.holds,
            "{} ({}) lost its shape:\nexpected: {}\n{}",
            e.id, e.artifact, e.expectation, e.report
        );
    }
}

#[test]
fn tables_regenerate_byte_exact_medians() {
    use flagsim::assessment::report as arep;
    use flagsim::assessment::survey::Construct;
    for construct in [
        Construct::Engagement,
        Construct::Understanding,
        Construct::Instructor,
    ] {
        // Several seeds: calibration must not depend on a lucky seed.
        for seed in [1u64, 99, 0xDEAD_BEEF] {
            let rows = arep::regenerate_table(construct, seed);
            assert!(arep::table_matches(&rows), "{construct:?} seed {seed}");
        }
    }
}

#[test]
fn quiz_transitions_regenerate_for_any_seed() {
    use flagsim::assessment::quiz::{fig8_target, generate_quiz_cohort, measure_transitions};
    use flagsim::assessment::{Concept, Institution};
    for seed in [7u64, 1234] {
        for inst in [Institution::USI, Institution::TNTech, Institution::HPU] {
            let records = generate_quiz_cohort(inst, seed);
            for concept in Concept::ALL {
                assert_eq!(
                    measure_transitions(&records, concept),
                    fig8_target(inst, concept).unwrap().matrix,
                    "{inst} {concept:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn jordan_study_distribution_is_seed_independent() {
    use flagsim::assessment::jordan;
    for seed in [0u64, 42, 2025] {
        let r = jordan::grade_batch(&jordan::generate_submissions(seed));
        assert_eq!(r.total, 29, "seed {seed}");
        assert_eq!(r.counts["perfect"], 10);
        assert_eq!(r.counts["mostly correct"], 7);
        assert!((r.at_least_mostly_pct - 58.6).abs() < 0.1);
    }
}

/// The DES and the task-graph theory must agree: a simulated layered run
/// can never beat the work/span lower bound of its own graph.
#[test]
fn simulation_respects_scheduling_theory() {
    for spec in [library::great_britain(), library::jordan()] {
        let g = layered::flag_taskgraph(&spec, 2000);
        for p in [1usize, 2, 4] {
            let (_, schedule) = layered::layered_schedule(&spec, p, 2000);
            let lb = analysis::makespan_lower_bound(&g, p);
            let ub = analysis::greedy_upper_bound(&g, p);
            assert!(
                schedule.makespan >= lb && schedule.makespan <= ub,
                "{} p={p}: {} outside [{lb}, {ub}]",
                spec.name,
                schedule.makespan
            );
        }
    }
}

/// Amdahl's law, observed from the simulation side: scenario 4's measured
/// speedup implies a serial fraction (Karp–Flatt) well above scenario 3's.
#[test]
fn contention_shows_up_in_karp_flatt() {
    use flagsim::agents::{ImplementKind, StudentProfile};
    use flagsim::core::config::ActivityConfig;
    use flagsim::core::scenario::Scenario;
    use flagsim::core::work::PreparedFlag;
    use flagsim::core::TeamKit;
    use flagsim::metrics::karp_flatt;

    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default();
    let team = |n: usize| -> Vec<StudentProfile> {
        (1..=n)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect()
    };
    let mut t1 = team(1);
    let base = Scenario::fig1(1).run(&flag, &mut t1, &kit, &cfg).unwrap();
    let mut t3 = team(4);
    let s3 = Scenario::fig1(3).run(&flag, &mut t3, &kit, &cfg).unwrap();
    let mut t4 = team(4);
    let s4 = Scenario::fig1(4).run(&flag, &mut t4, &kit, &cfg).unwrap();
    let e3 = karp_flatt(s3.speedup_vs(&base), 4);
    let e4 = karp_flatt(s4.speedup_vs(&base), 4);
    assert!(
        e4 > e3 + 0.1,
        "contention must raise the implied serial fraction: {e3:.3} vs {e4:.3}"
    );
}
