//! Golden rasters for the paper's flags: the exact ASCII art every
//! execution path must reproduce. If a geometry change alters any of
//! these, the diff shows up as a picture, not a number.

use flagsim::flags::library;
use flagsim::grid::render::to_ascii;

#[test]
fn mauritius_golden() {
    let expected = "\
RRRRRRRRRRRR
RRRRRRRRRRRR
BBBBBBBBBBBB
BBBBBBBBBBBB
YYYYYYYYYYYY
YYYYYYYYYYYY
GGGGGGGGGGGG
GGGGGGGGGGGG
";
    assert_eq!(to_ascii(&library::mauritius().rasterize()), expected);
}

#[test]
fn jordan_golden() {
    // 16×9: three stripes (black/white/green), red hoist triangle
    // (including the hoist edge, so every row starts red), white dot at
    // the triangle's middle.
    let expected = "\
RKKKKKKKKKKKKKKK
RRKKKKKKKKKKKKKK
RRRRKKKKKKKKKKKK
RRRRRRWWWWWWWWWW
RRWRRRRWWWWWWWWW
RRRRRRWWWWWWWWWW
RRRRGGGGGGGGGGGG
RRGGGGGGGGGGGGGG
RGGGGGGGGGGGGGGG
";
    assert_eq!(to_ascii(&library::jordan().rasterize()), expected);
}

#[test]
fn great_britain_golden_structure() {
    let text = to_ascii(&library::great_britain().rasterize());
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 12);
    // Center row crosses the red horizontal bar.
    assert!(lines[6].chars().all(|c| c == 'R'), "{:?}", lines[6]);
    // The diagonals pass through the corners, so corners are white…
    for (y, x) in [(0usize, 0usize), (0, 23), (11, 0), (11, 23)] {
        assert_eq!(lines[y].as_bytes()[x], b'W', "corner ({x},{y})");
    }
    // …and the quadrant fields just off the diagonals are blue.
    assert_eq!(lines[1].as_bytes()[6], b'B');
    assert_eq!(lines[10].as_bytes()[17], b'B');
    // The vertical red bar crosses the top row at the center.
    assert_eq!(lines[0].as_bytes()[12], b'R');
}

#[test]
fn canada_golden_structure() {
    let text = to_ascii(&library::canada().rasterize());
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 12);
    // Side pales are solid red (first and last 6 columns).
    for line in &lines {
        assert!(line[..6].chars().all(|c| c == 'R'), "{line:?}");
        assert!(line[18..].chars().all(|c| c == 'R'), "{line:?}");
    }
    // The leaf: red cells strictly inside the white pale.
    let leaf_cells: usize = lines
        .iter()
        .map(|l| l[6..18].chars().filter(|&c| c == 'R').count())
        .sum();
    assert!(leaf_cells >= 12, "leaf too small: {leaf_cells}");
    // Top and bottom rows of the pale are white (the leaf floats).
    assert!(lines[0][6..18].chars().all(|c| c == 'W'));
    assert!(lines[11][6..18].chars().all(|c| c == 'W'));
}

#[test]
fn france_golden() {
    let row = format!("{}{}{}\n", "B".repeat(8), "W".repeat(8), "R".repeat(8));
    assert_eq!(to_ascii(&library::france().rasterize()), row.repeat(12));
}

#[test]
fn all_flags_round_trip_their_own_ascii() {
    use flagsim::grid::Grid;
    for flag in library::all() {
        let grid = flag.rasterize();
        let text = to_ascii(&grid);
        let parsed = Grid::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", flag.name));
        assert!(
            flagsim::grid::diff(&grid, &parsed).is_identical(),
            "{}",
            flag.name
        );
    }
}
