//! Cross-crate pipeline test: sweep → replay → discussion → exports, the
//! way a downstream tool would consume the library.

use flagsim::core::discussion;
use flagsim::core::replay::Replay;
use flagsim::core::sweep::sweep;
use flagsim::desim::SimTime;
use flagsim::prelude::*;

#[test]
fn sweep_replay_discussion_round_trip() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(77);

    // Sweep the four scenarios.
    let mut means = Vec::new();
    let mut last_runs = Vec::new();
    for n in 1..=4u8 {
        let sc = Scenario::fig1(n);
        let size = sc.team_size(&flag, &cfg);
        let result = sweep(&sc, &flag, &kit, &cfg, size, false, 8);
        means.push(result.mean_secs());
        last_runs.push(result.reports.into_iter().next_back().unwrap());
    }
    assert!(means[0] > means[1] && means[1] > means[2] && means[3] > means[2]);

    // Replay scenario 4 and check the halfway frame is genuinely partial.
    let sc4 = Scenario::fig1(4);
    let assignments = sc4.strategy.assignments(&flag, sc4.order, &[]);
    let replay = Replay::new(&last_runs[3], &assignments);
    let halfway = replay.grid_at(SimTime(replay.end_ms() / 2));
    assert!(halfway.blank_cells() > 0);
    assert!(halfway.blank_cells() < 96);
    let done = replay.grid_at(SimTime(replay.end_ms()));
    assert!(flagsim::grid::diff(&done, &flag.reference).is_identical());

    // The discussion detector finds the headline lessons in the sequence.
    let lessons = discussion::detect_lessons(&last_runs);
    let concepts: Vec<_> = lessons.iter().map(|l| l.concept).collect();
    assert!(concepts.contains(&discussion::Concept::Speedup));
    assert!(concepts.contains(&discussion::Concept::Contention));

    // Exports are well-formed.
    let bundle = last_runs[3].to_csv_bundle();
    assert_eq!(bundle.len(), 3);
    for (_, content) in &bundle {
        assert!(content.lines().count() > 1, "non-empty CSV body");
    }
    let svg = last_runs[3].trace.svg_gantt(640);
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
}

#[test]
fn deadline_sweep_reports_partial_progress() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(5).with_deadline_secs(50.0);
    let result = sweep(&Scenario::fig1(1), &flag, &kit, &cfg, 1, false, 4);
    for r in &result.reports {
        assert!(!r.correct);
        assert!((r.completion_secs() - 50.0).abs() < 1e-9);
        assert!(r.students[0].completed < r.students[0].cells);
    }
}

#[test]
fn stocked_kit_sweep_is_contention_free_on_slices() {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]))
        .with_count_all(4);
    let cfg = ActivityConfig::default();
    let result = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
    assert_eq!(result.waiting.max, 0.0);
}
